//! `knmatch` — command-line access to the matching-based similarity search
//! engine.
//!
//! ```text
//! knmatch generate --kind uniform --cardinality 10000 --dims 16 --out data.csv
//! knmatch build data.csv db.knm
//! knmatch info db.knm
//! knmatch query db.knm --point 0.1,0.5,… -k 10 -n 4
//! knmatch query db.knm --point 0.1,0.5,… -k 10 --frequent 4 8
//! knmatch query db.knm --point 0.1,0.5,… -k 10 -n 4 --shards 4
//! knmatch batch data.csv --queries queries.csv -k 10 --frequent 4 8 --workers 4
//! knmatch batch data.csv --queries queries.csv -k 10 -n 4 --shards 4 --workers 4
//! knmatch batch db.knm --queries queries.csv -k 10 -n 4 --disk --workers 4
//! knmatch serve db.knm --addr 127.0.0.1:7878 --disk --workers 4
//! knmatch serve data.csv --addr 127.0.0.1:7878 --mutable --merge-threshold 4096
//! knmatch client 127.0.0.1:7878 --queries queries.csv -k 10 -n 4
//! knmatch ingest 127.0.0.1:7878 --points new.csv --start-key 100000 --seal
//! ```

use std::fmt::Write as _;
use std::io::Write as _;
use std::process::ExitCode;

use knmatch_core::{BatchAnswer, BatchEngine, BatchOptions, BatchOutcome, BatchQuery};
use knmatch_server::{AnyEngine, Client, EngineConfig, Server};
use knmatch_storage::{CostModel, DiskDatabase};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok((out, true)) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        // The command ran but some queries in the batch failed: the report
        // already names them, so skip the usage text but exit non-zero.
        Ok((out, false)) => {
            print!("{out}");
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

fn usage() -> &'static str {
    "usage:\n  \
     knmatch generate --kind <uniform|skewed|clusters|coil> --out <file.csv> \
     [--cardinality N] [--dims D] [--classes C] [--seed S]\n  \
     knmatch build <data.csv> <db.knm>\n  \
     knmatch info <db.knm>\n  \
     knmatch verify <db.knm>\n  \
     knmatch query <db.knm> --point <v1,v2,…> -k <K> (-n <N> | --frequent <N0> <N1> [--auto]) \
     [--shards S [--workers W]]\n  \
     knmatch bench <db.knm> -k <K> --frequent <N0> <N1> [--queries Q] [--seed S]\n  \
     knmatch batch <data.csv|db.knm> --queries <queries.csv> \
     (-k <K> -n <N> | -k <K> --frequent <N0> <N1> | --eps <E> -n <N>) [--workers W] \
     [--planner auto|ad|vafile|scan|igrid | --shards <S|auto> | \
     --disk [--pool-pages P] [--verify never|first-read|always]] \
     [--deadline-ms MS] [--fail-fast]\n  \
     knmatch serve <data.csv|db.knm> [--addr IP:PORT] [--workers W] \
     [--planner MODE | --shards <S|auto> | --disk [--pool-pages P] [--verify MODE] | \
     --mutable [--merge-threshold R]] \
     [--max-conns N] [--event-loop [--executors E] [--reactor poll|epoll|auto] \
     [--idle-timeout-ms MS] [--max-inflight N]]\n  \
     knmatch client <host:port> (--queries <queries.csv> \
     (-k <K> -n <N> | -k <K> --frequent <N0> <N1> | --eps <E> -n <N>) \
     [--planner MODE] [--deadline-ms MS] [--fail-fast] [--binary] \
     [--pipeline DEPTH] [--retries R [--backoff-ms MS]] [--timeout-ms MS] \
     [--stats] | --ping | --shutdown)\n  \
     knmatch ingest <host:port> --points <file.csv> [--start-key N] [--seal] \
     [--binary] [--stats]\n\
     \n\
     exit codes: 0 success; 1 usage or I/O error; 2 command ran but some \
     queries failed"
}

/// Executes one CLI invocation, returning the text to print and whether
/// every unit of work succeeded (`batch` reports per-query failures in
/// the text instead of aborting, so the flag carries them to the exit
/// code).
fn run(args: &[String]) -> Result<(String, bool), String> {
    let ok = |text: String| (text, true);
    match args.first().map(String::as_str) {
        Some("generate") => generate(&args[1..]).map(ok),
        Some("build") => build(&args[1..]).map(ok),
        Some("info") => info(&args[1..]).map(ok),
        Some("verify") => verify(&args[1..]).map(ok),
        Some("query") => query(&args[1..]).map(ok),
        Some("bench") => bench(&args[1..]).map(ok),
        Some("batch") => batch(&args[1..]),
        Some("serve") => serve(&args[1..]).map(ok),
        Some("client") => client(&args[1..]),
        Some("ingest") => ingest(&args[1..]),
        Some(other) => Err(format!("unknown command '{other}'")),
        None => Err("no command given".into()),
    }
}

fn verify(args: &[String]) -> Result<String, String> {
    let [path] = args else {
        return Err("verify needs <db.knm>".into());
    };
    let mut db = DiskDatabase::open_file(path, 256).map_err(|e| e.to_string())?;
    let problems = db.verify();
    if problems.is_empty() {
        Ok(format!(
            "{path}: OK — {} points x {} dims, all columns sorted and consistent\n",
            db.len(),
            db.dims()
        ))
    } else {
        let mut out = format!("{path}: {} problem(s) found:\n", problems.len());
        for p in problems {
            out.push_str(&format!("  - {p}\n"));
        }
        Err(out)
    }
}

/// Runs a seeded query workload against a database file, comparing the AD
/// algorithm and the sequential scan, and reports latency percentiles of
/// the modelled response time.
fn bench(args: &[String]) -> Result<String, String> {
    let path = args.first().ok_or("bench needs <db.knm>")?;
    let k: usize = parse_num(flag_value(args, "-k").unwrap_or("20"), "-k")?;
    let queries: usize = parse_num(flag_value(args, "--queries").unwrap_or("20"), "--queries")?;
    let seed: u64 = parse_num(flag_value(args, "--seed").unwrap_or("42"), "--seed")?;
    let mut db = DiskDatabase::open_file(path, 256).map_err(|e| e.to_string())?;
    let (n0, n1) = if let Some(i) = args.iter().position(|a| a == "--frequent") {
        (
            parse_num(args.get(i + 1).ok_or("--frequent needs N0 N1")?, "N0")?,
            parse_num(args.get(i + 2).ok_or("--frequent needs N0 N1")?, "N1")?,
        )
    } else {
        (4.min(db.dims()), (db.dims() / 2).max(1))
    };

    // Sample query points from the database itself.
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut ad_ms: Vec<f64> = Vec::with_capacity(queries);
    let mut scan_ms: Vec<f64> = Vec::with_capacity(queries);
    let mut attrs = 0u64;
    let model = CostModel::default();
    for _ in 0..queries {
        let pid = (next() % db.len() as u64) as u32;
        let q = db.fetch_point(pid);
        db.pool_mut().invalidate_all();
        let ad = db
            .frequent_k_n_match(&q, k, n0, n1)
            .map_err(|e| e.to_string())?;
        ad_ms.push(ad.io.response_time_ms(model));
        attrs += ad.ad.attributes_retrieved;
        db.pool_mut().invalidate_all();
        let scan = db
            .scan_frequent_k_n_match(&q, k, n0, n1)
            .map_err(|e| e.to_string())?;
        scan_ms.push(scan.io.response_time_ms(model));
    }
    let pct = |v: &mut Vec<f64>, p: f64| {
        v.sort_by(f64::total_cmp);
        v[((v.len() - 1) as f64 * p) as usize]
    };
    let mut out = format!(
        "{queries} frequent {k}-n-match queries, n in [{n0}, {n1}], modelled ms \
         (seq {} ms / rand {} ms per page):\n",
        model.sequential_ms, model.random_ms
    );
    out.push_str(&format!(
        "  AD   : p50 {:>8.1}  p95 {:>8.1}  max {:>8.1}   ({} attrs/query avg)\n",
        pct(&mut ad_ms, 0.5),
        pct(&mut ad_ms, 0.95),
        pct(&mut ad_ms, 1.0),
        attrs / queries as u64
    ));
    out.push_str(&format!(
        "  scan : p50 {:>8.1}  p95 {:>8.1}  max {:>8.1}\n",
        pct(&mut scan_ms, 0.5),
        pct(&mut scan_ms, 0.95),
        pct(&mut scan_ms, 1.0)
    ));
    Ok(out)
}

/// Builds the query list shared by `batch` and `client` from the spec
/// flags: `-k K -n N` (k-n-match), `-k K --frequent N0 N1` (frequent), or
/// `--eps E -n N` (ε-n-match). Returns the queries plus a human header.
fn build_queries(
    args: &[String],
    points: Vec<Vec<f64>>,
) -> Result<(Vec<BatchQuery>, String), String> {
    if let Some(i) = args.iter().position(|a| a == "--frequent") {
        let k: usize = parse_num(flag_value(args, "-k").ok_or("queries need -k")?, "-k")?;
        let n0: usize = parse_num(args.get(i + 1).ok_or("--frequent needs N0 N1")?, "N0")?;
        let n1: usize = parse_num(args.get(i + 2).ok_or("--frequent needs N0 N1")?, "N1")?;
        let qs: Vec<BatchQuery> = points
            .into_iter()
            .map(|query| BatchQuery::Frequent { query, k, n0, n1 })
            .collect();
        Ok((qs, format!("frequent {k}-n-match, n in [{n0}, {n1}]")))
    } else if let Some(eps) = flag_value(args, "--eps") {
        let eps: f64 = parse_num(eps, "--eps")?;
        let n: usize = parse_num(flag_value(args, "-n").ok_or("queries need -n")?, "-n")?;
        let qs: Vec<BatchQuery> = points
            .into_iter()
            .map(|query| BatchQuery::EpsMatch { query, eps, n })
            .collect();
        Ok((qs, format!("eps-{n}-match, eps = {eps}")))
    } else {
        let k: usize = parse_num(flag_value(args, "-k").ok_or("queries need -k")?, "-k")?;
        let n: usize = parse_num(flag_value(args, "-n").ok_or("queries need -n")?, "-n")?;
        let qs: Vec<BatchQuery> = points
            .into_iter()
            .map(|query| BatchQuery::KnMatch { query, k, n })
            .collect();
        Ok((qs, format!("{k}-{n}-match")))
    }
}

/// Executes a file of query points as one parallel batch against any of
/// the three backends ([`EngineConfig`] owns the `--workers` /
/// `--shards` / `--disk` grammar); all backends share this one printing
/// path, with the disk backend adding its per-query I/O detail.
fn batch(args: &[String]) -> Result<(String, bool), String> {
    let data = args
        .first()
        .ok_or("batch needs <data.csv> (or <db.knm> with --disk)")?;
    let queries_path = flag_value(args, "--queries").ok_or("batch needs --queries <file.csv>")?;
    let qs = knmatch_data::load_dataset(queries_path).map_err(|e| e.to_string())?;
    let points: Vec<Vec<f64>> = qs.iter().map(|(_, p)| p.to_vec()).collect();
    let (queries, header) = build_queries(args, points)?;
    let opts = batch_options(args)?;
    let cfg = EngineConfig::from_args(args)?;
    let engine = cfg.open(data)?;

    let started = std::time::Instant::now();
    let results = engine.run_with(&queries, &opts);
    let elapsed = started.elapsed();
    let model = CostModel::default();

    let mut out = match &engine {
        AnyEngine::Memory(_) => format!(
            "{} queries ({header}) over {} points x {} dims, {} worker(s)\n",
            queries.len(),
            engine.cardinality(),
            engine.dims(),
            engine.workers()
        ),
        AnyEngine::Planned(e) => format!(
            "{} queries ({header}) over {} points x {} dims, {} worker(s), \
             planner {}\n",
            queries.len(),
            engine.cardinality(),
            engine.dims(),
            engine.workers(),
            opts.planner.unwrap_or_else(|| e.default_mode()),
        ),
        AnyEngine::Sharded(_) => format!(
            "{} queries ({header}) over {} points x {} dims, {} shard(s), {} worker(s)\n",
            queries.len(),
            engine.cardinality(),
            engine.dims(),
            engine.shard_count().unwrap_or(1),
            engine.workers()
        ),
        AnyEngine::Versioned(_) => format!(
            "{} queries ({header}) over {} points x {} dims (mutable versioned), \
             {} worker(s)\n",
            queries.len(),
            engine.cardinality(),
            engine.dims(),
            engine.workers()
        ),
        AnyEngine::Disk(_) => format!(
            "{} queries ({header}) against {data}: {} points x {} dims, {} worker(s), \
             {} pool pages\n",
            queries.len(),
            engine.cardinality(),
            engine.dims(),
            engine.workers(),
            engine.pool_pages().unwrap_or(0),
        ),
    };
    let mut attrs = 0u64;
    let mut failures = 0usize;
    for (i, r) in results.iter().enumerate() {
        match r {
            Ok(o) => {
                attrs += o.ad_stats().attributes_retrieved;
                match o.io() {
                    Some(io) => writeln!(
                        out,
                        "  #{i}: [{}] — {} pages ({} seq + {} rand, {} hits), {:.1} ms modelled",
                        shown_ids(o.answer()),
                        io.page_accesses(),
                        io.sequential_reads,
                        io.random_reads,
                        io.hits,
                        io.response_time_ms(model),
                    ),
                    None => writeln!(out, "  #{i}: [{}]", shown_ids(o.answer())),
                }
                .expect("write to String");
            }
            Err(e) => {
                failures += 1;
                writeln!(out, "  #{i}: error: {e}").expect("write to String");
            }
        }
    }
    let secs = elapsed.as_secs_f64();
    writeln!(
        out,
        "{} ok / {failures} failed in {:.1} ms ({:.0} queries/s), {attrs} attributes retrieved",
        results.len() - failures,
        secs * 1e3,
        if secs > 0.0 {
            results.len() as f64 / secs
        } else {
            f64::INFINITY
        },
    )
    .expect("write to String");
    if let Some(pool) = engine.pool_stats() {
        let lookups = pool.hits + pool.page_accesses();
        writeln!(
            out,
            "shared pool: {} store reads, {} hits ({:.0}% hit ratio)",
            pool.page_accesses(),
            pool.hits,
            if lookups > 0 {
                pool.hits as f64 / lookups as f64 * 100.0
            } else {
                0.0
            },
        )
        .expect("write to String");
    }
    if let Some(plans) = engine.plan_counts() {
        writeln!(
            out,
            "plans: {} ad, {} vafile, {} scan, {} igrid",
            plans.ad, plans.vafile, plans.scan, plans.igrid,
        )
        .expect("write to String");
    }
    Ok((out, failures == 0))
}

/// Renders a batch answer's ids, truncated to the first ten.
fn shown_ids(answer: &BatchAnswer) -> String {
    let ids = match answer {
        BatchAnswer::KnMatch(r) | BatchAnswer::EpsMatch(r) => r.ids(),
        BatchAnswer::Frequent(r) => r.ids(),
    };
    let shown: Vec<String> = ids.iter().take(10).map(|pid| pid.to_string()).collect();
    let ellipsis = if ids.len() > 10 { ", …" } else { "" };
    format!("{}{}", shown.join(", "), ellipsis)
}

/// Serves the configured engine over TCP until a client sends `SHUTDOWN`
/// (or the process is killed). Prints the bound address eagerly — tests
/// and scripts bind `--addr 127.0.0.1:0` and read the resolved port from
/// that line — and returns the final counter summary.
fn serve(args: &[String]) -> Result<String, String> {
    let data = args.first().ok_or("serve needs <data.csv|db.knm>")?;
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:0");
    let cfg = EngineConfig::from_args(args)?;
    let (server_cfg, event_loop) = knmatch_server::server_config_from_args(args)?;
    let engine = cfg.open(data)?;
    if event_loop {
        #[cfg(unix)]
        {
            let reactor = server_cfg.reactor;
            let server = knmatch_server::EventServer::bind(engine, addr, server_cfg)
                .map_err(|e| format!("bind {addr}: {e}"))?;
            println!(
                "listening on {} (event loop, reactor {}, {}, {} points x {} dims)",
                server.local_addr(),
                reactor,
                cfg.describe(),
                server.engine().cardinality(),
                server.engine().dims(),
            );
            std::io::stdout().flush().ok();
            server.serve().map_err(|e| e.to_string())?;
            return Ok(serve_summary(server.stats(), server.engine().plan_counts()));
        }
        #[cfg(not(unix))]
        return Err("--event-loop needs poll(2) (unix); omit it for the blocking server".into());
    }
    let server = Server::bind(engine, addr, server_cfg).map_err(|e| format!("bind {addr}: {e}"))?;
    println!(
        "listening on {} ({}, {} points x {} dims)",
        server.local_addr(),
        cfg.describe(),
        server.engine().cardinality(),
        server.engine().dims(),
    );
    std::io::stdout().flush().ok();
    server.serve().map_err(|e| e.to_string())?;
    Ok(serve_summary(server.stats(), server.engine().plan_counts()))
}

/// The post-drain one-liner both server front-ends print.
fn serve_summary(
    t: knmatch_server::StatsSnapshot,
    plans: Option<knmatch_core::PlanTally>,
) -> String {
    let plans = match plans {
        Some(p) => format!(
            ", plans: {} ad / {} vafile / {} scan / {} igrid",
            p.ad, p.vafile, p.scan, p.igrid
        ),
        None => String::new(),
    };
    format!(
        "shutdown complete: {} queries ({} errors, {} timeouts) over {} connection(s), \
         {} bytes in / {} bytes out{plans}\n",
        t.queries, t.errors, t.timeouts, t.connections, t.bytes_in, t.bytes_out
    )
}

/// Talks to a running `knmatch serve`: `--ping` probes it, `--shutdown`
/// drains it, and `--queries` submits a batch (same query-spec flags as
/// `batch`), printing the same per-query report. `--binary` speaks
/// compact frames instead of text lines; `--pipeline DEPTH` sends the
/// queries individually with up to DEPTH in flight (best against
/// `serve --event-loop`).
fn client(args: &[String]) -> Result<(String, bool), String> {
    let addr = args.first().ok_or("client needs <host:port>")?;
    let connect = || Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"));
    if args.iter().any(|a| a == "--shutdown") {
        connect()?.shutdown_server().map_err(|e| e.to_string())?;
        return Ok((format!("{addr}: shutting down\n"), true));
    }
    if args.iter().any(|a| a == "--ping") {
        connect()?.ping().map_err(|e| e.to_string())?;
        return Ok((format!("{addr}: pong\n"), true));
    }
    let queries_path = flag_value(args, "--queries")
        .ok_or("client needs --queries <file.csv> (or --ping / --shutdown)")?;
    let qs = knmatch_data::load_dataset(queries_path).map_err(|e| e.to_string())?;
    let points: Vec<Vec<f64>> = qs.iter().map(|(_, p)| p.to_vec()).collect();
    let (queries, header) = build_queries(args, points)?;

    let binary = args.iter().any(|a| a == "--binary");
    let fail_fast = args.iter().any(|a| a == "--fail-fast");
    let want_stats = args.iter().any(|a| a == "--stats");
    let deadline_ms = match flag_value(args, "--deadline-ms") {
        Some(ms) => {
            let ms: u64 = parse_num(ms, "--deadline-ms")?;
            if ms == 0 {
                // On the wire DEADLINE 0 *clears* the deadline, the opposite
                // of what `batch --deadline-ms 0` (fail everything) means.
                return Err("client --deadline-ms must be > 0".into());
            }
            Some(ms)
        }
        None => None,
    };
    let planner = flag_value(args, "--planner")
        .map(|m| m.parse::<knmatch_core::PlannerMode>())
        .transpose()?;
    let pipeline = flag_value(args, "--pipeline")
        .map(|d| parse_num(d, "--pipeline"))
        .transpose()?;
    if pipeline == Some(0) {
        return Err("--pipeline depth must be > 0".into());
    }
    let retries: u64 = parse_num(flag_value(args, "--retries").unwrap_or("0"), "--retries")?;
    let timeout_ms: u64 = parse_num(
        flag_value(args, "--timeout-ms").unwrap_or("0"),
        "--timeout-ms",
    )?;
    let backoff_ms: u64 = parse_num(
        flag_value(args, "--backoff-ms").unwrap_or("0"),
        "--backoff-ms",
    )?;
    if retries == 0 && backoff_ms > 0 {
        return Err("--backoff-ms only applies with --retries".into());
    }

    let started = std::time::Instant::now();
    let (reply, stats, retries_used) = if retries > 0 {
        if pipeline.is_some() {
            return Err("--pipeline cannot be combined with --retries \
                        (reconnect-and-replay resends whole batches)"
                .into());
        }
        let mut policy = knmatch_server::RetryPolicy {
            retries: retries as u32,
            ..knmatch_server::RetryPolicy::default()
        };
        if timeout_ms > 0 {
            policy.timeout = Some(std::time::Duration::from_millis(timeout_ms));
        }
        if backoff_ms > 0 {
            policy.backoff_base = std::time::Duration::from_millis(backoff_ms);
        }
        let mut c = knmatch_server::RetryingClient::connect(addr, policy)
            .map_err(|e| format!("connect {addr}: {e}"))?;
        c.set_binary(binary);
        if let Some(ms) = deadline_ms {
            c.set_deadline_ms(ms);
        }
        if fail_fast {
            c.set_fail_fast(true);
        }
        if let Some(mode) = planner {
            c.set_planner(mode);
        }
        let reply = c.run_batch(&queries).map_err(|e| e.to_string())?;
        let stats = if want_stats {
            Some(c.stats_report().map_err(|e| e.to_string())?)
        } else {
            None
        };
        let used = c.retries_used();
        c.close();
        (reply, stats, used)
    } else {
        let mut c = connect()?;
        c.set_binary(binary);
        if timeout_ms > 0 {
            c.set_timeout(Some(std::time::Duration::from_millis(timeout_ms)))
                .map_err(|e| e.to_string())?;
        }
        if let Some(ms) = deadline_ms {
            c.set_deadline_ms(ms).map_err(|e| e.to_string())?;
        }
        if fail_fast {
            c.set_fail_fast(true).map_err(|e| e.to_string())?;
        }
        if let Some(mode) = planner {
            c.set_planner(mode).map_err(|e| e.to_string())?;
        }
        let reply = match pipeline {
            Some(depth) => {
                let answers = c
                    .run_pipelined(&queries, depth)
                    .map_err(|e| e.to_string())?;
                let ok = answers.iter().filter(|a| a.is_ok()).count() as u64;
                let failed = answers.len() as u64 - ok;
                knmatch_server::BatchReply {
                    answers,
                    ok,
                    failed,
                }
            }
            None => c.run_batch(&queries).map_err(|e| e.to_string())?,
        };
        let stats = if want_stats {
            Some(c.stats_report().map_err(|e| e.to_string())?)
        } else {
            None
        };
        c.quit().map_err(|e| e.to_string())?;
        (reply, stats, 0)
    };
    let elapsed = started.elapsed();

    let mut out = format!(
        "{} queries ({header}) against {addr}\n",
        reply.answers.len()
    );
    for (i, r) in reply.answers.iter().enumerate() {
        match r {
            Ok(answer) => writeln!(out, "  #{i}: [{}]", shown_ids(answer)),
            Err(e) => writeln!(out, "  #{i}: error: {e}"),
        }
        .expect("write to String");
    }
    let secs = elapsed.as_secs_f64();
    writeln!(
        out,
        "{} ok / {} failed in {:.1} ms ({:.0} queries/s)",
        reply.ok,
        reply.failed,
        secs * 1e3,
        if secs > 0.0 {
            reply.answers.len() as f64 / secs
        } else {
            f64::INFINITY
        },
    )
    .expect("write to String");
    if retries_used > 0 {
        writeln!(out, "retried {retries_used} time(s)").expect("write to String");
    }
    if let Some(report) = stats {
        let (conn, server) = (&report.conn, &report.server);
        writeln!(
            out,
            "connection: {} queries, {} errors, {} bytes in / {} bytes out",
            conn.queries, conn.errors, conn.bytes_in, conn.bytes_out
        )
        .expect("write to String");
        writeln!(
            out,
            "server: {} queries, {} errors, {} timeouts, {} connection(s)",
            server.queries, server.errors, server.timeouts, server.connections
        )
        .expect("write to String");
        if let Some(v) = report.version {
            writeln!(
                out,
                "version: epoch {}, {} live, {} delta rows, {} run(s), {} tombstones, \
                 {} writes, {} merges",
                v.epoch, v.live, v.delta, v.runs, v.tombstones, v.writes, v.merges
            )
            .expect("write to String");
        }
        if let Some(p) = report.plans {
            writeln!(
                out,
                "plans: {} ad, {} vafile, {} scan, {} igrid",
                p.ad, p.vafile, p.scan, p.igrid
            )
            .expect("write to String");
        }
        if let Some(x) = report.extras {
            writeln!(
                out,
                "event loop: {} conns peak, depth {} max, {} binary frames, \
                 reactor {} ({} iterations, {} events, {} writev calls)",
                x.conns_peak,
                x.pipeline_depth_max,
                x.frames_binary,
                x.reactor_backend,
                x.poll_iterations,
                x.events_dispatched,
                x.writev_calls
            )
            .expect("write to String");
            writeln!(
                out,
                "robustness: {} evicted, {} shed, {} retries asked, {} deadline cancels",
                x.conns_evicted, x.queries_shed, x.retries_observed, x.deadline_cancels
            )
            .expect("write to String");
        }
    }
    Ok((out, reply.failed == 0))
}

/// Streams a CSV of points into a running `serve --mutable` instance:
/// row `i` is inserted under key `--start-key + i` (an existing key is
/// an upsert), `--seal` freezes the delta into a sorted run afterwards,
/// `--binary` speaks compact frames, and `--stats` prints the server's
/// version counters once the load drains. Per-key failures are reported
/// inline and carried to the exit code, like `batch`.
fn ingest(args: &[String]) -> Result<(String, bool), String> {
    let addr = args.first().ok_or("ingest needs <host:port>")?;
    let points_path = flag_value(args, "--points").ok_or("ingest needs --points <file.csv>")?;
    let start_key: u32 = parse_num(
        flag_value(args, "--start-key").unwrap_or("0"),
        "--start-key",
    )?;
    let ds = knmatch_data::load_dataset(points_path).map_err(|e| e.to_string())?;

    let mut c = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    c.set_binary(args.iter().any(|a| a == "--binary"));
    let started = std::time::Instant::now();
    let mut out = String::new();
    let mut failures = 0usize;
    let mut last_epoch = 0u64;
    for (pid, point) in ds.iter() {
        let key = start_key
            .checked_add(pid)
            .ok_or_else(|| format!("--start-key {start_key} overflows at row {pid}"))?;
        match c.insert(key, point).map_err(|e| e.to_string())? {
            Ok(epoch) => last_epoch = epoch,
            Err(e) => {
                failures += 1;
                writeln!(out, "  key {key}: error: {e}").expect("write to String");
            }
        }
    }
    if args.iter().any(|a| a == "--seal") {
        match c.seal().map_err(|e| e.to_string())? {
            Ok(epoch) => {
                last_epoch = epoch;
                writeln!(out, "sealed delta at epoch {epoch}").expect("write to String");
            }
            Err(e) => {
                failures += 1;
                writeln!(out, "seal: error: {e}").expect("write to String");
            }
        }
    }
    let secs = started.elapsed().as_secs_f64();
    writeln!(
        out,
        "{} inserted / {failures} failed into {addr} in {:.1} ms ({:.0} writes/s), epoch {last_epoch}",
        ds.len() - failures.min(ds.len()),
        secs * 1e3,
        if secs > 0.0 {
            ds.len() as f64 / secs
        } else {
            f64::INFINITY
        },
    )
    .expect("write to String");
    if args.iter().any(|a| a == "--stats") {
        let report = c.stats_report().map_err(|e| e.to_string())?;
        match report.version {
            Some(v) => writeln!(
                out,
                "version: epoch {}, {} live, {} delta rows, {} run(s), {} tombstones, \
                 {} writes, {} merges",
                v.epoch, v.live, v.delta, v.runs, v.tombstones, v.writes, v.merges
            ),
            None => writeln!(out, "version: server is read-only"),
        }
        .expect("write to String");
    }
    c.quit().map_err(|e| e.to_string())?;
    Ok((out, failures == 0))
}

/// Parses the batch-wide fault-handling flags: `--deadline-ms <MS>` gives
/// every query of the batch a time budget, `--fail-fast` cancels the rest
/// of the batch after the first failure.
fn batch_options(args: &[String]) -> Result<BatchOptions, String> {
    let deadline = match flag_value(args, "--deadline-ms") {
        Some(ms) => Some(std::time::Duration::from_millis(parse_num(
            ms,
            "--deadline-ms",
        )?)),
        None => None,
    };
    let planner = match flag_value(args, "--planner") {
        Some(mode) => Some(mode.parse::<knmatch_core::PlannerMode>()?),
        None => None,
    };
    Ok(BatchOptions {
        deadline,
        fail_fast: args.iter().any(|a| a == "--fail-fast"),
        planner,
        ..BatchOptions::default()
    })
}

/// Pulls the value following `flag` out of `args`.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("cannot parse {what} from '{s}'"))
}

fn generate(args: &[String]) -> Result<String, String> {
    let kind = flag_value(args, "--kind").ok_or("generate needs --kind")?;
    let out = flag_value(args, "--out").ok_or("generate needs --out")?;
    let cardinality: usize = parse_num(
        flag_value(args, "--cardinality").unwrap_or("1000"),
        "--cardinality",
    )?;
    let dims: usize = parse_num(flag_value(args, "--dims").unwrap_or("16"), "--dims")?;
    let seed: u64 = parse_num(flag_value(args, "--seed").unwrap_or("42"), "--seed")?;

    let written = match kind {
        "uniform" => {
            let ds = knmatch_data::uniform(cardinality, dims, seed);
            knmatch_data::save_dataset(out, &ds).map_err(|e| e.to_string())?;
            ds.len()
        }
        "skewed" => {
            let ds = knmatch_data::skewed(cardinality, dims, seed);
            knmatch_data::save_dataset(out, &ds).map_err(|e| e.to_string())?;
            ds.len()
        }
        "clusters" => {
            let classes: usize =
                parse_num(flag_value(args, "--classes").unwrap_or("4"), "--classes")?;
            let lds = knmatch_data::labelled_clusters(&knmatch_data::ClusterSpec::new(
                cardinality,
                dims,
                classes,
                seed,
            ));
            std::fs::write(out, knmatch_data::labelled_to_csv(&lds)).map_err(|e| e.to_string())?;
            lds.data.len()
        }
        "coil" => {
            let ds = knmatch_data::coil_like(seed);
            knmatch_data::save_dataset(out, &ds).map_err(|e| e.to_string())?;
            ds.len()
        }
        other => return Err(format!("unknown --kind '{other}'")),
    };
    Ok(format!("wrote {written} points to {out}\n"))
}

fn build(args: &[String]) -> Result<String, String> {
    let [input, output] = args else {
        return Err("build needs <data.csv> <db.knm>".into());
    };
    let ds = knmatch_data::load_dataset(input).map_err(|e| e.to_string())?;
    DiskDatabase::create_file(output, &ds, 256).map_err(|e| e.to_string())?;
    Ok(format!(
        "built {output}: {} points x {} dims ({} data pages + {} column pages)\n",
        ds.len(),
        ds.dims(),
        ds.len()
            .div_ceil(knmatch_storage::page::rows_per_page(ds.dims())),
        ds.dims() * ds.len().div_ceil(knmatch_storage::COLUMN_ENTRIES_PER_PAGE),
    ))
}

fn info(args: &[String]) -> Result<String, String> {
    let [path] = args else {
        return Err("info needs <db.knm>".into());
    };
    let db = DiskDatabase::open_file(path, 16).map_err(|e| e.to_string())?;
    Ok(format!(
        "{path}: {} points x {} dims; heap {} pages, columns {} pages\n",
        db.len(),
        db.dims(),
        db.heap().total_pages(),
        db.columns().total_pages(),
    ))
}

fn query(args: &[String]) -> Result<String, String> {
    let path = args.first().ok_or("query needs <db.knm>")?;
    let point_s = flag_value(args, "--point").ok_or("query needs --point v1,v2,…")?;
    let k: usize = parse_num(flag_value(args, "-k").ok_or("query needs -k")?, "-k")?;
    let point: Vec<f64> = point_s
        .split(',')
        .map(|v| parse_num::<f64>(v.trim(), "--point coordinate"))
        .collect::<Result<_, _>>()?;

    if args.iter().any(|a| a == "--shards") {
        return query_sharded(args, path, &point, k);
    }

    let mut db = DiskDatabase::open_file(path, 256).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let model = CostModel::default();
    if let Some(i) = args.iter().position(|a| a == "--frequent") {
        let n0: usize = parse_num(args.get(i + 1).ok_or("--frequent needs N0 N1")?, "N0")?;
        let n1: usize = parse_num(args.get(i + 2).ok_or("--frequent needs N0 N1")?, "N1")?;
        let r = if args.iter().any(|a| a == "--auto") {
            let (r, choice) = db
                .frequent_k_n_match_auto(&point, k, n0, n1, model)
                .map_err(|e| e.to_string())?;
            writeln!(
                out,
                "planner chose {:?} (estimated AD {:.1} ms vs scan {:.1} ms)",
                choice.plan, choice.ad_estimate_ms, choice.scan_estimate_ms
            )
            .expect("write to String");
            r
        } else {
            db.frequent_k_n_match(&point, k, n0, n1)
                .map_err(|e| e.to_string())?
        };
        writeln!(out, "frequent {k}-n-match, n in [{n0}, {n1}]:").expect("write to String");
        for e in &r.result.entries {
            writeln!(out, "  point {:>8}  appears {} times", e.pid, e.count)
                .expect("write to String");
        }
        writeln!(
            out,
            "cost: {} attributes, {} pages ({} seq + {} rand, {} hits), {:.1} ms modelled",
            r.ad.attributes_retrieved,
            r.io.page_accesses(),
            r.io.sequential_reads,
            r.io.random_reads,
            r.io.hits,
            r.io.response_time_ms(model)
        )
        .expect("write to String");
    } else {
        let n: usize = parse_num(
            flag_value(args, "-n").ok_or("query needs -n or --frequent")?,
            "-n",
        )?;
        let r = db.k_n_match(&point, k, n).map_err(|e| e.to_string())?;
        writeln!(out, "{k}-{n}-match (epsilon = {:.6}):", r.result.epsilon())
            .expect("write to String");
        for e in &r.result.entries {
            writeln!(out, "  point {:>8}  n-match diff {:.6}", e.pid, e.diff)
                .expect("write to String");
        }
        writeln!(
            out,
            "cost: {} attributes, {} pages ({} seq + {} rand, {} hits), {:.1} ms modelled",
            r.ad.attributes_retrieved,
            r.io.page_accesses(),
            r.io.sequential_reads,
            r.io.random_reads,
            r.io.hits,
            r.io.response_time_ms(model)
        )
        .expect("write to String");
    }
    Ok(out)
}

/// The `--shards` arm of `query`: [`EngineConfig`] loads the database's
/// points into memory and shards them by point id, and the single query
/// runs with intra-query parallelism — reporting per-shard AD cost
/// instead of the disk I/O model (the sharded engine is an in-memory
/// path).
fn query_sharded(args: &[String], path: &str, point: &[f64], k: usize) -> Result<String, String> {
    if args.iter().any(|a| a == "--auto") {
        return Err("--auto plans disk I/O; it cannot be combined with --shards".into());
    }
    let cfg = EngineConfig::from_args(args)?;
    let engine = cfg.open(path)?;

    let (query, header) = if let Some(i) = args.iter().position(|a| a == "--frequent") {
        let n0: usize = parse_num(args.get(i + 1).ok_or("--frequent needs N0 N1")?, "N0")?;
        let n1: usize = parse_num(args.get(i + 2).ok_or("--frequent needs N0 N1")?, "N1")?;
        (
            BatchQuery::Frequent {
                query: point.to_vec(),
                k,
                n0,
                n1,
            },
            format!("frequent {k}-n-match, n in [{n0}, {n1}]"),
        )
    } else {
        let n: usize = parse_num(
            flag_value(args, "-n").ok_or("query needs -n or --frequent")?,
            "-n",
        )?;
        (
            BatchQuery::KnMatch {
                query: point.to_vec(),
                k,
                n,
            },
            format!("{k}-{n}-match"),
        )
    };

    let outcome = engine
        .run(std::slice::from_ref(&query))
        .pop()
        .expect("one result per query")
        .map_err(|e| e.to_string())?;

    let mut out = format!(
        "{header} over {} shard(s), {} worker(s), in-memory:\n",
        engine.shard_count().unwrap_or(1),
        engine.workers()
    );
    match outcome.answer() {
        BatchAnswer::KnMatch(r) | BatchAnswer::EpsMatch(r) => {
            for e in &r.entries {
                writeln!(out, "  point {:>8}  n-match diff {:.6}", e.pid, e.diff)
                    .expect("write to String");
            }
        }
        BatchAnswer::Frequent(r) => {
            for e in &r.entries {
                writeln!(out, "  point {:>8}  appears {} times", e.pid, e.count)
                    .expect("write to String");
            }
        }
    }
    let shard_stats = outcome.per_shard().unwrap_or(&[]);
    let per_shard: Vec<String> = shard_stats
        .iter()
        .map(|s| s.attributes_retrieved.to_string())
        .collect();
    writeln!(
        out,
        "cost: {} attributes across {} shard(s) ({})",
        outcome.ad_stats().attributes_retrieved,
        shard_stats.len(),
        per_shard.join(" + ")
    )
    .expect("write to String");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|p| p.to_string()).collect()
    }

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("knmatch-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    #[test]
    fn end_to_end_generate_build_query() {
        let dir = tmpdir();
        let csv = dir.join("data.csv");
        let db = dir.join("data.knm");
        let out = run(&s(&[
            "generate",
            "--kind",
            "uniform",
            "--cardinality",
            "500",
            "--dims",
            "4",
            "--out",
            csv.to_str().unwrap(),
        ]))
        .unwrap()
        .0;
        assert!(out.contains("wrote 500 points"));

        let out = run(&s(&["build", csv.to_str().unwrap(), db.to_str().unwrap()]))
            .unwrap()
            .0;
        assert!(out.contains("500 points x 4 dims"));

        let out = run(&s(&["info", db.to_str().unwrap()])).unwrap().0;
        assert!(out.contains("500 points"));

        let out = run(&s(&[
            "query",
            db.to_str().unwrap(),
            "--point",
            "0.5,0.5,0.5,0.5",
            "-k",
            "3",
            "-n",
            "2",
        ]))
        .unwrap()
        .0;
        assert!(out.contains("3-2-match"));
        assert_eq!(out.matches("n-match diff").count(), 3);

        let out = run(&s(&[
            "query",
            db.to_str().unwrap(),
            "--point",
            "0.5,0.5,0.5,0.5",
            "-k",
            "2",
            "--frequent",
            "1",
            "4",
        ]))
        .unwrap()
        .0;
        assert!(out.contains("appears"));

        // The library oracle agrees on the answer-set size the CLI printed.
        let ds = knmatch_data::load_dataset(&csv).unwrap();
        let oracle = knmatch_core::k_n_match_scan(&ds, &[0.5, 0.5, 0.5, 0.5], 3, 2).unwrap();
        assert_eq!(oracle.entries.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn generate_clusters_and_coil() {
        let dir = tmpdir();
        let f = dir.join("c.csv");
        let out = run(&s(&[
            "generate",
            "--kind",
            "clusters",
            "--cardinality",
            "60",
            "--dims",
            "5",
            "--classes",
            "3",
            "--out",
            f.to_str().unwrap(),
        ]))
        .unwrap()
        .0;
        assert!(out.contains("wrote 60"));
        let lds = knmatch_data::labelled_from_csv(&std::fs::read_to_string(&f).unwrap()).unwrap();
        assert_eq!(lds.classes(), 3);

        let out = run(&s(&[
            "generate",
            "--kind",
            "coil",
            "--out",
            f.to_str().unwrap(),
        ]))
        .unwrap()
        .0;
        assert!(out.contains("wrote 100"));
        std::fs::remove_file(&f).ok();
    }

    #[test]
    fn errors_are_reported() {
        assert!(run(&s(&[])).is_err());
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&s(&["generate", "--kind", "nope", "--out", "/tmp/x"])).is_err());
        assert!(run(&s(&["build", "only-one-arg"])).is_err());
        assert!(run(&s(&["info", "/nonexistent/file.knm"])).is_err());
        assert!(run(&s(&[
            "query",
            "/nonexistent.knm",
            "--point",
            "1",
            "-k",
            "1",
            "-n",
            "1"
        ]))
        .is_err());
    }

    #[test]
    fn flag_parsing() {
        let args = s(&["--point", "1,2", "-k", "5"]);
        assert_eq!(flag_value(&args, "--point"), Some("1,2"));
        assert_eq!(flag_value(&args, "-k"), Some("5"));
        assert_eq!(flag_value(&args, "--missing"), None);
        assert!(parse_num::<usize>("12", "x").is_ok());
        assert!(parse_num::<usize>("twelve", "x").is_err());
    }
}

#[cfg(test)]
mod verify_bench_tests {
    use super::*;

    fn s(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|p| p.to_string()).collect()
    }

    #[test]
    fn verify_and_bench_roundtrip() {
        let dir = std::env::temp_dir().join(format!("knmatch-cli-vb-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("d.csv");
        let db = dir.join("d.knm");
        run(&s(&[
            "generate",
            "--kind",
            "uniform",
            "--cardinality",
            "800",
            "--dims",
            "6",
            "--out",
            csv.to_str().unwrap(),
        ]))
        .unwrap();
        run(&s(&["build", csv.to_str().unwrap(), db.to_str().unwrap()])).unwrap();

        let out = run(&s(&["verify", db.to_str().unwrap()])).unwrap().0;
        assert!(out.contains("OK"), "{out}");

        let out = run(&s(&[
            "bench",
            db.to_str().unwrap(),
            "-k",
            "5",
            "--frequent",
            "2",
            "4",
            "--queries",
            "4",
        ]))
        .unwrap()
        .0;
        assert!(out.contains("AD"), "{out}");
        assert!(out.contains("scan"), "{out}");
        assert!(out.contains("p95"));

        // Corrupt a value byte of the first column entry (header page +
        // heap pages, then entry 0 = 4 pid bytes + 8 value bytes); verify
        // must fail.
        let mut bytes = std::fs::read(&db).unwrap();
        let heap_pages = 800usize.div_ceil(knmatch_storage::page::rows_per_page(6));
        let off = (1 + heap_pages) * knmatch_storage::PAGE_SIZE + 4 + 3;
        bytes[off] ^= 0xFF;
        std::fs::write(&db, &bytes).unwrap();
        assert!(run(&s(&["verify", db.to_str().unwrap()])).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;

    fn s(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|p| p.to_string()).collect()
    }

    #[test]
    fn batch_runs_all_query_kinds_and_matches_single_queries() {
        let dir = std::env::temp_dir().join(format!("knmatch-cli-batch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.csv");
        let queries = dir.join("queries.csv");
        run(&s(&[
            "generate",
            "--kind",
            "uniform",
            "--cardinality",
            "300",
            "--dims",
            "4",
            "--out",
            data.to_str().unwrap(),
        ]))
        .unwrap();
        run(&s(&[
            "generate",
            "--kind",
            "uniform",
            "--cardinality",
            "8",
            "--dims",
            "4",
            "--seed",
            "7",
            "--out",
            queries.to_str().unwrap(),
        ]))
        .unwrap();

        for workers in ["1", "4"] {
            let out = run(&s(&[
                "batch",
                data.to_str().unwrap(),
                "--queries",
                queries.to_str().unwrap(),
                "-k",
                "3",
                "-n",
                "2",
                "--workers",
                workers,
            ]))
            .unwrap()
            .0;
            assert!(out.contains("8 queries (3-2-match)"), "{out}");
            assert!(out.contains("8 ok / 0 failed"), "{out}");
            // Answers are worker-count independent: check one against the
            // library oracle.
            let ds = knmatch_data::load_dataset(&data).unwrap();
            let qs = knmatch_data::load_dataset(&queries).unwrap();
            let oracle = knmatch_core::k_n_match_scan(&ds, qs.point(0), 3, 2).unwrap();
            let want: Vec<String> = oracle.ids().iter().map(|p| p.to_string()).collect();
            assert!(out.contains(&format!("#0: [{}]", want.join(", "))), "{out}");
        }

        let out = run(&s(&[
            "batch",
            data.to_str().unwrap(),
            "--queries",
            queries.to_str().unwrap(),
            "-k",
            "2",
            "--frequent",
            "1",
            "4",
        ]))
        .unwrap()
        .0;
        assert!(out.contains("frequent 2-n-match, n in [1, 4]"), "{out}");

        let out = run(&s(&[
            "batch",
            data.to_str().unwrap(),
            "--queries",
            queries.to_str().unwrap(),
            "--eps",
            "0.05",
            "-n",
            "2",
        ]))
        .unwrap()
        .0;
        assert!(out.contains("eps-2-match"), "{out}");

        // Per-query failures keep the batch running but clear the all-ok
        // flag, so the process can exit non-zero.
        let (out, all_ok) = run(&s(&[
            "batch",
            data.to_str().unwrap(),
            "--queries",
            queries.to_str().unwrap(),
            "--eps",
            "-1",
            "-n",
            "2",
        ]))
        .unwrap();
        assert!(!all_ok);
        assert!(out.contains("0 ok / 8 failed"), "{out}");
        assert_eq!(out.matches("invalid epsilon -1").count(), 8);

        // --disk runs the same batch through the DiskQueryEngine: same
        // answers, now with per-query I/O stats. Per-query lines are
        // worker-count independent (modelled on a cold private pool).
        let db = dir.join("data.knm");
        run(&s(&["build", data.to_str().unwrap(), db.to_str().unwrap()])).unwrap();
        let mem = run(&s(&[
            "batch",
            data.to_str().unwrap(),
            "--queries",
            queries.to_str().unwrap(),
            "-k",
            "3",
            "-n",
            "2",
        ]))
        .unwrap()
        .0;
        let mut disk_query_lines: Option<Vec<String>> = None;
        for workers in ["1", "4"] {
            let (out, all_ok) = run(&s(&[
                "batch",
                db.to_str().unwrap(),
                "--queries",
                queries.to_str().unwrap(),
                "-k",
                "3",
                "-n",
                "2",
                "--disk",
                "--workers",
                workers,
                "--pool-pages",
                "64",
            ]))
            .unwrap();
            assert!(all_ok);
            assert!(out.contains("64 pool pages"), "{out}");
            assert!(out.contains("hit ratio"), "{out}");
            let lines: Vec<String> = out
                .lines()
                .filter(|l| l.contains("ms modelled"))
                .map(str::to_string)
                .collect();
            assert_eq!(lines.len(), 8);
            // Same ids as the in-memory engine.
            for line in &lines {
                let ids = line.split(" — ").next().unwrap().trim();
                assert!(mem.contains(ids), "{ids} missing from in-memory output");
            }
            match &disk_query_lines {
                None => disk_query_lines = Some(lines),
                Some(first) => assert_eq!(first, &lines, "workers changed modelled I/O"),
            }
        }

        assert!(run(&s(&["batch", data.to_str().unwrap()])).is_err());
        assert!(run(&s(&[
            "batch",
            data.to_str().unwrap(),
            "--queries",
            queries.to_str().unwrap(),
            "-k",
            "3",
        ]))
        .is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batch_planner_routes_and_reports_plans() {
        let dir = std::env::temp_dir().join(format!("knmatch-cli-plan-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.csv");
        let queries = dir.join("queries.csv");
        for (path, cardinality, seed) in [(&data, "500", "1"), (&queries, "6", "9")] {
            run(&s(&[
                "generate",
                "--kind",
                "uniform",
                "--cardinality",
                cardinality,
                "--dims",
                "6",
                "--seed",
                seed,
                "--out",
                path.to_str().unwrap(),
            ]))
            .unwrap();
        }
        let base = s(&[
            "batch",
            data.to_str().unwrap(),
            "--queries",
            queries.to_str().unwrap(),
            "-k",
            "4",
            "-n",
            "3",
        ]);
        let plain = run(&base).unwrap().0;
        let plain_answers: Vec<&str> = plain
            .lines()
            .filter(|l| l.trim_start().starts_with('#'))
            .collect();

        for mode in ["auto", "ad", "vafile", "scan", "igrid"] {
            let mut args = base.clone();
            args.extend(s(&["--planner", mode, "--workers", "2"]));
            let (out, all_ok) = run(&args).unwrap();
            assert!(all_ok, "{out}");
            assert!(out.contains(&format!("planner {mode}")), "{out}");
            assert!(out.contains("plans:"), "{out}");
            // Planned answers are bit-identical to the plain engine's.
            for line in &plain_answers {
                assert!(out.contains(line.trim()), "missing {line:?} in {out}");
            }
        }

        // Forced scan tallies every query under scan.
        let mut args = base.clone();
        args.extend(s(&["--planner", "scan"]));
        let (out, _) = run(&args).unwrap();
        assert!(
            out.contains("plans: 0 ad, 0 vafile, 6 scan, 0 igrid"),
            "{out}"
        );

        // The planner is in-memory only, and modes must parse.
        let mut args = base.clone();
        args.extend(s(&["--planner", "auto", "--disk"]));
        assert!(run(&args).unwrap_err().contains("--planner"));
        let mut args = base;
        args.extend(s(&["--planner", "fastest"]));
        assert!(run(&args).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[cfg(test)]
mod deadline_tests {
    use super::*;

    fn s(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|p| p.to_string()).collect()
    }

    #[test]
    fn deadline_and_fail_fast_flags() {
        let dir = std::env::temp_dir().join(format!("knmatch-cli-dl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.csv");
        let queries = dir.join("queries.csv");
        run(&s(&[
            "generate",
            "--kind",
            "uniform",
            "--cardinality",
            "200",
            "--dims",
            "4",
            "--out",
            data.to_str().unwrap(),
        ]))
        .unwrap();
        run(&s(&[
            "generate",
            "--kind",
            "uniform",
            "--cardinality",
            "6",
            "--dims",
            "4",
            "--seed",
            "9",
            "--out",
            queries.to_str().unwrap(),
        ]))
        .unwrap();
        let base = s(&[
            "batch",
            data.to_str().unwrap(),
            "--queries",
            queries.to_str().unwrap(),
            "-k",
            "3",
            "-n",
            "2",
        ]);

        // An expired deadline fails every query in its own slot.
        let mut args = base.clone();
        args.extend(s(&["--deadline-ms", "0"]));
        let (out, all_ok) = run(&args).unwrap();
        assert!(!all_ok);
        assert!(out.contains("0 ok / 6 failed"), "{out}");
        assert_eq!(out.matches("query deadline exceeded").count(), 6);

        // A generous deadline changes nothing.
        let mut args = base.clone();
        args.extend(s(&["--deadline-ms", "60000"]));
        let (out, all_ok) = run(&args).unwrap();
        assert!(all_ok, "{out}");
        assert!(out.contains("6 ok / 0 failed"), "{out}");

        // --fail-fast: after the first failure (here an expired deadline)
        // the rest of the batch is cancelled. One worker gives a
        // deterministic order.
        let mut args = base.clone();
        args.extend(s(&["--deadline-ms", "0", "--fail-fast", "--workers", "1"]));
        let (out, all_ok) = run(&args).unwrap();
        assert!(!all_ok);
        assert_eq!(out.matches("query deadline exceeded").count(), 1, "{out}");
        assert_eq!(out.matches("query cancelled").count(), 5, "{out}");

        // The sharded and disk arms honour the deadline too.
        let mut args = base.clone();
        args.extend(s(&["--shards", "2", "--deadline-ms", "0"]));
        let (out, all_ok) = run(&args).unwrap();
        assert!(!all_ok);
        assert!(out.contains("query deadline exceeded"), "{out}");

        let db = dir.join("data.knm");
        run(&s(&["build", data.to_str().unwrap(), db.to_str().unwrap()])).unwrap();
        let (out, all_ok) = run(&s(&[
            "batch",
            db.to_str().unwrap(),
            "--queries",
            queries.to_str().unwrap(),
            "-k",
            "3",
            "-n",
            "2",
            "--disk",
            "--deadline-ms",
            "0",
        ]))
        .unwrap();
        assert!(!all_ok);
        assert!(out.contains("query deadline exceeded"), "{out}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[cfg(test)]
mod auto_plan_tests {
    use super::*;

    #[test]
    fn auto_flag_reports_the_plan() {
        let dir = std::env::temp_dir().join(format!("knmatch-cli-auto-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("a.csv");
        let db = dir.join("a.knm");
        let s = |parts: &[&str]| parts.iter().map(|p| p.to_string()).collect::<Vec<_>>();
        run(&s(&[
            "generate",
            "--kind",
            "uniform",
            "--cardinality",
            "2000",
            "--dims",
            "8",
            "--out",
            csv.to_str().unwrap(),
        ]))
        .unwrap();
        run(&s(&["build", csv.to_str().unwrap(), db.to_str().unwrap()])).unwrap();
        let point = "0.5,0.5,0.5,0.5,0.5,0.5,0.5,0.5";
        let out = run(&s(&[
            "query",
            db.to_str().unwrap(),
            "--point",
            point,
            "-k",
            "5",
            "--frequent",
            "2",
            "4",
            "--auto",
        ]))
        .unwrap()
        .0;
        assert!(out.contains("planner chose"), "{out}");
        assert!(out.contains("appears"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[cfg(test)]
mod ingest_tests {
    use super::*;

    fn s(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|p| p.to_string()).collect()
    }

    /// `ingest` streams a CSV into a mutable server (keys offset by
    /// `--start-key`), `--seal` freezes the delta, and both `ingest
    /// --stats` and `client --stats` print the version counter line.
    /// `serve` itself blocks until shutdown, so the server side binds
    /// through the same [`EngineConfig`] grammar the command uses.
    #[test]
    fn ingest_streams_points_into_a_mutable_server() {
        let dir = std::env::temp_dir().join(format!("knmatch-cli-ingest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.csv");
        let extra = dir.join("extra.csv");
        let queries = dir.join("queries.csv");
        for (path, cardinality, seed) in [
            (&data, "100", "42"),
            (&extra, "20", "7"),
            (&queries, "4", "9"),
        ] {
            run(&s(&[
                "generate",
                "--kind",
                "uniform",
                "--cardinality",
                cardinality,
                "--dims",
                "4",
                "--seed",
                seed,
                "--out",
                path.to_str().unwrap(),
            ]))
            .unwrap();
        }
        let ds = knmatch_data::load_dataset(&data).unwrap();

        let cfg = EngineConfig::from_args(&s(&["--mutable", "--merge-threshold", "8"])).unwrap();
        let server = Server::bind(
            cfg.build_in_memory(&ds),
            "127.0.0.1:0",
            knmatch_server::ServerConfig::default(),
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        let handle = server.handle();
        std::thread::scope(|sc| {
            let serving = sc.spawn(|| server.serve().unwrap());
            let (out, all_ok) = run(&s(&[
                "ingest",
                &addr,
                "--points",
                extra.to_str().unwrap(),
                "--start-key",
                "1000",
                "--seal",
                "--stats",
            ]))
            .unwrap();
            assert!(all_ok, "{out}");
            assert!(out.contains("20 inserted / 0 failed"), "{out}");
            assert!(out.contains("sealed delta at epoch"), "{out}");
            assert!(out.contains("version: epoch"), "{out}");
            assert!(out.contains("120 live"), "{out}");

            let (out, all_ok) = run(&s(&[
                "client",
                &addr,
                "--queries",
                queries.to_str().unwrap(),
                "-k",
                "3",
                "-n",
                "2",
                "--stats",
            ]))
            .unwrap();
            assert!(all_ok, "{out}");
            assert!(out.contains("version: epoch"), "{out}");
            handle.shutdown();
            serving.join().unwrap();
        });

        // Against a read-only server every insert fails, the failures
        // are itemised, and the all-ok flag clears for the exit code.
        let server = Server::bind(
            EngineConfig::default().build_in_memory(&ds),
            "127.0.0.1:0",
            knmatch_server::ServerConfig::default(),
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        let handle = server.handle();
        std::thread::scope(|sc| {
            let serving = sc.spawn(|| server.serve().unwrap());
            let (out, all_ok) =
                run(&s(&["ingest", &addr, "--points", extra.to_str().unwrap()])).unwrap();
            assert!(!all_ok);
            assert!(out.contains("0 inserted / 20 failed"), "{out}");
            assert!(out.contains("immutable"), "{out}");
            handle.shutdown();
            serving.join().unwrap();
        });

        assert!(run(&s(&["ingest"])).is_err());
        assert!(run(&s(&["ingest", "127.0.0.1:1"])).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[cfg(test)]
mod sharded_cli_tests {
    use super::*;

    fn s(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|p| p.to_string()).collect()
    }

    /// What `--shards N` resolves to on this host (single-CPU hosts
    /// collapse every shard request to 1).
    fn effective_shards(requested: &str) -> String {
        let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cpus == 1 {
            "1".to_string()
        } else {
            requested.to_string()
        }
    }

    /// The per-query answer lines of a batch run, header/footer stripped.
    fn answer_lines(out: &str) -> Vec<String> {
        out.lines()
            .filter(|l| l.trim_start().starts_with('#'))
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn batch_shards_match_unsharded_and_reject_disk() {
        let dir = std::env::temp_dir().join(format!("knmatch-cli-shard-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.csv");
        let queries = dir.join("queries.csv");
        run(&s(&[
            "generate",
            "--kind",
            "uniform",
            "--cardinality",
            "400",
            "--dims",
            "5",
            "--out",
            data.to_str().unwrap(),
        ]))
        .unwrap();
        run(&s(&[
            "generate",
            "--kind",
            "uniform",
            "--cardinality",
            "6",
            "--dims",
            "5",
            "--seed",
            "11",
            "--out",
            queries.to_str().unwrap(),
        ]))
        .unwrap();

        let base = s(&[
            "batch",
            data.to_str().unwrap(),
            "--queries",
            queries.to_str().unwrap(),
            "-k",
            "4",
            "-n",
            "3",
        ]);
        let plain = run(&base).unwrap().0;
        for shards in ["1", "3"] {
            let mut args = base.clone();
            args.extend(s(&["--shards", shards, "--workers", "2"]));
            let (out, all_ok) = run(&args).unwrap();
            assert!(all_ok);
            // A single-CPU host collapses any shard request to 1.
            let shown = effective_shards(shards);
            assert!(out.contains(&format!("{shown} shard(s)")), "{out}");
            assert_eq!(
                answer_lines(&out),
                answer_lines(&plain),
                "sharded ids diverged at --shards {shards}"
            );
        }

        // Frequent queries shard too.
        let mut args = s(&[
            "batch",
            data.to_str().unwrap(),
            "--queries",
            queries.to_str().unwrap(),
            "-k",
            "3",
            "--frequent",
            "1",
            "5",
        ]);
        let plain = run(&args).unwrap().0;
        args.extend(s(&["--shards", "4"]));
        let sharded = run(&args).unwrap().0;
        assert_eq!(answer_lines(&sharded), answer_lines(&plain));

        // --shards is the in-memory engine; --disk must be rejected.
        let mut args = base.clone();
        args.extend(s(&["--shards", "2", "--disk"]));
        let err = run(&args).unwrap_err();
        assert!(err.contains("cannot be combined with --disk"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn query_shards_answer_and_cost_breakdown() {
        let dir = std::env::temp_dir().join(format!("knmatch-cli-shardq-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("q.csv");
        let db = dir.join("q.knm");
        run(&s(&[
            "generate",
            "--kind",
            "uniform",
            "--cardinality",
            "300",
            "--dims",
            "4",
            "--out",
            csv.to_str().unwrap(),
        ]))
        .unwrap();
        run(&s(&["build", csv.to_str().unwrap(), db.to_str().unwrap()])).unwrap();

        let point = "0.5,0.5,0.5,0.5";
        let plain = run(&s(&[
            "query",
            db.to_str().unwrap(),
            "--point",
            point,
            "-k",
            "3",
            "-n",
            "2",
        ]))
        .unwrap()
        .0;
        let plain_ids: Vec<&str> = plain
            .lines()
            .filter(|l| l.contains("n-match diff"))
            .collect();
        assert_eq!(plain_ids.len(), 3);

        let out = run(&s(&[
            "query",
            db.to_str().unwrap(),
            "--point",
            point,
            "-k",
            "3",
            "-n",
            "2",
            "--shards",
            "4",
            "--workers",
            "2",
        ]))
        .unwrap()
        .0;
        let shown = effective_shards("4");
        assert!(out.contains(&format!("{shown} shard(s)")), "{out}");
        // Same answer lines as the disk path, in the same order.
        for line in &plain_ids {
            assert!(out.contains(line.trim()), "missing {line:?} in {out}");
        }
        // Cost line sums the per-shard breakdown.
        let cost = out.lines().find(|l| l.starts_with("cost:")).unwrap();
        assert!(cost.contains(&format!("across {shown} shard(s)")), "{cost}");

        let out = run(&s(&[
            "query",
            db.to_str().unwrap(),
            "--point",
            point,
            "-k",
            "2",
            "--frequent",
            "1",
            "4",
            "--shards",
            "3",
        ]))
        .unwrap()
        .0;
        assert!(out.contains("appears"), "{out}");
        let shown = effective_shards("3");
        assert!(out.contains(&format!("{shown} shard(s)")), "{out}");

        let err = run(&s(&[
            "query",
            db.to_str().unwrap(),
            "--point",
            point,
            "-k",
            "2",
            "--frequent",
            "1",
            "4",
            "--shards",
            "3",
            "--auto",
        ]))
        .unwrap_err();
        assert!(err.contains("cannot be combined with --shards"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
