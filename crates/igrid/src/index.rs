//! The in-memory IGrid index and its similarity function.
//!
//! IGrid keeps one inverted list per (dimension, range): all `(pid, value)`
//! pairs whose value falls in that range. A query touches exactly one list
//! per dimension — the one containing the query's value — and accumulates
//! the similarity
//!
//! `S(P, Q) = [ Σ_{i ∈ PS(P,Q)} (1 − |p_i − q_i| / m_i)^p ]^{1/p}`
//!
//! over the proximity set `PS` (dimensions where `P` and `Q` share a
//! range), `m_i` being that range's width. Larger is more similar. Like
//! the n-match difference it discretises per dimension and ignores
//! non-matching dimensions, but the discretisation is a fixed equi-depth
//! grid fitted up front rather than the query-adaptive ε — the contrast the
//! paper draws in Section 6.

use knmatch_core::{Dataset, KnMatchError, PointId, Result};

use crate::partition::{default_bins, EquiDepthPartition};

/// One ranked IGrid answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IGridAnswer {
    /// The matched point.
    pub pid: PointId,
    /// Its IGrid similarity to the query (larger = more similar).
    pub similarity: f64,
}

/// The in-memory IGrid index.
#[derive(Debug, Clone)]
pub struct IGridIndex {
    partition: EquiDepthPartition,
    /// `lists[dim * bins + bin]` = `(pid, value)` pairs of that range, in
    /// pid (insertion) order.
    lists: Vec<Vec<(PointId, f64)>>,
    cardinality: usize,
    /// The `p` exponent of the similarity aggregate.
    p: f64,
}

impl IGridIndex {
    /// Builds the index over `ds` with the paper-default range count
    /// (`kd = d/2`) and `p = 2`.
    pub fn build(ds: &Dataset) -> Self {
        Self::build_with(ds, default_bins(ds.dims()), 2.0)
    }

    /// Builds with an explicit range count and similarity exponent.
    ///
    /// # Panics
    ///
    /// Panics when `bins < 2`, `ds` is empty, or `p` is not positive.
    pub fn build_with(ds: &Dataset, bins: usize, p: f64) -> Self {
        assert!(
            p > 0.0 && p.is_finite(),
            "similarity exponent must be positive"
        );
        let partition = EquiDepthPartition::fit(ds, bins);
        let mut lists = vec![Vec::new(); ds.dims() * bins];
        for (pid, point) in ds.iter() {
            for (dim, &v) in point.iter().enumerate() {
                let bin = partition.bin_of(dim, v);
                lists[dim * bins + bin].push((pid, v));
            }
        }
        IGridIndex {
            partition,
            lists,
            cardinality: ds.len(),
            p,
        }
    }

    /// The fitted partition.
    pub fn partition(&self) -> &EquiDepthPartition {
        &self.partition
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.cardinality
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.cardinality == 0
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.partition.dims()
    }

    /// The inverted list of (dim, bin).
    pub fn list(&self, dim: usize, bin: usize) -> &[(PointId, f64)] {
        &self.lists[dim * self.partition.bins() + bin]
    }

    /// IGrid similarity between two full points (reference implementation,
    /// used by tests and the accuracy protocol).
    ///
    /// # Panics
    ///
    /// Panics on dimensionality mismatch.
    pub fn similarity(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), self.dims());
        assert_eq!(b.len(), self.dims());
        let mut acc = 0.0f64;
        for dim in 0..self.dims() {
            let ba = self.partition.bin_of(dim, a[dim]);
            if ba == self.partition.bin_of(dim, b[dim]) {
                let m = self.partition.bin_width(dim, ba);
                let t = (1.0 - (a[dim] - b[dim]).abs() / m).max(0.0);
                acc += t.powf(self.p);
            }
        }
        acc.powf(1.0 / self.p)
    }

    /// Returns the `k` most similar points to `query`, in descending
    /// `(similarity, -pid)` order. Touches one inverted list per dimension.
    ///
    /// # Errors
    ///
    /// Rejects malformed queries and out-of-range `k`.
    pub fn query(&self, query: &[f64], k: usize) -> Result<Vec<IGridAnswer>> {
        self.accumulate(query, k, |_, _| {})
    }

    /// Like [`IGridIndex::query`], also returning the number of inverted-
    /// list entries touched (the "accessed data" of the paper's Figure 9(b)
    /// IGrid reference point; divide by `c · d` for the fraction).
    ///
    /// # Errors
    ///
    /// Rejects malformed queries and out-of-range `k`.
    pub fn query_with_stats(&self, query: &[f64], k: usize) -> Result<(Vec<IGridAnswer>, u64)> {
        let mut touched = 0u64;
        let ans = self.accumulate(query, k, |_, len| touched += len as u64)?;
        Ok((ans, touched))
    }

    /// Like [`IGridIndex::query`], invoking `touch(dim, list_len)` for every
    /// list visited (hook for the disk cost model).
    pub(crate) fn accumulate(
        &self,
        query: &[f64],
        k: usize,
        mut touch: impl FnMut(usize, usize),
    ) -> Result<Vec<IGridAnswer>> {
        if query.len() != self.dims() {
            return Err(KnMatchError::DimensionMismatch {
                expected: self.dims(),
                actual: query.len(),
            });
        }
        if k == 0 || k > self.cardinality {
            return Err(KnMatchError::InvalidK {
                k,
                cardinality: self.cardinality,
            });
        }
        let mut scores: Vec<f64> = vec![0.0; self.cardinality];
        for (dim, &q) in query.iter().enumerate() {
            let bin = self.partition.bin_of(dim, q);
            let m = self.partition.bin_width(dim, bin);
            let list = self.list(dim, bin);
            touch(dim, list.len());
            for &(pid, v) in list {
                let t = (1.0 - (v - q).abs() / m).max(0.0);
                scores[pid as usize] += t.powf(self.p);
            }
        }
        let mut ranked: Vec<IGridAnswer> = scores
            .iter()
            .enumerate()
            .map(|(pid, &s)| IGridAnswer {
                pid: pid as PointId,
                similarity: s.powf(1.0 / self.p),
            })
            .collect();
        ranked.sort_unstable_by(|a, b| {
            b.similarity
                .total_cmp(&a.similarity)
                .then(a.pid.cmp(&b.pid))
        });
        ranked.truncate(k);
        Ok(ranked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_ds() -> Dataset {
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| {
                vec![
                    (i as f64 * 0.6180339887) % 1.0,
                    (i as f64 * 0.3247179572) % 1.0,
                ]
            })
            .collect();
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn self_query_is_top_answer() {
        let ds = grid_ds();
        let idx = IGridIndex::build_with(&ds, 8, 2.0);
        for pid in [0u32, 57, 199] {
            let ans = idx.query(ds.point(pid), 3).unwrap();
            assert_eq!(ans[0].pid, pid, "a point must be most similar to itself");
            assert!(ans[0].similarity >= ans[1].similarity);
        }
    }

    #[test]
    fn similarity_matches_query_scores() {
        let ds = grid_ds();
        let idx = IGridIndex::build_with(&ds, 8, 2.0);
        let q = ds.point(42);
        let ans = idx.query(q, 5).unwrap();
        for a in &ans {
            let direct = idx.similarity(ds.point(a.pid), q);
            assert!(
                (direct - a.similarity).abs() < 1e-9,
                "pid {}: {} vs {}",
                a.pid,
                direct,
                a.similarity
            );
        }
    }

    #[test]
    fn every_point_in_one_list_per_dim() {
        let ds = grid_ds();
        let idx = IGridIndex::build_with(&ds, 8, 2.0);
        for dim in 0..2 {
            let total: usize = (0..8).map(|b| idx.list(dim, b).len()).sum();
            assert_eq!(total, ds.len());
        }
    }

    #[test]
    fn mismatched_dimensions_score_zero() {
        // Points in entirely different ranges have zero similarity.
        let rows = vec![
            vec![0.0, 0.0],
            vec![0.01, 0.01],
            vec![0.99, 0.99],
            vec![1.0, 1.0],
        ];
        let ds = Dataset::from_rows(&rows).unwrap();
        let idx = IGridIndex::build_with(&ds, 2, 2.0);
        assert_eq!(idx.similarity(ds.point(0), ds.point(3)), 0.0);
        assert!(idx.similarity(ds.point(0), ds.point(1)) > 0.0);
    }

    #[test]
    fn default_build_uses_half_d_bins() {
        let ds = grid_ds();
        let idx = IGridIndex::build(&ds);
        assert_eq!(idx.partition().bins(), 2); // d = 2 → max(2, 1)
        assert_eq!(idx.dims(), 2);
        assert_eq!(idx.len(), 200);
    }

    #[test]
    fn validation() {
        let ds = grid_ds();
        let idx = IGridIndex::build(&ds);
        assert!(matches!(
            idx.query(&[0.5], 3),
            Err(KnMatchError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            idx.query(&[0.5, 0.5], 0),
            Err(KnMatchError::InvalidK { .. })
        ));
        assert!(matches!(
            idx.query(&[0.5, 0.5], 999),
            Err(KnMatchError::InvalidK { .. })
        ));
    }

    #[test]
    fn igrid_is_noise_sensitive_where_nmatch_is_not() {
        // A point sharing most ranges with the query scores high even when
        // one dimension is wild — IGrid also ignores mismatching dims. The
        // contrast with kNN (not with k-n-match) is what Table 4 shows; here
        // we just pin the mechanism.
        let rows = vec![
            vec![0.10, 0.10, 0.10, 0.10],
            vec![0.11, 0.12, 0.95, 0.10], // wild third dimension
            vec![0.55, 0.55, 0.55, 0.55],
        ];
        let ds = Dataset::from_rows(&rows).unwrap();
        let idx = IGridIndex::build_with(&ds, 2, 2.0);
        let q = [0.1, 0.1, 0.1, 0.1];
        let ans = idx.query(&q, 3).unwrap();
        assert_eq!(ans[0].pid, 0);
        assert_eq!(ans[1].pid, 1, "partial matcher must beat the far point");
    }
}
