//! The IGrid partitioning as a first-class *exact* serving backend.
//!
//! [`IGridIndex`](crate::IGridIndex) answers approximate
//! proximity-weighted queries; [`IGridEngine`] reuses the same equi-depth
//! per-dimension partitioning ([`EquiDepthPartition`]) but as a
//! quantisation for the core band-count filter, so it serves the exact
//! query kinds through the [`BatchEngine`] surface with answers
//! bit-identical to the sequential oracle. Against the VA-file's
//! equi-width cells, equi-depth ranges adapt to skewed value
//! distributions (each cell prunes a similar number of points); the
//! request-time planner never picks it on its own — it exists as an
//! explicit `--planner igrid` override for experiments.

use std::sync::Arc;

use knmatch_core::ad::AdStats;
use knmatch_core::{
    BandEngine, BatchAnswer, BatchEngine, BatchOptions, BatchQuery, Dataset, FilterScratch, Result,
};

use crate::partition::EquiDepthPartition;

/// Most ranges per dimension the byte-cell filter can hold.
pub const MAX_BINS: usize = 256;

/// Equi-depth filter-and-refine batch backend (see the module docs).
#[derive(Debug, Clone)]
pub struct IGridEngine {
    inner: BandEngine,
    bins: usize,
}

impl IGridEngine {
    /// Builds the equi-depth quantisation of `data` with the IGrid default
    /// range count (`kd = d/2`, at least 2) and one worker per available
    /// CPU.
    pub fn new(data: Arc<Dataset>) -> Self {
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        let bins = crate::partition::default_bins(data.dims());
        Self::with_bins(data, bins, workers)
    }

    /// Builds with an explicit range count (clamped to `2..=256`) and
    /// worker count (clamped to ≥ 1).
    pub fn with_bins(data: Arc<Dataset>, bins: usize, workers: usize) -> Self {
        let bins = bins.clamp(2, MAX_BINS);
        let part = EquiDepthPartition::fit(&data, bins);
        let boundaries: Vec<Vec<f64>> = (0..data.dims()).map(|j| part.edges(j).to_vec()).collect();
        IGridEngine {
            inner: BandEngine::from_boundaries(data, boundaries, workers),
            bins,
        }
    }

    /// Ranges per dimension actually fitted.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// The indexed dataset.
    pub fn dataset(&self) -> &Arc<Dataset> {
        self.inner.dataset()
    }

    /// The underlying band filter.
    pub fn band(&self) -> &BandEngine {
        &self.inner
    }

    /// Executes one query on the calling thread against caller scratch.
    ///
    /// # Errors
    ///
    /// Per-query parameter validation, deadline, cancellation.
    pub fn execute(
        &self,
        query: &BatchQuery,
        scratch: &mut FilterScratch,
    ) -> Result<(BatchAnswer, AdStats)> {
        self.inner.execute(query, scratch)
    }
}

impl BatchEngine for IGridEngine {
    type Outcome = (BatchAnswer, AdStats);

    fn workers(&self) -> usize {
        self.inner.workers()
    }

    fn run_with(
        &self,
        queries: &[BatchQuery],
        opts: &BatchOptions,
    ) -> Vec<Result<(BatchAnswer, AdStats)>> {
        self.inner.run_with(queries, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knmatch_core::{frequent_k_n_match_scan, k_n_match_scan};

    fn skewed_dataset(c: usize, d: usize, seed: u64) -> Dataset {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        // Squaring skews mass toward zero — the case equi-depth cells are
        // built for.
        let rows: Vec<Vec<f64>> = (0..c)
            .map(|_| (0..d).map(|_| next() * next()).collect())
            .collect();
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn matches_oracle_on_skewed_data() {
        let ds = skewed_dataset(500, 8, 19);
        let q: Vec<f64> = (0..8).map(|j| 0.02 + 0.04 * j as f64).collect();
        for workers in [1usize, 3] {
            let e = IGridEngine::with_bins(Arc::new(ds.clone()), 16, workers);
            let batch = vec![
                BatchQuery::KnMatch {
                    query: q.clone(),
                    k: 8,
                    n: 3,
                },
                BatchQuery::Frequent {
                    query: q.clone(),
                    k: 5,
                    n0: 2,
                    n1: 6,
                },
            ];
            let got: Vec<BatchAnswer> = e.run(&batch).into_iter().map(|r| r.unwrap().0).collect();
            assert_eq!(
                got[0],
                BatchAnswer::KnMatch(k_n_match_scan(&ds, &q, 8, 3).unwrap()),
                "workers={workers}"
            );
            assert_eq!(
                got[1],
                BatchAnswer::Frequent(frequent_k_n_match_scan(&ds, &q, 5, 2, 6).unwrap()),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn duplicate_heavy_dimensions_stay_exact() {
        // 90% of the mass in one value per dimension — equi-depth marks
        // collapse, leaving zero-width ranges the filter must handle.
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| {
                (0..4)
                    .map(|j| if (i + j) % 10 < 9 { 1.0 } else { i as f64 })
                    .collect()
            })
            .collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let e = IGridEngine::with_bins(Arc::new(ds.clone()), 8, 2);
        let q = vec![1.0, 5.0, 50.0, 150.0];
        for n in 1..=4usize {
            let got = e
                .run(&[BatchQuery::KnMatch {
                    query: q.clone(),
                    k: 10,
                    n,
                }])
                .pop()
                .unwrap()
                .unwrap()
                .0;
            assert_eq!(
                got,
                BatchAnswer::KnMatch(k_n_match_scan(&ds, &q, 10, n).unwrap()),
                "n={n}"
            );
        }
    }

    #[test]
    fn default_bins_follow_dimensionality() {
        let ds = skewed_dataset(100, 12, 7);
        let e = IGridEngine::new(Arc::new(ds));
        assert_eq!(e.bins(), 6);
    }
}
