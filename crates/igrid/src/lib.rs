//! # knmatch-igrid
//!
//! IGrid — the inverted grid index of Aggarwal & Yu (KDD'00), the paper's
//! main effectiveness *and* efficiency competitor. Each dimension is
//! equi-depth partitioned into `kd` ranges (default `d/2`); an inverted
//! list per (dimension, range) lets a query touch one list per dimension
//! and rank points by the proximity-weighted similarity
//! `S(P,Q) = [Σ (1 − |p_i − q_i|/m_i)^p]^{1/p}` over range-matching
//! dimensions.
//!
//! [`IGridIndex`] is the in-memory form used in the accuracy experiments
//! (Table 4, Figures 8–9); [`DiskIGrid`] is the block-chained on-disk form
//! whose fragmented lists the paper measures in Figures 13–15.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod disk;
pub mod engine;
pub mod index;
pub mod partition;

pub use disk::{DiskIGrid, BLOCKS_PER_PAGE, BLOCK_BYTES, BLOCK_ENTRIES};
pub use engine::{IGridEngine, MAX_BINS};
pub use index::{IGridAnswer, IGridIndex};
pub use partition::{default_bins, EquiDepthPartition};
