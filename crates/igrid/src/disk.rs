//! The disk-resident IGrid: a block-chained inverted file.
//!
//! An inverted file built by inserting points one at a time grows every
//! (dimension, range) list a block at a time, and consecutive blocks of one
//! list end up scattered between blocks of the other `d · kd − 1` lists.
//! This is the fragmentation the paper holds against IGrid in Section
//! 5.2.3: although a query touches only `1/kd ≈ 2/d` of the data, "the
//! accessed data are fragmented and distributed all over the data set" and
//! each fragment costs a random page access.
//!
//! We reproduce that layout honestly: blocks of [`BLOCK_ENTRIES`] entries
//! are flushed to pages in fill order during a pid-order build, so a
//! query's per-dimension list walk hops across pages.

use knmatch_core::{Dataset, KnMatchError, PointId, Result};
use knmatch_storage::{BufferPool, IoStats, PageStore, PAGE_SIZE};

use crate::index::IGridAnswer;
use crate::partition::{default_bins, EquiDepthPartition};

/// Entries per inverted-list block.
pub const BLOCK_ENTRIES: usize = 64;

/// Bytes per entry: `u32` pid + `f64` value.
const ENTRY_BYTES: usize = 12;

/// Bytes per block.
pub const BLOCK_BYTES: usize = BLOCK_ENTRIES * ENTRY_BYTES;

/// Blocks per page.
pub const BLOCKS_PER_PAGE: usize = PAGE_SIZE / BLOCK_BYTES;

/// Location of one block of one inverted list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BlockRef {
    page: u32,
    slot: u8,
    len: u16,
}

/// The disk-resident IGrid index (directory in memory, entry blocks on
/// pages).
#[derive(Debug, Clone)]
pub struct DiskIGrid {
    partition: EquiDepthPartition,
    /// `directory[dim * bins + bin]` = the list's block chain, in order.
    directory: Vec<Vec<BlockRef>>,
    cardinality: usize,
    p: f64,
}

impl DiskIGrid {
    /// Builds with the paper defaults (`kd = d/2`, `p = 2`).
    pub fn build_default<S: PageStore>(store: &mut S, ds: &Dataset) -> Self {
        Self::build(store, ds, default_bins(ds.dims()), 2.0)
    }

    /// Builds the inverted file into `store`.
    ///
    /// # Panics
    ///
    /// Panics when `bins < 2`, `ds` is empty, or `p` is not positive.
    pub fn build<S: PageStore>(store: &mut S, ds: &Dataset, bins: usize, p: f64) -> Self {
        assert!(
            p > 0.0 && p.is_finite(),
            "similarity exponent must be positive"
        );
        let partition = EquiDepthPartition::fit(ds, bins);
        let lists = ds.dims() * bins;
        let mut open: Vec<Vec<(PointId, f64)>> = vec![Vec::new(); lists];
        let mut directory: Vec<Vec<BlockRef>> = vec![Vec::new(); lists];

        let mut pending = [0u8; PAGE_SIZE];
        let mut pending_slots = 0usize;
        let mut next_page = store.page_count();

        let flush = |block: &[(PointId, f64)],
                     list: usize,
                     directory: &mut Vec<Vec<BlockRef>>,
                     pending: &mut [u8; PAGE_SIZE],
                     pending_slots: &mut usize,
                     next_page: &mut usize,
                     store: &mut S| {
            let slot = *pending_slots;
            let mut off = slot * BLOCK_BYTES;
            for &(pid, value) in block {
                pending[off..off + 4].copy_from_slice(&pid.to_le_bytes());
                pending[off + 4..off + 12].copy_from_slice(&value.to_le_bytes());
                off += ENTRY_BYTES;
            }
            directory[list].push(BlockRef {
                page: *next_page as u32,
                slot: slot as u8,
                len: block.len() as u16,
            });
            *pending_slots += 1;
            if *pending_slots == BLOCKS_PER_PAGE {
                store.append_page(pending);
                *pending = [0u8; PAGE_SIZE];
                *pending_slots = 0;
                *next_page += 1;
            }
        };

        // Pid-order build: lists grow interleaved, so their block chains
        // fragment — the layout the paper measures.
        for (pid, point) in ds.iter() {
            for (dim, &v) in point.iter().enumerate() {
                let list = dim * bins + partition.bin_of(dim, v);
                open[list].push((pid, v));
                if open[list].len() == BLOCK_ENTRIES {
                    flush(
                        &open[list],
                        list,
                        &mut directory,
                        &mut pending,
                        &mut pending_slots,
                        &mut next_page,
                        store,
                    );
                    open[list].clear();
                }
            }
        }
        for (list, block) in open.iter().enumerate() {
            if !block.is_empty() {
                flush(
                    block,
                    list,
                    &mut directory,
                    &mut pending,
                    &mut pending_slots,
                    &mut next_page,
                    store,
                );
            }
        }
        if pending_slots > 0 {
            store.append_page(&pending);
        }

        DiskIGrid {
            partition,
            directory,
            cardinality: ds.len(),
            p,
        }
    }

    /// The fitted partition.
    pub fn partition(&self) -> &EquiDepthPartition {
        &self.partition
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.cardinality
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.cardinality == 0
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.partition.dims()
    }

    /// Returns the `k` most similar points to `query` with the I/O this
    /// query cost (pool statistics are reset on entry).
    ///
    /// # Errors
    ///
    /// Rejects malformed queries and out-of-range `k`.
    pub fn query<S: PageStore>(
        &self,
        pool: &mut BufferPool<S>,
        query: &[f64],
        k: usize,
    ) -> Result<(Vec<IGridAnswer>, IoStats)> {
        if query.len() != self.dims() {
            return Err(KnMatchError::DimensionMismatch {
                expected: self.dims(),
                actual: query.len(),
            });
        }
        if k == 0 || k > self.cardinality {
            return Err(KnMatchError::InvalidK {
                k,
                cardinality: self.cardinality,
            });
        }
        pool.reset_stats();
        let bins = self.partition.bins();
        let mut scores: Vec<f64> = vec![0.0; self.cardinality];
        for (dim, &q) in query.iter().enumerate() {
            let bin = self.partition.bin_of(dim, q);
            let m = self.partition.bin_width(dim, bin);
            for blk in &self.directory[dim * bins + bin] {
                let page = pool.get(blk.page as usize);
                let mut off = blk.slot as usize * BLOCK_BYTES;
                for _ in 0..blk.len {
                    let pid = u32::from_le_bytes(page[off..off + 4].try_into().expect("4 bytes"));
                    let value =
                        f64::from_le_bytes(page[off + 4..off + 12].try_into().expect("8 bytes"));
                    let t = (1.0 - (value - q).abs() / m).max(0.0);
                    scores[pid as usize] += t.powf(self.p);
                    off += ENTRY_BYTES;
                }
            }
        }
        let mut ranked: Vec<IGridAnswer> = scores
            .iter()
            .enumerate()
            .map(|(pid, &s)| IGridAnswer {
                pid: pid as PointId,
                similarity: s.powf(1.0 / self.p),
            })
            .collect();
        ranked.sort_unstable_by(|a, b| {
            b.similarity
                .total_cmp(&a.similarity)
                .then(a.pid.cmp(&b.pid))
        });
        ranked.truncate(k);
        Ok((ranked, pool.stats()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IGridIndex;
    use knmatch_storage::MemStore;

    fn sample(n: usize, d: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..d)
                    .map(|j| ((i * 31 + j * 17) as f64 * 0.618) % 1.0)
                    .collect()
            })
            .collect();
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn disk_matches_in_memory_index() {
        let ds = sample(1000, 4);
        let mem = IGridIndex::build_with(&ds, 4, 2.0);
        let mut store = MemStore::new();
        let disk = DiskIGrid::build(&mut store, &ds, 4, 2.0);
        let mut pool = BufferPool::new(store, 64);
        for pid in [0u32, 123, 999] {
            let q = ds.point(pid).to_vec();
            let (got, _) = disk.query(&mut pool, &q, 10).unwrap();
            let want = mem.query(&q, 10).unwrap();
            assert_eq!(got.len(), want.len());
            for (a, b) in got.iter().zip(&want) {
                assert_eq!(a.pid, b.pid);
                assert!((a.similarity - b.similarity).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn query_touches_a_fraction_of_the_file() {
        let ds = sample(20_000, 8);
        let mut store = MemStore::new();
        let disk = DiskIGrid::build(&mut store, &ds, 4, 2.0);
        let total_pages = store.page_count();
        let mut pool = BufferPool::new(store, 4096);
        let q = ds.point(7).to_vec();
        let (_, io) = disk.query(&mut pool, &q, 10).unwrap();
        // One of kd=4 lists per dimension → about 1/4 of the entry pages,
        // but fragmentation makes the reads mostly non-sequential.
        assert!(io.page_accesses() > 0);
        assert!(
            (io.page_accesses() as usize) < total_pages,
            "must not read the whole inverted file"
        );
        assert!(
            io.random_reads > io.sequential_reads,
            "fragmented block chains should look random: {io:?}"
        );
    }

    #[test]
    fn fragmentation_interleaves_block_chains() {
        let ds = sample(5000, 4);
        let mut store = MemStore::new();
        let disk = DiskIGrid::build(&mut store, &ds, 4, 2.0);
        // Some list must have non-consecutive block pages.
        let fragmented = disk.directory.iter().any(|chain| {
            chain
                .windows(2)
                .any(|w| w[1].page != w[0].page && w[1].page != w[0].page + 1)
        });
        assert!(fragmented, "build order should scatter the chains");
    }

    #[test]
    fn self_query_top1() {
        let ds = sample(500, 6);
        let mut store = MemStore::new();
        let disk = DiskIGrid::build_default(&mut store, &ds);
        let mut pool = BufferPool::new(store, 64);
        let (ans, _) = disk.query(&mut pool, ds.point(77), 1).unwrap();
        assert_eq!(ans[0].pid, 77);
    }

    #[test]
    fn validation() {
        let ds = sample(50, 3);
        let mut store = MemStore::new();
        let disk = DiskIGrid::build_default(&mut store, &ds);
        let mut pool = BufferPool::new(store, 8);
        assert!(disk.query(&mut pool, &[0.5], 1).is_err());
        assert!(disk.query(&mut pool, &[0.5, 0.5, 0.5], 0).is_err());
    }
}
