//! Equi-depth per-dimension partitioning for the IGrid index
//! (Aggarwal & Yu, KDD'00 — the paper's reference \[6\]).
//!
//! Each dimension is split into `kd` ranges holding (as nearly as possible)
//! the same number of points. Two points are *proximate* in a dimension iff
//! they fall in the same range; the paper quotes \[6\]'s analysis that with
//! `kd = d/2` a query touches `2/d` of the data.

use knmatch_core::Dataset;

/// Fitted equi-depth boundaries for every dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct EquiDepthPartition {
    bins: usize,
    /// `edges[dim]` holds `bins + 1` ascending marks; range `r` of `dim`
    /// spans `[edges[dim][r], edges[dim][r + 1])` (last range inclusive).
    edges: Vec<Vec<f64>>,
}

/// The paper's default range count: `kd = d/2` (at least 2), so the
/// accessed fraction `1/kd` matches the quoted `2/d`.
pub fn default_bins(dims: usize) -> usize {
    (dims / 2).max(2)
}

impl EquiDepthPartition {
    /// Fits `bins` equi-depth ranges per dimension of `ds`.
    ///
    /// # Panics
    ///
    /// Panics when `bins < 2` or `ds` is empty.
    pub fn fit(ds: &Dataset, bins: usize) -> Self {
        assert!(bins >= 2, "need at least two ranges per dimension");
        assert!(!ds.is_empty(), "cannot partition an empty dataset");
        let c = ds.len();
        let mut edges = Vec::with_capacity(ds.dims());
        let mut column: Vec<f64> = Vec::with_capacity(c);
        for dim in 0..ds.dims() {
            column.clear();
            column.extend(ds.iter().map(|(_, p)| p[dim]));
            column.sort_unstable_by(f64::total_cmp);
            let mut marks = Vec::with_capacity(bins + 1);
            marks.push(column[0]);
            for r in 1..bins {
                marks.push(column[r * c / bins]);
            }
            marks.push(column[c - 1]);
            // Duplicate-heavy dimensions can produce equal marks; nudge them
            // monotone so ranges stay well-defined (empty ranges are fine).
            for i in 1..marks.len() {
                if marks[i] < marks[i - 1] {
                    marks[i] = marks[i - 1];
                }
            }
            edges.push(marks);
        }
        EquiDepthPartition { bins, edges }
    }

    /// Number of ranges per dimension.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.edges.len()
    }

    /// The `bins + 1` ascending marks of `dim` (first = observed minimum,
    /// last = observed maximum).
    pub fn edges(&self, dim: usize) -> &[f64] {
        &self.edges[dim]
    }

    /// The range index of value `v` in `dim` (values outside the fitted
    /// span clamp to the first/last range).
    pub fn bin_of(&self, dim: usize, v: f64) -> usize {
        let marks = &self.edges[dim];
        // First mark strictly greater than v, minus one.
        let idx = marks[1..self.bins].partition_point(|&m| m <= v);
        idx.min(self.bins - 1)
    }

    /// The `[lo, hi]` span of range `bin` in `dim`.
    ///
    /// # Panics
    ///
    /// Panics when `bin >= bins`.
    pub fn bin_span(&self, dim: usize, bin: usize) -> (f64, f64) {
        assert!(bin < self.bins, "range {bin} out of {}", self.bins);
        (self.edges[dim][bin], self.edges[dim][bin + 1])
    }

    /// Width of range `bin` in `dim` (the `m_i` of the IGrid similarity
    /// function). Zero-width ranges (duplicate-heavy data) report the
    /// smallest positive width to keep the similarity defined.
    pub fn bin_width(&self, dim: usize, bin: usize) -> f64 {
        let (lo, hi) = self.bin_span(dim, bin);
        let w = hi - lo;
        if w > 0.0 {
            w
        } else {
            f64::MIN_POSITIVE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniformish(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i as f64 * 0.6180339887) % 1.0, (i as f64) / n as f64])
            .collect();
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn balanced_within_tolerance() {
        let ds = uniformish(1000);
        let part = EquiDepthPartition::fit(&ds, 10);
        for dim in 0..2 {
            let mut counts = [0usize; 10];
            for (_, p) in ds.iter() {
                counts[part.bin_of(dim, p[dim])] += 1;
            }
            for (b, &cnt) in counts.iter().enumerate() {
                assert!(
                    (90..=110).contains(&cnt),
                    "dim {dim} range {b} holds {cnt} of 1000 points"
                );
            }
        }
    }

    #[test]
    fn bin_of_respects_spans() {
        let ds = uniformish(500);
        let part = EquiDepthPartition::fit(&ds, 7);
        for (_, p) in ds.iter() {
            for (dim, &v) in p.iter().enumerate() {
                let b = part.bin_of(dim, v);
                let (lo, hi) = part.bin_span(dim, b);
                assert!(lo <= v && v <= hi + 1e-12);
            }
        }
    }

    #[test]
    fn out_of_range_values_clamp() {
        let ds = uniformish(100);
        let part = EquiDepthPartition::fit(&ds, 4);
        assert_eq!(part.bin_of(0, -100.0), 0);
        assert_eq!(part.bin_of(0, 100.0), 3);
    }

    #[test]
    fn default_bins_is_half_d() {
        assert_eq!(default_bins(16), 8);
        assert_eq!(default_bins(34), 17);
        assert_eq!(default_bins(2), 2);
        assert_eq!(default_bins(1), 2);
    }

    #[test]
    fn duplicate_values_stay_defined() {
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![if i < 90 { 1.0 } else { 2.0 }])
            .collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let part = EquiDepthPartition::fit(&ds, 4);
        let b = part.bin_of(0, 1.0);
        assert!(part.bin_width(0, b) > 0.0);
        assert!(part.bin_of(0, 2.0) >= b);
    }

    #[test]
    #[should_panic(expected = "at least two ranges")]
    fn one_bin_panics() {
        EquiDepthPartition::fit(&uniformish(10), 1);
    }
}
