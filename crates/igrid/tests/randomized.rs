//! Randomized tests for IGrid: partition invariants, in-memory/disk
//! agreement, and similarity-function sanity, swept over seeded random
//! instances (no external property-testing crate in the offline build).

use knmatch_core::Dataset;
use knmatch_data::rng::{seeded, Rng64};
use knmatch_igrid::{DiskIGrid, EquiDepthPartition, IGridIndex};
use knmatch_storage::{BufferPool, MemStore};

fn dataset(rng: &mut Rng64) -> (Vec<Vec<f64>>, usize) {
    let d = rng.range_usize(1..6);
    let c = rng.range_usize(8..61);
    let bins = rng.range_usize(2..7);
    let rows = (0..c)
        .map(|_| (0..d).map(|_| rng.next_f64()).collect())
        .collect();
    (rows, bins)
}

/// Every value falls in the range its bin spans, and bins partition the
/// cardinality.
#[test]
fn partition_covers_all_values() {
    let mut rng = seeded(0x16_0001);
    for _ in 0..192 {
        let (rows, bins) = dataset(&mut rng);
        let ds = Dataset::from_rows(&rows).unwrap();
        let part = EquiDepthPartition::fit(&ds, bins);
        for (_, p) in ds.iter() {
            for (dim, &v) in p.iter().enumerate() {
                let b = part.bin_of(dim, v);
                assert!(b < bins);
                let (lo, hi) = part.bin_span(dim, b);
                assert!(lo <= v && v <= hi + 1e-12, "v={v} not in [{lo}, {hi}]");
                assert!(part.bin_width(dim, b) > 0.0);
            }
        }
        for dim in 0..ds.dims() {
            let total: usize = (0..bins)
                .map(|b| {
                    ds.iter()
                        .filter(|(_, p)| part.bin_of(dim, p[dim]) == b)
                        .count()
                })
                .sum();
            assert_eq!(total, ds.len());
        }
    }
}

/// The disk layout answers exactly like the in-memory index.
#[test]
fn disk_equals_memory() {
    let mut rng = seeded(0x16_0002);
    for _ in 0..192 {
        let (rows, bins) = dataset(&mut rng);
        let ds = Dataset::from_rows(&rows).unwrap();
        let mem = IGridIndex::build_with(&ds, bins, 2.0);
        let mut store = MemStore::new();
        let disk = DiskIGrid::build(&mut store, &ds, bins, 2.0);
        let mut pool = BufferPool::new(store, 64);
        let k = ds.len().div_ceil(2).max(1);
        let q = ds.point(0).to_vec();
        let want = mem.query(&q, k).unwrap();
        let (got, _) = disk.query(&mut pool, &q, k).unwrap();
        assert_eq!(got.len(), want.len());
        for (a, b) in got.iter().zip(&want) {
            assert_eq!(a.pid, b.pid);
            assert!((a.similarity - b.similarity).abs() < 1e-9);
        }
    }
}

/// Similarity is symmetric, non-negative, and maximal for a point with
/// itself among all points sharing its bins.
#[test]
fn similarity_sanity() {
    let mut rng = seeded(0x16_0003);
    for _ in 0..192 {
        let (rows, bins) = dataset(&mut rng);
        let ds = Dataset::from_rows(&rows).unwrap();
        let idx = IGridIndex::build_with(&ds, bins, 2.0);
        let a = ds.point(0);
        let b = ds.point((ds.len() - 1) as u32);
        let ab = idx.similarity(a, b);
        let ba = idx.similarity(b, a);
        assert!((ab - ba).abs() < 1e-12, "symmetry");
        assert!(ab >= 0.0);
        let aa = idx.similarity(a, a);
        assert!(aa + 1e-12 >= ab, "self-similarity dominates");
        // Self-query retrieves self first.
        let ans = idx.query(a, 1).unwrap();
        assert_eq!(ans[0].pid, 0);
    }
}
