//! Property tests for IGrid: partition invariants, in-memory/disk
//! agreement, and similarity-function sanity.

use knmatch_core::Dataset;
use knmatch_igrid::{DiskIGrid, EquiDepthPartition, IGridIndex};
use knmatch_storage::{BufferPool, MemStore};
use proptest::prelude::*;

fn dataset() -> impl Strategy<Value = (Vec<Vec<f64>>, usize)> {
    (1usize..=5, 8usize..=60, 2usize..=6).prop_flat_map(|(d, c, bins)| {
        (
            proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, d), c),
            Just(bins),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Every value falls in the range its bin spans, and bins partition the
    /// cardinality.
    #[test]
    fn partition_covers_all_values((rows, bins) in dataset()) {
        let ds = Dataset::from_rows(&rows).unwrap();
        let part = EquiDepthPartition::fit(&ds, bins);
        for (_, p) in ds.iter() {
            for (dim, &v) in p.iter().enumerate() {
                let b = part.bin_of(dim, v);
                prop_assert!(b < bins);
                let (lo, hi) = part.bin_span(dim, b);
                prop_assert!(lo <= v && v <= hi + 1e-12, "v={v} not in [{lo}, {hi}]");
                prop_assert!(part.bin_width(dim, b) > 0.0);
            }
        }
        for dim in 0..ds.dims() {
            let total: usize = (0..bins)
                .map(|b| {
                    ds.iter().filter(|(_, p)| part.bin_of(dim, p[dim]) == b).count()
                })
                .sum();
            prop_assert_eq!(total, ds.len());
        }
    }

    /// The disk layout answers exactly like the in-memory index.
    #[test]
    fn disk_equals_memory((rows, bins) in dataset()) {
        let ds = Dataset::from_rows(&rows).unwrap();
        let mem = IGridIndex::build_with(&ds, bins, 2.0);
        let mut store = MemStore::new();
        let disk = DiskIGrid::build(&mut store, &ds, bins, 2.0);
        let mut pool = BufferPool::new(store, 64);
        let k = ((ds.len() + 1) / 2).max(1);
        let q = ds.point(0).to_vec();
        let want = mem.query(&q, k).unwrap();
        let (got, _) = disk.query(&mut pool, &q, k).unwrap();
        prop_assert_eq!(got.len(), want.len());
        for (a, b) in got.iter().zip(&want) {
            prop_assert_eq!(a.pid, b.pid);
            prop_assert!((a.similarity - b.similarity).abs() < 1e-9);
        }
    }

    /// Similarity is symmetric, non-negative, and maximal for a point with
    /// itself among all points sharing its bins.
    #[test]
    fn similarity_sanity((rows, bins) in dataset()) {
        let ds = Dataset::from_rows(&rows).unwrap();
        let idx = IGridIndex::build_with(&ds, bins, 2.0);
        let a = ds.point(0);
        let b = ds.point((ds.len() - 1) as u32);
        let ab = idx.similarity(a, b);
        let ba = idx.similarity(b, a);
        prop_assert!((ab - ba).abs() < 1e-12, "symmetry");
        prop_assert!(ab >= 0.0);
        let aa = idx.similarity(a, a);
        prop_assert!(aa + 1e-12 >= ab, "self-similarity dominates");
        // Self-query retrieves self first.
        let ans = idx.query(a, 1).unwrap();
        prop_assert_eq!(ans[0].pid, 0);
    }
}
