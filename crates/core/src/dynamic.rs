//! An updatable sorted-dimension index.
//!
//! The paper treats the database as static ([`crate::SortedColumns`] is
//! built once). Real deployments insert and delete; this module keeps the
//! per-dimension sorted organisation incrementally maintained so the AD
//! algorithm keeps running unchanged. Points are addressed by caller-owned
//! stable `u64` keys; internally they map to dense slots so the engine's
//! appearance counting stays O(c) — the indirection is invisible in
//! results, which report keys.
//!
//! Costs: insert and remove are `O(d · c)` worst case (one ordered `Vec`
//! memmove per dimension — fine up to hundreds of thousands of points;
//! beyond that, rebuild batching or an order-statistic tree would be the
//! next step). Queries cost exactly what the static index costs.

use std::collections::HashMap;

use crate::ad::AdStats;
use crate::error::{KnMatchError, Result};
use crate::point::{validate_finite, PointId};
use crate::result::FrequentResult;
use crate::source::{SortedAccessSource, SortedEntry};

/// One answer from a dynamic index query: the caller's key and the n-match
/// difference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyedMatch {
    /// The caller-supplied stable key.
    pub key: u64,
    /// The n-match difference w.r.t. the query.
    pub diff: f64,
}

/// An insert/remove-capable sorted-dimension index over keyed points.
#[derive(Debug, Clone, Default)]
pub struct DynamicColumns {
    dims: usize,
    /// Row-major coordinates by slot.
    coords: Vec<f64>,
    /// Slot → key.
    keys: Vec<u64>,
    /// Key → slot.
    slots: HashMap<u64, PointId>,
    /// Per-dimension entries sorted by `(value, pid)`; `pid` is the slot.
    columns: Vec<Vec<SortedEntry>>,
}

impl DynamicColumns {
    /// Creates an empty index of the given dimensionality.
    ///
    /// # Errors
    ///
    /// Rejects zero dimensions.
    pub fn new(dims: usize) -> Result<Self> {
        if dims == 0 {
            return Err(KnMatchError::ZeroDimensions);
        }
        Ok(DynamicColumns {
            dims,
            coords: Vec::new(),
            keys: Vec::new(),
            slots: HashMap::new(),
            columns: vec![Vec::new(); dims],
        })
    }

    /// Number of live points.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: u64) -> bool {
        self.slots.contains_key(&key)
    }

    /// The coordinates stored under `key`, if present.
    pub fn get(&self, key: u64) -> Option<&[f64]> {
        self.slots.get(&key).map(|&s| {
            let i = s as usize * self.dims;
            &self.coords[i..i + self.dims]
        })
    }

    /// Inserts a point under `key`. Re-inserting an existing key is an
    /// update: the old point is removed first.
    ///
    /// # Errors
    ///
    /// Rejects wrong-width ([`KnMatchError::DimensionMismatch`]) and
    /// non-finite ([`KnMatchError::NonFiniteValue`]) points.
    pub fn insert(&mut self, key: u64, point: &[f64]) -> Result<()> {
        if point.len() != self.dims {
            return Err(KnMatchError::DimensionMismatch {
                expected: self.dims,
                actual: point.len(),
            });
        }
        validate_finite(point)?;
        if self.slots.contains_key(&key) {
            // Re-inserting an existing key is an update: remove then add.
            self.remove(key).expect("key checked present");
        }
        let slot = self.keys.len() as PointId;
        self.keys.push(key);
        self.slots.insert(key, slot);
        self.coords.extend_from_slice(point);
        for (dim, &v) in point.iter().enumerate() {
            let col = &mut self.columns[dim];
            let probe = SortedEntry {
                pid: slot,
                value: v,
            };
            // Insert at the canonical (value, pid) rank — the same explicit
            // key every static column build sorts by.
            let pos = col.partition_point(|e| SortedEntry::cmp_value_pid(e, &probe).is_lt());
            col.insert(pos, probe);
        }
        Ok(())
    }

    /// Removes the point stored under `key`, returning its coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`KnMatchError::EmptyDataset`] when the key is absent.
    pub fn remove(&mut self, key: u64) -> Result<Vec<f64>> {
        let slot = *self.slots.get(&key).ok_or(KnMatchError::EmptyDataset)?;
        let s = slot as usize;
        let removed: Vec<f64> = self.coords[s * self.dims..(s + 1) * self.dims].to_vec();

        // Drop the slot's entries from every column.
        for (dim, &v) in removed.iter().enumerate() {
            let pos = self.find_entry(dim, v, slot);
            self.columns[dim].remove(pos);
        }

        // Move the last slot into the hole to keep slots dense.
        let last = self.keys.len() - 1;
        if s != last {
            let moved_key = self.keys[last];
            let moved: Vec<f64> = self.coords[last * self.dims..(last + 1) * self.dims].to_vec();
            for (dim, &v) in moved.iter().enumerate() {
                let pos = self.find_entry(dim, v, last as PointId);
                self.columns[dim][pos].pid = slot;
            }
            self.keys[s] = moved_key;
            self.slots.insert(moved_key, slot);
            let (dst, src) = self.coords.split_at_mut(last * self.dims);
            dst[s * self.dims..(s + 1) * self.dims].copy_from_slice(&src[..self.dims]);
        }
        self.keys.pop();
        self.coords.truncate(last * self.dims);
        self.slots.remove(&key);
        Ok(removed)
    }

    /// Rank of the entry `(value, pid)` in `dim` (it must exist).
    fn find_entry(&self, dim: usize, value: f64, pid: PointId) -> usize {
        let col = &self.columns[dim];
        let probe = SortedEntry { pid, value };
        let mut pos = col.partition_point(|e| SortedEntry::cmp_value_pid(e, &probe).is_lt());
        // Defensive scan over any exact duplicates.
        while col[pos].pid != pid {
            pos += 1;
        }
        debug_assert_eq!(col[pos].value.to_bits(), value.to_bits());
        pos
    }

    /// Answers a k-n-match query over the live points, reporting keys.
    ///
    /// # Errors
    ///
    /// Validates like [`crate::k_n_match_ad`].
    pub fn k_n_match(
        &mut self,
        query: &[f64],
        k: usize,
        n: usize,
    ) -> Result<(Vec<KeyedMatch>, AdStats)> {
        let keys = self.keys.clone();
        let (res, stats) = crate::ad::k_n_match_ad(self, query, k, n)?;
        Ok((
            res.entries
                .iter()
                .map(|e| KeyedMatch {
                    key: keys[e.pid as usize],
                    diff: e.diff,
                })
                .collect(),
            stats,
        ))
    }

    /// Answers a frequent k-n-match query, reporting `(key, count)` pairs.
    ///
    /// # Errors
    ///
    /// Validates like [`crate::frequent_k_n_match_ad`].
    pub fn frequent_k_n_match(
        &mut self,
        query: &[f64],
        k: usize,
        n0: usize,
        n1: usize,
    ) -> Result<(Vec<(u64, u32)>, AdStats)> {
        let keys = self.keys.clone();
        let (res, stats): (FrequentResult, AdStats) =
            crate::ad::frequent_k_n_match_ad(self, query, k, n0, n1)?;
        Ok((
            res.entries
                .iter()
                .map(|e| (keys[e.pid as usize], e.count))
                .collect(),
            stats,
        ))
    }
}

impl SortedAccessSource for DynamicColumns {
    fn dims(&self) -> usize {
        self.dims
    }

    fn cardinality(&self) -> usize {
        self.keys.len()
    }

    fn locate(&mut self, dim: usize, q: f64) -> usize {
        self.columns[dim].partition_point(|e| e.value < q)
    }

    fn entry(&mut self, dim: usize, rank: usize) -> SortedEntry {
        self.columns[dim][rank]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{k_n_match_scan, Dataset};

    fn naive_top(rows: &[(u64, Vec<f64>)], q: &[f64], k: usize, n: usize) -> Vec<u64> {
        let ds =
            Dataset::from_rows(&rows.iter().map(|(_, p)| p.clone()).collect::<Vec<_>>()).unwrap();
        k_n_match_scan(&ds, q, k, n)
            .unwrap()
            .ids()
            .into_iter()
            .map(|pid| rows[pid as usize].0)
            .collect()
    }

    #[test]
    fn insert_then_query_matches_naive() {
        let mut idx = DynamicColumns::new(3).unwrap();
        let rows: Vec<(u64, Vec<f64>)> = vec![
            (100, vec![0.4, 1.0, 1.0]),
            (200, vec![2.8, 5.5, 2.0]),
            (300, vec![6.5, 7.8, 5.0]),
            (400, vec![9.0, 9.0, 9.0]),
            (500, vec![3.5, 1.5, 8.0]),
        ];
        for (k, p) in &rows {
            idx.insert(*k, p).unwrap();
        }
        let q = [3.0, 7.0, 4.0];
        let (got, _) = idx.k_n_match(&q, 2, 2).unwrap();
        let keys: Vec<u64> = got.iter().map(|m| m.key).collect();
        assert_eq!(keys, naive_top(&rows, &q, 2, 2));
        assert_eq!(keys, vec![300, 200]); // paper's {3, 2} in diff order
    }

    #[test]
    fn remove_reroutes_answers() {
        let mut idx = DynamicColumns::new(2).unwrap();
        idx.insert(1, &[0.1, 0.1]).unwrap();
        idx.insert(2, &[0.2, 0.2]).unwrap();
        idx.insert(3, &[0.9, 0.9]).unwrap();
        let q = [0.0, 0.0];
        let (got, _) = idx.k_n_match(&q, 1, 2).unwrap();
        assert_eq!(got[0].key, 1);
        assert_eq!(idx.remove(1).unwrap(), vec![0.1, 0.1]);
        let (got, _) = idx.k_n_match(&q, 1, 2).unwrap();
        assert_eq!(got[0].key, 2);
        assert_eq!(idx.len(), 2);
        assert!(!idx.contains_key(1));
        assert!(idx.get(2).is_some());
    }

    #[test]
    fn reinserting_a_key_updates_the_point() {
        let mut idx = DynamicColumns::new(1).unwrap();
        idx.insert(7, &[0.5]).unwrap();
        idx.insert(8, &[0.9]).unwrap();
        idx.insert(7, &[0.95]).unwrap(); // move key 7
        assert_eq!(idx.len(), 2);
        let (got, _) = idx.k_n_match(&[1.0], 1, 1).unwrap();
        assert_eq!(got[0].key, 7);
        assert_eq!(idx.get(7).unwrap(), &[0.95]);
    }

    #[test]
    fn interleaved_operations_stay_consistent() {
        let mut idx = DynamicColumns::new(4).unwrap();
        let mut live: Vec<(u64, Vec<f64>)> = Vec::new();
        let mut x = 0x12345u64;
        let mut rnd = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        for step in 0..200u64 {
            if step % 5 == 4 && !live.is_empty() {
                // Remove a pseudo-random live key.
                let at = (step as usize * 7) % live.len();
                let (key, _) = live.remove(at);
                idx.remove(key).unwrap();
            } else {
                let p: Vec<f64> = (0..4).map(|_| rnd()).collect();
                idx.insert(step, &p).unwrap();
                live.push((step, p));
            }
            assert_eq!(idx.len(), live.len());
        }
        // Final query agrees with the naive oracle over the live set.
        let q = [0.5, 0.5, 0.5, 0.5];
        for n in 1..=4 {
            let (got, _) = idx.k_n_match(&q, 10, n).unwrap();
            let keys: Vec<u64> = got.iter().map(|m| m.key).collect();
            assert_eq!(keys, naive_top(&live, &q, 10, n), "n={n}");
        }
        // Frequent query runs too.
        let (freq, _) = idx.frequent_k_n_match(&q, 5, 1, 4).unwrap();
        assert_eq!(freq.len(), 5);
    }

    #[test]
    fn column_invariants_after_churn() {
        let mut idx = DynamicColumns::new(2).unwrap();
        for i in 0..50u64 {
            idx.insert(i, &[(i as f64 * 0.31) % 1.0, (i as f64 * 0.17) % 1.0])
                .unwrap();
        }
        for i in (0..50u64).step_by(3) {
            idx.remove(i).unwrap();
        }
        for dim in 0..2 {
            let col = &idx.columns[dim];
            assert_eq!(col.len(), idx.len());
            assert!(col.windows(2).all(|w| w[0].value <= w[1].value));
            let mut pids: Vec<u32> = col.iter().map(|e| e.pid).collect();
            pids.sort_unstable();
            let want: Vec<u32> = (0..idx.len() as u32).collect();
            assert_eq!(pids, want, "slots must stay dense");
        }
    }

    #[test]
    fn errors() {
        let mut idx = DynamicColumns::new(2).unwrap();
        assert!(DynamicColumns::new(0).is_err());
        assert!(idx.insert(1, &[0.0]).is_err());
        assert!(idx.insert(1, &[0.0, f64::NAN]).is_err());
        assert!(idx.remove(99).is_err());
        idx.insert(1, &[0.0, 0.0]).unwrap();
        assert!(idx.k_n_match(&[0.0, 0.0], 2, 1).is_err()); // k > live
        assert!(idx.k_n_match(&[0.0, 0.0], 1, 3).is_err()); // n > d
    }
}
