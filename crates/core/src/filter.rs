//! In-memory filter-and-refine batch backends over the kernel loops.
//!
//! Two [`BatchEngine`] backends live here, both answering the exact query
//! kinds bit-identically to the sequential oracle:
//!
//! - [`ScanEngine`] — the naive full scan as a serving backend: every
//!   point's differences through the unrolled [`kernels::abs_diffs`]
//!   kernel, selection of the n-th smallest, canonical top-k. This is the
//!   paper's "scan" competitor promoted from a benchmark loop to a
//!   first-class backend (it wins near `n1 = d`, Figure 12).
//! - [`BandEngine`] — the rewritten two-phase approximation filter. Each
//!   dimension is quantised against caller-supplied cell boundaries
//!   (equi-width for the VA-file in `knmatch-vafile`, equi-depth for the
//!   IGrid adapter in `knmatch-igrid`); phase one counts, per point, the
//!   dimensions whose cell intersects the query band `[q_j − τ, q_j + τ]`
//!   with the branchless [`kernels::accumulate_band_hits`] byte kernel;
//!   phase two refines the survivors exactly. Because a point's
//!   per-dimension lower bound is within `τ` **iff** its cell intersects
//!   the band, "at least `n` band hits" is exactly "n-th smallest lower
//!   bound ≤ τ" — the classic VA-file filter condition — so the candidate
//!   set is a superset of the true answers at any quantisation and the
//!   refined answers are a pure function of the data.
//!
//! The pruning threshold `τ` is derived by refining a small evenly-spaced
//! sample exactly ([`sample_threshold`]): the k-th smallest sampled
//! n-match difference (under the canonical `(diff, pid)` order) is a valid
//! upper bound of the true k-th smallest, which is all the filter needs.

use std::sync::Arc;

use crate::ad::{validate_eps, validate_params, AdStats};
use crate::engine::{
    isolate_panic, note_outcome, run_batch, BatchAnswer, BatchEngine, BatchOptions, BatchQuery,
};
use crate::error::Result;
use crate::kernels::{abs_diffs, accumulate_band_hits, nth_smallest, sort_canonical};
use crate::point::{Dataset, PointId};
use crate::result::{rank_frequent, FrequentResult, KnMatchResult, MatchEntry};
use crate::scratch::QueryControl;
use crate::topk::TopK;

/// Points sampled (evenly spaced by pid) to derive the pruning threshold —
/// the same budget the disk planner uses.
pub const FILTER_SAMPLE: usize = 64;

/// Reusable per-worker working memory for the filter backends.
#[derive(Debug, Default)]
pub struct FilterScratch {
    counts: Vec<u16>,
    diffs: Vec<f64>,
    /// Deadline/cancellation the next query must honour (engines stamp it
    /// per batch, like [`Scratch`](crate::Scratch)).
    pub control: QueryControl,
}

impl FilterScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        FilterScratch::default()
    }

    /// A fresh scratch armed with `control`.
    pub fn with_control(control: QueryControl) -> Self {
        FilterScratch {
            control,
            ..FilterScratch::default()
        }
    }
}

/// The canonical k-th smallest n-match difference among an evenly-spaced
/// sample of at most [`FILTER_SAMPLE`] points — an upper bound of the true
/// k-th smallest over the whole dataset whenever the sample holds at least
/// `k` points, and `+∞` (no pruning) otherwise.
///
/// Deterministic: the sample pids depend only on the cardinality, and the
/// k-th smallest is selected under the canonical `(diff, pid)` order.
pub fn sample_threshold(ds: &Dataset, query: &[f64], k: usize, n: usize) -> f64 {
    let c = ds.len();
    let sample_n = FILTER_SAMPLE.min(c);
    if sample_n < k {
        return f64::INFINITY;
    }
    let step = (c / sample_n).max(1);
    let mut top = TopK::new(k);
    let mut buf = vec![0.0f64; ds.dims()];
    for i in 0..sample_n {
        let pid = ((i * step) % c) as PointId;
        abs_diffs(&mut buf, ds.point(pid), query);
        top.offer(pid, nth_smallest(&mut buf, n));
    }
    top.threshold().expect("sample_n >= k")
}

/// Exact k-n-match over an explicit candidate id list (ascending pids),
/// canonical top-k. The shared phase-two loop of both backends.
fn knmatch_over<I: Iterator<Item = PointId>>(
    ds: &Dataset,
    query: &[f64],
    k: usize,
    n: usize,
    pids: I,
    diffs: &mut Vec<f64>,
    control: &QueryControl,
) -> Result<(KnMatchResult, usize)> {
    diffs.resize(ds.dims(), 0.0);
    let mut top = TopK::new(k);
    let mut refined = 0usize;
    let mut tick = 0u32;
    for pid in pids {
        control.check(&mut tick)?;
        abs_diffs(diffs, ds.point(pid), query);
        top.offer(pid, nth_smallest(diffs, n));
        refined += 1;
    }
    Ok((top.into_result(n), refined))
}

/// Exact frequent k-n-match over a candidate id list that is a superset of
/// every per-n answer set: per-n canonical top-k collectors over one
/// sorted-difference pass per candidate, then the standard frequency
/// ranking — the same aggregation as the naive oracle, so the answers are
/// identical whenever the candidate list covers the true answers.
#[allow(clippy::too_many_arguments)]
fn frequent_over<I: Iterator<Item = PointId>>(
    ds: &Dataset,
    query: &[f64],
    k: usize,
    n0: usize,
    n1: usize,
    pids: I,
    diffs: &mut Vec<f64>,
    control: &QueryControl,
) -> Result<(FrequentResult, usize)> {
    diffs.resize(ds.dims(), 0.0);
    let mut tops: Vec<TopK> = (n0..=n1).map(|_| TopK::new(k)).collect();
    let mut refined = 0usize;
    let mut tick = 0u32;
    for pid in pids {
        control.check(&mut tick)?;
        abs_diffs(diffs, ds.point(pid), query);
        diffs.sort_unstable_by(f64::total_cmp);
        for (i, top) in tops.iter_mut().enumerate() {
            top.offer(pid, diffs[n0 + i - 1]);
        }
        refined += 1;
    }
    let per_n: Vec<KnMatchResult> = tops
        .into_iter()
        .enumerate()
        .map(|(i, t)| t.into_result(n0 + i))
        .collect();
    let mut counts: Vec<(PointId, u32)> = Vec::new();
    for res in &per_n {
        for e in &res.entries {
            match counts.iter_mut().find(|(p, _)| *p == e.pid) {
                Some((_, c)) => *c += 1,
                None => counts.push((e.pid, 1)),
            }
        }
    }
    counts.sort_unstable_by_key(|&(p, _)| p);
    let entries = rank_frequent(&counts, k);
    Ok((
        FrequentResult {
            range: (n0, n1),
            entries,
            per_n,
        },
        refined,
    ))
}

/// Exact ε-n-match over a candidate id list covering every true answer:
/// keep candidates whose n-th smallest difference is within `eps`, in the
/// canonical `(diff, pid)` order.
fn eps_over<I: Iterator<Item = PointId>>(
    ds: &Dataset,
    query: &[f64],
    eps: f64,
    n: usize,
    pids: I,
    diffs: &mut Vec<f64>,
    control: &QueryControl,
) -> Result<(KnMatchResult, usize)> {
    diffs.resize(ds.dims(), 0.0);
    let mut entries = Vec::new();
    let mut refined = 0usize;
    let mut tick = 0u32;
    for pid in pids {
        control.check(&mut tick)?;
        abs_diffs(diffs, ds.point(pid), query);
        let diff = nth_smallest(diffs, n);
        if diff <= eps {
            entries.push(MatchEntry { pid, diff });
        }
        refined += 1;
    }
    sort_canonical(&mut entries);
    Ok((KnMatchResult { n, entries }, refined))
}

/// Validates one batch query against a `c × d` source, mirroring the AD
/// entry points exactly (same errors for the same inputs).
fn validate_query(query: &BatchQuery, d: usize, c: usize) -> Result<()> {
    match query {
        BatchQuery::KnMatch { query, k, n } => validate_params(query, d, c, *k, *n, *n),
        BatchQuery::Frequent { query, k, n0, n1 } => validate_params(query, d, c, *k, *n0, *n1),
        BatchQuery::EpsMatch { query, eps, n } => {
            validate_params(query, d, c, 1, *n, *n)?;
            validate_eps(*eps)
        }
    }
}

/// Stats attributed to a refine pass that touched `refined` points of a
/// `d`-dimensional dataset, after sampling `sampled` points for the
/// threshold: `attributes_retrieved` counts the refined attributes (the
/// paper's cost measure for phase two), `locate_probes` the sampled
/// points. The scan backend reports `refined = c`, `sampled = 0`.
fn refine_stats(refined: usize, d: usize, sampled: usize) -> AdStats {
    AdStats {
        attributes_retrieved: (refined as u64) * (d as u64),
        locate_probes: sampled as u64,
        heap_pops: 0,
    }
}

/// The naive full scan as a [`BatchEngine`]: kernel-unrolled differences,
/// O(d) selection, canonical top-k. Bit-identical to the sequential scan
/// oracle (and therefore to the AD algorithm) on every query kind.
#[derive(Debug, Clone)]
pub struct ScanEngine {
    data: Arc<Dataset>,
    workers: usize,
}

impl ScanEngine {
    /// An engine over `data` with one worker per available CPU.
    pub fn new(data: Arc<Dataset>) -> Self {
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::with_workers(data, workers)
    }

    /// An engine with an explicit worker count (clamped to ≥ 1).
    pub fn with_workers(data: Arc<Dataset>, workers: usize) -> Self {
        ScanEngine {
            data,
            workers: workers.max(1),
        }
    }

    /// The scanned dataset.
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.data
    }

    /// Executes one query on the calling thread against caller scratch.
    ///
    /// # Errors
    ///
    /// Per-query parameter validation, deadline, cancellation.
    pub fn execute(
        &self,
        query: &BatchQuery,
        scratch: &mut FilterScratch,
    ) -> Result<(BatchAnswer, AdStats)> {
        let ds = &*self.data;
        let (d, c) = (ds.dims(), ds.len());
        validate_query(query, d, c)?;
        scratch.control.precheck()?;
        let control = scratch.control.clone();
        let answer = match query {
            BatchQuery::KnMatch { query, k, n } => {
                let (r, _) = knmatch_over(
                    ds,
                    query,
                    *k,
                    *n,
                    0..c as PointId,
                    &mut scratch.diffs,
                    &control,
                )?;
                BatchAnswer::KnMatch(r)
            }
            BatchQuery::Frequent { query, k, n0, n1 } => {
                let (r, _) = frequent_over(
                    ds,
                    query,
                    *k,
                    *n0,
                    *n1,
                    0..c as PointId,
                    &mut scratch.diffs,
                    &control,
                )?;
                BatchAnswer::Frequent(r)
            }
            BatchQuery::EpsMatch { query, eps, n } => {
                let (r, _) = eps_over(
                    ds,
                    query,
                    *eps,
                    *n,
                    0..c as PointId,
                    &mut scratch.diffs,
                    &control,
                )?;
                BatchAnswer::EpsMatch(r)
            }
        };
        Ok((answer, refine_stats(c, d, 0)))
    }
}

impl BatchEngine for ScanEngine {
    type Outcome = (BatchAnswer, AdStats);

    fn workers(&self) -> usize {
        self.workers
    }

    fn run_with(
        &self,
        queries: &[BatchQuery],
        opts: &BatchOptions,
    ) -> Vec<Result<(BatchAnswer, AdStats)>> {
        let control = opts.arm();
        run_batch(
            self.workers,
            queries.len(),
            || FilterScratch::with_control(control.clone()),
            |scratch, i| {
                let out = isolate_panic(|| self.execute(&queries[i], scratch));
                note_outcome(&control, &out);
                out
            },
        )
    }
}

/// A quantised filter-and-refine [`BatchEngine`] over caller-supplied
/// per-dimension cell boundaries (see the module docs). `knmatch-vafile`
/// builds it with equi-width cells (the VA-file), `knmatch-igrid` with
/// equi-depth ranges (the IGrid partitioning) — the filter, kernels, and
/// exactness argument are shared.
#[derive(Debug, Clone)]
pub struct BandEngine {
    data: Arc<Dataset>,
    /// `boundaries[dim]` holds `cells_j + 1` ascending marks spanning that
    /// dimension's observed value range.
    boundaries: Vec<Vec<f64>>,
    /// Dim-major quantised cell indices: `cells[dim * len + pid]`.
    cells: Vec<u8>,
    workers: usize,
}

impl BandEngine {
    /// Quantises `data` against `boundaries` (one ascending mark vector of
    /// `cells_j + 1 ≤ 257` entries per dimension, spanning at least the
    /// observed value range of that dimension).
    ///
    /// # Panics
    ///
    /// Panics when a dimension has fewer than 2 marks, more than 257, or
    /// marks that fail to cover its observed values (the cover is what
    /// makes the filter's lower bounds sound).
    pub fn from_boundaries(data: Arc<Dataset>, boundaries: Vec<Vec<f64>>, workers: usize) -> Self {
        let (d, c) = (data.dims(), data.len());
        assert_eq!(boundaries.len(), d, "one boundary vector per dimension");
        let mut cells = vec![0u8; d * c];
        for (j, marks) in boundaries.iter().enumerate() {
            assert!(
                (2..=257).contains(&marks.len()),
                "dimension {j}: need 2..=257 marks, got {}",
                marks.len()
            );
            let ncells = marks.len() - 1;
            let col = &mut cells[j * c..(j + 1) * c];
            for (pid, slot) in col.iter_mut().enumerate() {
                let v = data.coord(pid as PointId, j);
                assert!(
                    v >= marks[0] && v <= marks[ncells],
                    "dimension {j}: value {v} outside boundary range"
                );
                // First mark above v, minus one; the final mark maps into
                // the last cell so each cell interval contains its values.
                let cell = marks.partition_point(|&m| m <= v).min(ncells) - 1;
                *slot = cell as u8;
            }
        }
        BandEngine {
            data,
            boundaries,
            cells,
            workers: workers.max(1),
        }
    }

    /// The indexed dataset.
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.data
    }

    /// Worker count used by [`BatchEngine::run_with`].
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The inclusive cell band of `dim` intersecting the value interval
    /// `[lo, hi]`, or `None` when no cell does. A cell intersects exactly
    /// when the per-dimension difference lower bound it implies is ≤ the
    /// interval half-width, so the filter prunes nothing it should keep.
    fn band(&self, dim: usize, lo: f64, hi: f64) -> Option<(u8, u8)> {
        let marks = &self.boundaries[dim];
        let ncells = marks.len() - 1;
        // First cell whose upper mark reaches lo.
        let first = marks[1..].partition_point(|&m| m < lo);
        // Last cell whose lower mark does not pass hi.
        let last = marks[..ncells].partition_point(|&m| m <= hi);
        if first >= last {
            return None;
        }
        Some((first as u8, (last - 1) as u8))
    }

    /// Phase one: counts, per point, the dimensions whose cell intersects
    /// `[q_j − tau, q_j + tau]`, into `counts` (reset here).
    fn filter_counts(&self, query: &[f64], tau: f64, counts: &mut Vec<u16>) {
        let c = self.data.len();
        counts.clear();
        counts.resize(c, 0);
        for (j, &qv) in query.iter().enumerate() {
            if let Some((lo, hi)) = self.band(j, qv - tau, qv + tau) {
                accumulate_band_hits(counts, &self.cells[j * c..(j + 1) * c], lo, hi);
            }
        }
    }

    /// Estimates the fraction of points phase one would keep for a filter
    /// at threshold `tau` requiring `min_hits` band hits, by running the
    /// filter over at most `sample` evenly-strided points. Used by the
    /// request-time planner to price the refine phase without paying for
    /// a full filter pass.
    pub fn estimate_candidate_fraction(
        &self,
        query: &[f64],
        tau: f64,
        min_hits: usize,
        sample: usize,
    ) -> f64 {
        let c = self.data.len();
        let sample_n = sample.clamp(1, c);
        let step = (c / sample_n).max(1);
        let mut kept = 0usize;
        let bands: Vec<Option<(u8, u8)>> = query
            .iter()
            .enumerate()
            .map(|(j, &qv)| self.band(j, qv - tau, qv + tau))
            .collect();
        for i in 0..sample_n {
            let pid = (i * step) % c;
            let mut hits = 0usize;
            for (j, band) in bands.iter().enumerate() {
                if let Some((lo, hi)) = band {
                    let cell = self.cells[j * c + pid];
                    hits += usize::from(cell >= *lo && cell <= *hi);
                }
            }
            kept += usize::from(hits >= min_hits);
        }
        kept as f64 / sample_n as f64
    }

    /// Executes one query on the calling thread against caller scratch:
    /// sample-derived threshold, kernel band filter, exact refine.
    ///
    /// # Errors
    ///
    /// Per-query parameter validation, deadline, cancellation.
    pub fn execute(
        &self,
        query: &BatchQuery,
        scratch: &mut FilterScratch,
    ) -> Result<(BatchAnswer, AdStats)> {
        let ds = &*self.data;
        let (d, c) = (ds.dims(), ds.len());
        validate_query(query, d, c)?;
        scratch.control.precheck()?;
        let control = scratch.control.clone();
        // Threshold and hit floor per kind: k-n-match prunes at the n-level
        // bound, frequent at the loosest level of its range (τ is
        // nondecreasing in n, so τ(n1) covers every per-n answer set), and
        // ε-n-match prunes at ε itself.
        let (q, tau, min_hits, sampled) = match query {
            BatchQuery::KnMatch { query, k, n } => (
                query,
                sample_threshold(ds, query, *k, *n),
                *n,
                FILTER_SAMPLE.min(c),
            ),
            BatchQuery::Frequent { query, k, n1, n0 } => (
                query,
                sample_threshold(ds, query, *k, *n1),
                *n0,
                FILTER_SAMPLE.min(c),
            ),
            BatchQuery::EpsMatch { query, eps, n } => (query, *eps, *n, 0),
        };
        self.filter_counts(q, tau, &mut scratch.counts);
        let min16 = min_hits.min(u16::MAX as usize) as u16;
        let counts = std::mem::take(&mut scratch.counts);
        let cands = counts
            .iter()
            .enumerate()
            .filter(|&(_, &h)| h >= min16)
            .map(|(pid, _)| pid as PointId);
        let (answer, refined) = match query {
            BatchQuery::KnMatch { query, k, n } => {
                let (r, refined) =
                    knmatch_over(ds, query, *k, *n, cands, &mut scratch.diffs, &control)?;
                (BatchAnswer::KnMatch(r), refined)
            }
            BatchQuery::Frequent { query, k, n0, n1 } => {
                let (r, refined) =
                    frequent_over(ds, query, *k, *n0, *n1, cands, &mut scratch.diffs, &control)?;
                (BatchAnswer::Frequent(r), refined)
            }
            BatchQuery::EpsMatch { query, eps, n } => {
                let (r, refined) =
                    eps_over(ds, query, *eps, *n, cands, &mut scratch.diffs, &control)?;
                (BatchAnswer::EpsMatch(r), refined)
            }
        };
        scratch.counts = counts;
        Ok((answer, refine_stats(refined, d, sampled)))
    }
}

impl BatchEngine for BandEngine {
    type Outcome = (BatchAnswer, AdStats);

    fn workers(&self) -> usize {
        self.workers
    }

    fn run_with(
        &self,
        queries: &[BatchQuery],
        opts: &BatchOptions,
    ) -> Vec<Result<(BatchAnswer, AdStats)>> {
        let control = opts.arm();
        run_batch(
            self.workers,
            queries.len(),
            || FilterScratch::with_control(control.clone()),
            |scratch, i| {
                let out = isolate_panic(|| self.execute(&queries[i], scratch));
                note_outcome(&control, &out);
                out
            },
        )
    }
}

/// Equi-width cell boundaries over the observed per-dimension ranges —
/// the VA-file quantisation (`cells` cells per dimension). Degenerate
/// (constant) dimensions get a unit-width cell so quantisation never
/// divides by zero.
pub fn equi_width_boundaries(ds: &Dataset, cells: usize) -> Vec<Vec<f64>> {
    assert!(
        (1..=256).contains(&cells),
        "cells per dimension must be 1..=256"
    );
    let d = ds.dims();
    let mut mins = vec![f64::INFINITY; d];
    let mut maxs = vec![f64::NEG_INFINITY; d];
    for (_, p) in ds.iter() {
        for (j, &v) in p.iter().enumerate() {
            mins[j] = mins[j].min(v);
            maxs[j] = maxs[j].max(v);
        }
    }
    (0..d)
        .map(|j| {
            let lo = mins[j];
            let hi = if maxs[j] > mins[j] {
                maxs[j]
            } else {
                mins[j] + 1.0
            };
            let mut marks: Vec<f64> = (0..=cells)
                .map(|c| lo + (hi - lo) * c as f64 / cells as f64)
                .collect();
            // Guard against rounding pulling the last mark below the max.
            marks[cells] = marks[cells].max(maxs[j]);
            marks
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::BatchQuery;
    use crate::naive::{frequent_k_n_match_scan, k_n_match_scan};

    fn pseudo_dataset(c: usize, d: usize, seed: u64) -> Dataset {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let rows: Vec<Vec<f64>> = (0..c).map(|_| (0..d).map(|_| next()).collect()).collect();
        Dataset::from_rows(&rows).unwrap()
    }

    fn band_engine(ds: &Dataset, workers: usize) -> BandEngine {
        let boundaries = equi_width_boundaries(ds, 64);
        BandEngine::from_boundaries(Arc::new(ds.clone()), boundaries, workers)
    }

    fn mixed_batch(d: usize) -> Vec<BatchQuery> {
        let q: Vec<f64> = (0..d).map(|j| 0.1 + 0.8 * j as f64 / d as f64).collect();
        vec![
            BatchQuery::KnMatch {
                query: q.clone(),
                k: 7,
                n: 1,
            },
            BatchQuery::KnMatch {
                query: q.clone(),
                k: 3,
                n: d,
            },
            BatchQuery::Frequent {
                query: q.clone(),
                k: 5,
                n0: 1,
                n1: d,
            },
            BatchQuery::EpsMatch {
                query: q,
                eps: 0.05,
                n: (d / 2).max(1),
            },
        ]
    }

    fn oracle(ds: &Dataset, query: &BatchQuery) -> BatchAnswer {
        match query {
            BatchQuery::KnMatch { query, k, n } => {
                BatchAnswer::KnMatch(k_n_match_scan(ds, query, *k, *n).unwrap())
            }
            BatchQuery::Frequent { query, k, n0, n1 } => {
                BatchAnswer::Frequent(frequent_k_n_match_scan(ds, query, *k, *n0, *n1).unwrap())
            }
            BatchQuery::EpsMatch { query, eps, n } => {
                let mut entries = Vec::new();
                let mut buf = Vec::new();
                for (pid, p) in ds.iter() {
                    let diff = crate::nmatch::nmatch_difference_with_buf(p, query, *n, &mut buf);
                    if diff <= *eps {
                        entries.push(MatchEntry { pid, diff });
                    }
                }
                sort_canonical(&mut entries);
                BatchAnswer::EpsMatch(KnMatchResult { n: *n, entries })
            }
        }
    }

    #[test]
    fn scan_engine_matches_oracle_bitwise() {
        let ds = pseudo_dataset(400, 6, 11);
        let batch = mixed_batch(6);
        for workers in [1usize, 3] {
            let e = ScanEngine::with_workers(Arc::new(ds.clone()), workers);
            for (q, r) in batch.iter().zip(e.run(&batch)) {
                let (answer, stats) = r.unwrap();
                assert_eq!(answer, oracle(&ds, q), "workers={workers}");
                assert_eq!(stats.attributes_retrieved, 400 * 6);
            }
        }
    }

    #[test]
    fn band_engine_matches_oracle_bitwise() {
        let ds = pseudo_dataset(500, 8, 23);
        let batch = mixed_batch(8);
        for workers in [1usize, 4] {
            let e = band_engine(&ds, workers);
            for (q, r) in batch.iter().zip(e.run(&batch)) {
                let (answer, _) = r.unwrap();
                assert_eq!(answer, oracle(&ds, q), "workers={workers}");
            }
        }
    }

    #[test]
    fn band_engine_handles_adversarial_ties() {
        // Heavily quantised values: nearly every difference collides, so
        // only the canonical (diff, pid) tie-break yields a unique answer.
        let rows: Vec<Vec<f64>> = (0..300)
            .map(|i| {
                (0..5)
                    .map(|j| ((i * 7 + j * 13) % 4) as f64 * 0.25)
                    .collect()
            })
            .collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let e = band_engine(&ds, 2);
        let s = ScanEngine::with_workers(Arc::new(ds.clone()), 2);
        let batch = vec![
            BatchQuery::KnMatch {
                query: vec![0.2; 5],
                k: 11,
                n: 3,
            },
            BatchQuery::Frequent {
                query: vec![0.5; 5],
                k: 9,
                n0: 2,
                n1: 5,
            },
            BatchQuery::EpsMatch {
                query: vec![0.25; 5],
                eps: 0.25,
                n: 2,
            },
        ];
        for ((q, band), scan) in batch.iter().zip(e.run(&batch)).zip(s.run(&batch)) {
            let want = oracle(&ds, q);
            assert_eq!(band.unwrap().0, want);
            assert_eq!(scan.unwrap().0, want);
        }
    }

    #[test]
    fn band_filter_prunes_on_selective_queries() {
        let ds = pseudo_dataset(2000, 8, 5);
        let e = band_engine(&ds, 1);
        let q = ds.point(123).to_vec();
        let mut scratch = FilterScratch::new();
        let (_, stats) = e
            .execute(
                &BatchQuery::KnMatch {
                    query: q,
                    k: 5,
                    n: 8,
                },
                &mut scratch,
            )
            .unwrap();
        assert!(
            stats.attributes_retrieved < 2000 * 8 / 2,
            "full-dimension self-query should prune most points: {stats:?}"
        );
    }

    #[test]
    fn candidate_fraction_estimate_is_a_fraction() {
        let ds = pseudo_dataset(1000, 4, 9);
        let e = band_engine(&ds, 1);
        let q = vec![0.5; 4];
        let f = e.estimate_candidate_fraction(&q, 0.01, 4, 128);
        assert!((0.0..=1.0).contains(&f));
        let g = e.estimate_candidate_fraction(&q, 10.0, 1, 128);
        assert_eq!(g, 1.0, "an unbounded band keeps everything");
    }

    #[test]
    fn engines_validate_like_ad() {
        let ds = pseudo_dataset(50, 3, 2);
        let bad = BatchQuery::KnMatch {
            query: vec![0.0; 2],
            k: 1,
            n: 1,
        };
        let mut scratch = FilterScratch::new();
        assert!(ScanEngine::with_workers(Arc::new(ds.clone()), 1)
            .execute(&bad, &mut scratch)
            .is_err());
        assert!(band_engine(&ds, 1).execute(&bad, &mut scratch).is_err());
    }

    #[test]
    fn sample_threshold_bounds_the_true_threshold() {
        let ds = pseudo_dataset(800, 6, 31);
        let q = vec![0.3; 6];
        for (k, n) in [(1usize, 1usize), (10, 3), (25, 6)] {
            let tau = sample_threshold(&ds, &q, k, n);
            let exact = k_n_match_scan(&ds, &q, k, n).unwrap();
            assert!(
                exact.epsilon() <= tau,
                "sampled bound below true threshold: k={k} n={n}"
            );
        }
    }
}
