//! Parallel batch execution of matching queries over one shared
//! sorted-column organisation.
//!
//! The AD algorithm is read-only over [`SortedColumns`], so a batch of
//! queries parallelises trivially: `W` worker threads claim queries from a
//! shared atomic counter and each walks the same `Arc<SortedColumns>`
//! through its own [`Scratch`]. Because every query runs the exact same
//! `frequent_core` loop as the sequential entry points — same frontier,
//! same tie-breaking, same counters — the engine's answers and
//! [`AdStats`] are bit-for-bit identical to a sequential loop, in the
//! same order as the input batch, regardless of worker count or
//! scheduling.
//!
//! Workers use `std::thread::scope` (no extra dependencies, no `unsafe`)
//! and keep one reusable `Scratch` each, so a batch of `q` queries costs
//! `W` scratch allocations, not `q`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use crate::ad::{eps_n_match_ad_with, frequent_k_n_match_ad_with, k_n_match_ad_with, AdStats};
use crate::columns::SortedColumns;
use crate::error::{panic_message, KnMatchError, Result};
use crate::result::{FrequentResult, KnMatchResult};
use crate::scratch::{QueryControl, Scratch};
use crate::source::SortedAccessSource;

/// Queries claimed per worker fetch-add (see [`QueryEngine::run`]).
const CLAIM_CHUNK: usize = 4;

/// One query of a batch: the three AD-backed query kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchQuery {
    /// A k-n-match query (Definition 3).
    KnMatch {
        /// The query point.
        query: Vec<f64>,
        /// Answer-set size.
        k: usize,
        /// Number of matching dimensions.
        n: usize,
    },
    /// A frequent k-n-match query (Definition 4) over `n ∈ [n0, n1]`.
    Frequent {
        /// The query point.
        query: Vec<f64>,
        /// Answer-set size.
        k: usize,
        /// Lower end of the n range.
        n0: usize,
        /// Upper end of the n range.
        n1: usize,
    },
    /// An ε-n-match query: all points within threshold `eps`.
    EpsMatch {
        /// The query point.
        query: Vec<f64>,
        /// The n-match-difference threshold.
        eps: f64,
        /// Number of matching dimensions.
        n: usize,
    },
}

/// The answer to one [`BatchQuery`], mirroring its variant.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchAnswer {
    /// Answer to [`BatchQuery::KnMatch`].
    KnMatch(KnMatchResult),
    /// Answer to [`BatchQuery::Frequent`].
    Frequent(FrequentResult),
    /// Answer to [`BatchQuery::EpsMatch`].
    EpsMatch(KnMatchResult),
}

/// Batch-wide fault-handling options (DESIGN.md §10), accepted by the
/// `run_with` methods of every batch engine: [`QueryEngine`], the sharded
/// engine, and the disk engine in `knmatch-storage`.
///
/// The default imposes nothing and `run(batch)` is exactly
/// `run_with(batch, &BatchOptions::default())` — healthy-path answers and
/// stats are bit-identical with or without options.
#[derive(Debug, Clone, Default)]
pub struct BatchOptions {
    /// Per-query time budget. Each query that is still walking when the
    /// budget (measured from batch submission) runs out fails with
    /// [`KnMatchError::DeadlineExceeded`]; the rest of the batch is
    /// unaffected.
    pub deadline: Option<Duration>,
    /// Absolute deadline stamped by a caller that queued the batch before
    /// running it (the event-loop server stamps arrival time, so executor
    /// queue wait counts against the budget). When both this and
    /// [`deadline`](BatchOptions::deadline) are set, the earlier instant
    /// wins.
    pub deadline_at: Option<Instant>,
    /// When `true`, the first failing query trips a shared cancel flag and
    /// every query not yet finished gives up with
    /// [`KnMatchError::Cancelled`]. When `false` (default) each query
    /// fails or succeeds on its own.
    pub fail_fast: bool,
    /// Backend-selection override for planner-capable engines: `None`
    /// (default) keeps the engine's configured mode; `Some(mode)` forces
    /// that mode for this batch. Engines without a planner ignore it, so
    /// default options stay bit-identical to [`BatchEngine::run`]
    /// everywhere.
    pub planner: Option<PlannerMode>,
}

/// How a planner-capable engine picks the backend for each query.
///
/// `Auto` evaluates the per-query cost model (the Figure 12 crossover,
/// live per batch element); the others force one backend. Every listed
/// backend answers the exact query kinds bit-identically to the
/// sequential oracle, so the mode changes cost, never answers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum PlannerMode {
    /// Pick AD, VA-file, or scan per query from the cost model.
    #[default]
    Auto,
    /// Always the AD algorithm over sorted columns.
    Ad,
    /// Always the VA-file two-phase filter-and-refine backend.
    VaFile,
    /// Always the kernel-unrolled naive full scan.
    Scan,
    /// Always the IGrid (equi-depth) filter-and-refine backend. Never
    /// chosen by `Auto` — an explicit override for experiments.
    IGrid,
}

impl PlannerMode {
    /// The CLI/protocol spelling (`auto`, `ad`, `vafile`, `scan`, `igrid`).
    pub fn as_str(self) -> &'static str {
        match self {
            PlannerMode::Auto => "auto",
            PlannerMode::Ad => "ad",
            PlannerMode::VaFile => "vafile",
            PlannerMode::Scan => "scan",
            PlannerMode::IGrid => "igrid",
        }
    }
}

impl std::fmt::Display for PlannerMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for PlannerMode {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, String> {
        match s {
            "auto" => Ok(PlannerMode::Auto),
            "ad" => Ok(PlannerMode::Ad),
            "vafile" => Ok(PlannerMode::VaFile),
            "scan" => Ok(PlannerMode::Scan),
            "igrid" => Ok(PlannerMode::IGrid),
            other => Err(format!(
                "unknown planner mode {other:?} (expected auto|ad|vafile|scan|igrid)"
            )),
        }
    }
}

/// Cumulative count of per-query plan decisions made by a planner-capable
/// engine, reported through [`BatchEngine::plan_counts`] and surfaced by
/// the server's `STATS` verb.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanTally {
    /// Queries routed to the AD algorithm.
    pub ad: u64,
    /// Queries routed to the VA-file filter-and-refine backend.
    pub vafile: u64,
    /// Queries routed to the kernel scan backend.
    pub scan: u64,
    /// Queries routed to the IGrid backend (explicit override only).
    pub igrid: u64,
}

impl PlanTally {
    /// Total planned queries.
    pub fn total(&self) -> u64 {
        self.ad + self.vafile + self.scan + self.igrid
    }
}

impl BatchOptions {
    /// Arms a [`QueryControl`] for one batch submission: the deadline
    /// becomes an absolute instant *now*, and fail-fast allocates the
    /// shared cancel flag. Called once per batch so every query in the
    /// batch races the same clock.
    pub fn arm(&self) -> QueryControl {
        // `checked_add` so an absurd duration means "no deadline"
        // rather than a panic.
        let relative = self.deadline.and_then(|d| Instant::now().checked_add(d));
        QueryControl {
            deadline: match (self.deadline_at, relative) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
            cancel: if self.fail_fast {
                Some(Arc::new(AtomicBool::new(false)))
            } else {
                None
            },
        }
    }
}

/// One successful slot of a batch run, as seen through the [`BatchEngine`]
/// abstraction.
///
/// Every engine returns its own outcome type — the in-memory
/// [`QueryEngine`] a plain `(BatchAnswer, AdStats)` pair, the sharded
/// engine a [`ShardedOutcome`](crate::ShardedOutcome) with its per-shard
/// cost split, the disk engine a `DiskBatchOutcome` carrying modelled page
/// I/O. This trait is the common projection: the answer itself plus the
/// attribute-level AD counters, which every backend produces. Code that
/// serves or prints batch results (the network front-end, the CLI) works
/// against this projection and stays backend-agnostic.
pub trait BatchOutcome: Send {
    /// The query answer, mirroring the [`BatchQuery`] variant.
    fn answer(&self) -> &BatchAnswer;
    /// The attribute-level AD counters of this query (for sharded runs,
    /// the per-shard total).
    fn ad_stats(&self) -> AdStats;
    /// Consumes the outcome, keeping only the answer.
    fn into_answer(self) -> BatchAnswer;
}

impl BatchOutcome for (BatchAnswer, AdStats) {
    fn answer(&self) -> &BatchAnswer {
        &self.0
    }

    fn ad_stats(&self) -> AdStats {
        self.1
    }

    fn into_answer(self) -> BatchAnswer {
        self.0
    }
}

/// A batch executor for [`BatchQuery`] workloads: the one API every
/// backend implements and every front-end consumes.
///
/// Three engines implement it — [`QueryEngine`] (shared in-memory
/// columns, inter-query parallelism),
/// [`ShardedQueryEngine`](crate::ShardedQueryEngine) (point-id shards,
/// intra-query parallelism), and the disk engine in `knmatch-storage`
/// (shared buffer pool over a database file). All three promise the same
/// contract:
///
/// - one result per query, **in input order**, regardless of worker count
///   or scheduling;
/// - invalid queries fail their own slot with a validation error while
///   the rest of the batch completes;
/// - a panicking query is isolated to its own slot
///   ([`KnMatchError::Panicked`]);
/// - [`BatchOptions`] add per-query deadlines and fail-fast cancellation,
///   and with default options `run_with` is bit-identical to
///   [`run`](BatchEngine::run).
///
/// The trait keeps generic callers honest: the network front-end in
/// `knmatch-server` serves all three backends through one code path, and
/// cross-check tests compare a served batch against a direct
/// [`run`](BatchEngine::run) call on the same engine value.
pub trait BatchEngine {
    /// What a successful query slot carries; see [`BatchOutcome`].
    type Outcome: BatchOutcome;

    /// The configured worker count.
    fn workers(&self) -> usize;

    /// Executes the whole batch under `opts`, returning one result per
    /// query in input order.
    fn run_with(&self, queries: &[BatchQuery], opts: &BatchOptions) -> Vec<Result<Self::Outcome>>;

    /// [`run_with`](BatchEngine::run_with) under default [`BatchOptions`]:
    /// no deadline, no fail-fast — the healthy-path entry point.
    fn run(&self, queries: &[BatchQuery]) -> Vec<Result<Self::Outcome>> {
        self.run_with(queries, &BatchOptions::default())
    }

    /// Cumulative per-query plan decisions, for planner-capable engines.
    /// The default (`None`) marks an engine with no planner; front-ends
    /// report tallies only when one is present.
    fn plan_counts(&self) -> Option<PlanTally> {
        None
    }

    /// The mutation surface, for engines that accept live writes. The
    /// default (`None`) marks a read-only engine; servers reject the
    /// write verbs when no writer is present.
    fn writer(&self) -> Option<&dyn crate::versioned::VersionWriter> {
        None
    }
}

/// Records `result` against an armed control: a failed query trips the
/// batch's fail-fast cancel flag (a no-op without one). Shared by all
/// three batch engines so fail-fast semantics cannot drift.
pub fn note_outcome<T>(control: &QueryControl, result: &Result<T>) {
    if result.is_err() {
        if let Some(flag) = &control.cancel {
            flag.store(true, Ordering::Relaxed);
        }
    }
}

/// Runs `f`, converting a panic into [`KnMatchError::Panicked`] so one
/// query's panic is isolated to its own result slot. The payload is
/// rendered with [`panic_message`]; callers that smuggle richer errors
/// through panics (the disk engine's storage errors) do their own
/// downcast before falling back to this.
pub fn isolate_panic<T>(f: impl FnOnce() -> Result<T>) -> Result<T> {
    catch_unwind(AssertUnwindSafe(f)).unwrap_or_else(|payload| {
        Err(KnMatchError::Panicked {
            message: panic_message(payload.as_ref()),
        })
    })
}

/// Executes one [`BatchQuery`] against any [`SortedAccessSource`] with
/// caller-provided working memory.
///
/// This is the single dispatch point every batch executor funnels through:
/// the in-memory [`QueryEngine`], the disk-backed engine in
/// `knmatch-storage`, and sequential cross-check loops all call it, so
/// answers and [`AdStats`] cannot drift between them.
///
/// # Errors
///
/// Per-query parameter validation; see [`KnMatchError`](crate::KnMatchError).
pub fn execute_batch_query<Src: SortedAccessSource>(
    src: &mut Src,
    query: &BatchQuery,
    scratch: &mut Scratch,
) -> Result<(BatchAnswer, AdStats)> {
    match query {
        BatchQuery::KnMatch { query, k, n } => k_n_match_ad_with(src, query, *k, *n, scratch)
            .map(|(r, s)| (BatchAnswer::KnMatch(r), s)),
        BatchQuery::Frequent { query, k, n0, n1 } => {
            frequent_k_n_match_ad_with(src, query, *k, *n0, *n1, scratch)
                .map(|(r, s)| (BatchAnswer::Frequent(r), s))
        }
        BatchQuery::EpsMatch { query, eps, n } => {
            eps_n_match_ad_with(src, query, *eps, *n, scratch)
                .map(|(r, s)| (BatchAnswer::EpsMatch(r), s))
        }
    }
}

/// Runs `count` independent work items over a pool of `workers` threads,
/// returning the per-item outputs in item order.
///
/// This is the PR-1 claim-chunk executor factored out of [`QueryEngine`]
/// so any source — in-memory columns, a disk-backed shared buffer pool, a
/// remote stub — can reuse the exact scheduling behaviour: workers claim
/// item indices in chunks of 4 off one atomic counter, each builds its
/// own per-thread context once (`init`), and results travel back in one
/// message per worker. With `workers <= 1` everything runs on the calling
/// thread with a single context and no thread machinery, which keeps the
/// sequential path trivially inspectable.
///
/// Item outputs must not depend on scheduling: `exec` receives only its
/// per-thread context and the item index, so for deterministic `exec` the
/// returned vector is identical at any worker count.
pub fn run_batch<T, Ctx, I, E>(workers: usize, count: usize, init: I, exec: E) -> Vec<T>
where
    T: Send,
    I: Fn() -> Ctx + Sync,
    E: Fn(&mut Ctx, usize) -> T + Sync,
{
    if workers <= 1 || count <= 1 {
        let mut ctx = init();
        return (0..count).map(|i| exec(&mut ctx, i)).collect();
    }
    let workers = workers.min(count);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel();
    thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let init = &init;
            let exec = &exec;
            s.spawn(move || {
                let mut ctx = init();
                let mut done: Vec<(usize, T)> = Vec::new();
                loop {
                    // Claim a small chunk per atomic op; big enough to
                    // keep contention negligible, small enough that a
                    // straggler chunk cannot unbalance the batch.
                    let start = next.fetch_add(CLAIM_CHUNK, Ordering::Relaxed);
                    if start >= count {
                        break;
                    }
                    let end = (start + CLAIM_CHUNK).min(count);
                    for i in start..end {
                        done.push((i, exec(&mut ctx, i)));
                    }
                }
                // One send per worker: answers travel in bulk, not one
                // channel node per item.
                let _ = tx.send(done);
            });
        }
    });
    drop(tx);

    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    for done in rx {
        for (i, out) in done {
            slots[i] = Some(out);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("each claimed index sends exactly one result"))
        .collect()
}

/// Executes batches of matching queries in parallel over one shared
/// [`SortedColumns`].
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use knmatch_core::{BatchAnswer, BatchEngine, BatchQuery, Dataset, QueryEngine, SortedColumns};
///
/// let ds = knmatch_core::paper::fig3_dataset();
/// let engine = QueryEngine::new(Arc::new(SortedColumns::build(&ds)));
/// let batch = vec![
///     BatchQuery::KnMatch { query: vec![3.0, 7.0, 4.0], k: 2, n: 2 },
///     BatchQuery::Frequent { query: vec![3.0, 7.0, 4.0], k: 2, n0: 1, n1: 3 },
/// ];
/// let results = engine.run(&batch);
/// let (BatchAnswer::KnMatch(first), _) = results[0].as_ref().unwrap() else {
///     unreachable!()
/// };
/// assert_eq!(first.ids(), vec![2, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct QueryEngine {
    cols: Arc<SortedColumns>,
    workers: usize,
}

impl QueryEngine {
    /// An engine over `cols` with one worker per available CPU.
    pub fn new(cols: Arc<SortedColumns>) -> Self {
        let workers = thread::available_parallelism().map_or(1, |n| n.get());
        Self::with_workers(cols, workers)
    }

    /// An engine with an explicit worker count (clamped to ≥ 1). One
    /// worker means [`run`](Self::run) executes on the calling thread.
    pub fn with_workers(cols: Arc<SortedColumns>, workers: usize) -> Self {
        QueryEngine {
            cols,
            workers: workers.max(1),
        }
    }

    /// The shared column organisation.
    pub fn columns(&self) -> &Arc<SortedColumns> {
        &self.cols
    }

    /// Executes one query against caller-provided scratch, on the calling
    /// thread. [`run`](Self::run) is a parallel loop over exactly this, so
    /// cross-checking the two paths needs no test-only hooks.
    ///
    /// # Errors
    ///
    /// Per-query parameter validation; see
    /// [`KnMatchError`](crate::KnMatchError).
    pub fn execute(
        &self,
        query: &BatchQuery,
        scratch: &mut Scratch,
    ) -> Result<(BatchAnswer, AdStats)> {
        // `&SortedColumns` implements `SortedAccessSource`; taking `&mut`
        // of the local reference (not the columns) keeps the shared data
        // immutable.
        let mut view: &SortedColumns = &self.cols;
        execute_batch_query(&mut view, query, scratch)
    }
}

impl BatchEngine for QueryEngine {
    type Outcome = (BatchAnswer, AdStats);

    fn workers(&self) -> usize {
        self.workers
    }

    fn run_with(
        &self,
        queries: &[BatchQuery],
        opts: &BatchOptions,
    ) -> Vec<Result<(BatchAnswer, AdStats)>> {
        let control = opts.arm();
        run_batch(
            self.workers,
            queries.len(),
            || control.scratch(),
            |scratch, i| {
                let out = isolate_panic(|| self.execute(&queries[i], scratch));
                note_outcome(&control, &out);
                out
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ad::{frequent_k_n_match_ad, k_n_match_ad};
    use crate::error::KnMatchError;

    fn engine(workers: usize) -> QueryEngine {
        let ds = crate::paper::fig3_dataset();
        QueryEngine::with_workers(Arc::new(SortedColumns::build(&ds)), workers)
    }

    fn batch() -> Vec<BatchQuery> {
        vec![
            BatchQuery::KnMatch {
                query: vec![3.0, 7.0, 4.0],
                k: 2,
                n: 2,
            },
            BatchQuery::Frequent {
                query: vec![3.0, 7.0, 4.0],
                k: 2,
                n0: 1,
                n1: 3,
            },
            BatchQuery::EpsMatch {
                query: vec![3.0, 7.0, 4.0],
                eps: 1.6,
                n: 2,
            },
            BatchQuery::KnMatch {
                query: vec![0.0, 0.0, 0.0],
                k: 1,
                n: 3,
            },
        ]
    }

    #[test]
    fn parallel_equals_sequential_wrappers() {
        let mut cols = SortedColumns::build(&crate::paper::fig3_dataset());
        for workers in [1, 2, 4, 9] {
            let results = engine(workers).run(&batch());
            let (want, ws) = k_n_match_ad(&mut cols, &[3.0, 7.0, 4.0], 2, 2).unwrap();
            let (got, gs) = match results[0].as_ref().unwrap() {
                (BatchAnswer::KnMatch(r), s) => (r, s),
                other => panic!("wrong variant: {other:?}"),
            };
            assert_eq!((got, gs), (&want, &ws));
            let (want, ws) = frequent_k_n_match_ad(&mut cols, &[3.0, 7.0, 4.0], 2, 1, 3).unwrap();
            let (got, gs) = match results[1].as_ref().unwrap() {
                (BatchAnswer::Frequent(r), s) => (r, s),
                other => panic!("wrong variant: {other:?}"),
            };
            assert_eq!((got, gs), (&want, &ws));
        }
    }

    #[test]
    fn invalid_queries_fail_individually() {
        let e = engine(2);
        let mut queries = batch();
        queries.push(BatchQuery::KnMatch {
            query: vec![1.0],
            k: 1,
            n: 1,
        });
        queries.push(BatchQuery::EpsMatch {
            query: vec![0.0; 3],
            eps: -1.0,
            n: 1,
        });
        let results = e.run(&queries);
        assert!(results[..4].iter().all(Result::is_ok));
        assert!(matches!(
            results[4],
            Err(KnMatchError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            results[5],
            Err(KnMatchError::InvalidEpsilon { .. })
        ));
    }

    #[test]
    fn zero_deadline_fails_each_query_not_the_batch() {
        let e = engine(2);
        let opts = BatchOptions {
            deadline: Some(Duration::ZERO),
            ..BatchOptions::default()
        };
        let results = e.run_with(&batch(), &opts);
        assert_eq!(results.len(), 4);
        for r in results {
            assert_eq!(r, Err(KnMatchError::DeadlineExceeded));
        }
    }

    #[test]
    fn generous_deadline_is_bit_identical_to_no_options() {
        let e = engine(3);
        let opts = BatchOptions {
            deadline: Some(Duration::from_secs(3600)),
            fail_fast: true,
            ..BatchOptions::default()
        };
        assert_eq!(e.run_with(&batch(), &opts), e.run(&batch()));
    }

    #[test]
    fn fail_fast_cancels_queries_after_a_failure() {
        // One worker: queries run in input order, so everything after the
        // invalid query deterministically sees the tripped cancel flag.
        let e = engine(1);
        let mut queries = batch();
        queries.insert(
            0,
            BatchQuery::KnMatch {
                query: vec![1.0],
                k: 1,
                n: 1,
            },
        );
        let results = e.run_with(
            &queries,
            &BatchOptions {
                fail_fast: true,
                ..BatchOptions::default()
            },
        );
        assert!(matches!(
            results[0],
            Err(KnMatchError::DimensionMismatch { .. })
        ));
        for r in &results[1..] {
            assert_eq!(*r, Err(KnMatchError::Cancelled));
        }
    }

    #[test]
    fn panics_are_isolated_to_an_error() {
        let out: Result<()> = isolate_panic(|| panic!("boom {}", 42));
        assert_eq!(
            out,
            Err(KnMatchError::Panicked {
                message: "boom 42".into()
            })
        );
        let out: Result<()> = isolate_panic(|| std::panic::panic_any(7u32));
        assert_eq!(
            out,
            Err(KnMatchError::Panicked {
                message: "non-string panic payload".into()
            })
        );
    }

    #[test]
    fn empty_batch_and_accessors() {
        let e = engine(3);
        assert!(e.run(&[]).is_empty());
        assert_eq!(e.workers(), 3);
        assert_eq!(e.columns().cardinality(), 5);
        assert!(QueryEngine::new(e.columns().clone()).workers() >= 1);
        assert_eq!(
            QueryEngine::with_workers(e.columns().clone(), 0).workers(),
            1
        );
    }
}
