//! Unrolled inner-loop kernels for the filter and scan hot paths.
//!
//! Almost everything here is plain safe `std` Rust written so LLVM's
//! autovectorizer reliably emits SIMD: fixed-width chunks
//! ([`slice::chunks_exact`]) whose bodies are branch-free straight-line
//! code over lanes the compiler can prove in-bounds. The lane width is the
//! only thing that varies per target — a `#[cfg(target_feature)]` constant
//! widens the unroll when AVX2 (32 bytes per vector) is compiled in, so a
//! `-C target-cpu=native` build gets wider stripes from the same source.
//!
//! The one exception is [`abs_diffs`] on x86-64, which also carries an
//! explicit AVX2 intrinsic path selected by *runtime* feature detection
//! (the ROADMAP notes the autovectorised loop only tied the unrolled one
//! on default builds, because without `-C target-cpu` the compiler may
//! not assume AVX2). `|x|` is computed by clearing the sign bit
//! (`andnot` with `-0.0`), which is bit-identical to [`f64::abs`] for
//! every input including NaN payloads and signed zeros, so the
//! `_scalar` oracle still applies verbatim.
//!
//! Two kernel families live here:
//!
//! - [`abs_diffs`]: per-dimension absolute differences `|p_i − q_i|` of one
//!   row against the query — the refine/scan inner loop;
//! - [`accumulate_band_hits`]: branchless per-point counting of dimensions
//!   whose quantised cell falls inside a query band — the rewritten VA-file
//!   approximation filter (see `knmatch-vafile`), which replaces the
//!   per-point float bound sort with one byte compare per attribute.
//!
//! The `_scalar` twins are the straightforward loops the kernels replaced;
//! they stay as correctness oracles for the unit tests and as the baseline
//! the `planner_crossover` bench measures speedups against.

use crate::topk::TopK;
use crate::{MatchEntry, PointId};

/// Unroll width (in `u8` cells) of the band-count kernel. One AVX2 vector
/// holds 32 bytes; without AVX2 compiled in, 8 keeps the scalar pipeline
/// full without bloating the remainder loop.
#[cfg(target_feature = "avx2")]
const BYTE_LANES: usize = 16;
/// Unroll width (in `u8` cells) of the band-count kernel.
#[cfg(not(target_feature = "avx2"))]
const BYTE_LANES: usize = 8;

/// Unroll width (in `f64` values) of the difference kernels.
const F64_LANES: usize = 8;

/// Writes `out[i] = |row[i] - query[i]|`: an explicit AVX2 kernel where
/// the CPU has it (checked once per call via
/// [`is_x86_feature_detected!`]), the 8-lane-unrolled portable loop
/// otherwise. Both produce bits identical to [`abs_diffs_scalar`].
///
/// # Panics
///
/// Panics when the three slices differ in length.
pub fn abs_diffs(out: &mut [f64], row: &[f64], query: &[f64]) {
    assert_eq!(row.len(), query.len(), "row/query length mismatch");
    assert_eq!(out.len(), row.len(), "out/row length mismatch");
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY-adjacent gate: the detection above proves the target
        // feature the callee was compiled with is present.
        x86::abs_diffs_avx2(out, row, query);
        return;
    }
    abs_diffs_unrolled(out, row, query);
}

/// The portable unrolled path of [`abs_diffs`] (and its non-x86 whole).
fn abs_diffs_unrolled(out: &mut [f64], row: &[f64], query: &[f64]) {
    let mut o = out.chunks_exact_mut(F64_LANES);
    let mut r = row.chunks_exact(F64_LANES);
    let mut q = query.chunks_exact(F64_LANES);
    for ((o, r), q) in (&mut o).zip(&mut r).zip(&mut q) {
        for j in 0..F64_LANES {
            o[j] = (r[j] - q[j]).abs();
        }
    }
    for ((o, r), q) in o
        .into_remainder()
        .iter_mut()
        .zip(r.remainder())
        .zip(q.remainder())
    {
        *o = (r - q).abs();
    }
}

/// The explicit AVX2 path of [`abs_diffs`]: 4 `f64` per vector,
/// unaligned loads (rows come from arbitrary slice offsets), absolute
/// value as a sign-bit clear. Intrinsics are inherently `unsafe` to
/// call, so this is the one `#[allow(unsafe_code)]` module in the
/// crate; the safe entry point encapsulates the feature-gate contract.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86 {
    #[allow(clippy::wildcard_imports)]
    use std::arch::x86_64::*;

    /// Safe wrapper: the caller must only reach this behind a true
    /// `is_x86_feature_detected!("avx2")` (checked in [`super::abs_diffs`]).
    pub(super) fn abs_diffs_avx2(out: &mut [f64], row: &[f64], query: &[f64]) {
        debug_assert_eq!(row.len(), query.len());
        debug_assert_eq!(out.len(), row.len());
        // SAFETY: lengths are asserted equal by the public caller, and
        // the dispatch site verified AVX2 is present at runtime.
        unsafe { abs_diffs_avx2_inner(out, row, query) }
    }

    /// # Safety
    ///
    /// Requires AVX2 at runtime and `out`, `row`, `query` of equal
    /// length.
    #[target_feature(enable = "avx2")]
    unsafe fn abs_diffs_avx2_inner(out: &mut [f64], row: &[f64], query: &[f64]) {
        let n = out.len();
        // |x| = clear the sign bit: andnot with -0.0 keeps NaN payloads
        // and maps -0.0 to +0.0, exactly like `f64::abs`.
        let sign = _mm256_set1_pd(-0.0);
        let mut i = 0;
        while i + 4 <= n {
            let r = _mm256_loadu_pd(row.as_ptr().add(i));
            let q = _mm256_loadu_pd(query.as_ptr().add(i));
            let d = _mm256_sub_pd(r, q);
            _mm256_storeu_pd(out.as_mut_ptr().add(i), _mm256_andnot_pd(sign, d));
            i += 4;
        }
        while i < n {
            *out.get_unchecked_mut(i) = (*row.get_unchecked(i) - *query.get_unchecked(i)).abs();
            i += 1;
        }
    }
}

/// The plain indexed loop [`abs_diffs`] replaced (test oracle and bench
/// baseline).
///
/// # Panics
///
/// Panics when the three slices differ in length.
pub fn abs_diffs_scalar(out: &mut [f64], row: &[f64], query: &[f64]) {
    assert_eq!(row.len(), query.len(), "row/query length mismatch");
    assert_eq!(out.len(), row.len(), "out/row length mismatch");
    for i in 0..row.len() {
        out[i] = (row[i] - query[i]).abs();
    }
}

/// For every point `i`, adds 1 to `counts[i]` when `cells[i]` lies in the
/// inclusive band `[lo, hi]` — one dimension's worth of the rewritten
/// VA-file filter, branch-free: in-band cells map to `[0, hi - lo]` under
/// a wrapping subtraction, so the test is a single unsigned compare per
/// byte and the whole loop vectorises to compare-and-subtract-mask.
///
/// `cells` is one dim-major column of quantised cell indices; callers
/// accumulate over dimensions and then threshold the counts (a point whose
/// count reaches `n` has an n-match-difference lower bound within the
/// query's threshold).
///
/// # Panics
///
/// Panics when `counts` and `cells` differ in length.
pub fn accumulate_band_hits(counts: &mut [u16], cells: &[u8], lo: u8, hi: u8) {
    assert_eq!(counts.len(), cells.len(), "counts/cells length mismatch");
    if lo > hi {
        return;
    }
    let span = hi - lo;
    let mut cs = counts.chunks_exact_mut(BYTE_LANES);
    let mut ks = cells.chunks_exact(BYTE_LANES);
    for (cs, ks) in (&mut cs).zip(&mut ks) {
        for j in 0..BYTE_LANES {
            cs[j] += u16::from(ks[j].wrapping_sub(lo) <= span);
        }
    }
    for (c, k) in cs.into_remainder().iter_mut().zip(ks.remainder()) {
        *c += u16::from(k.wrapping_sub(lo) <= span);
    }
}

/// The branchy per-cell loop [`accumulate_band_hits`] replaced (test
/// oracle and bench baseline).
///
/// # Panics
///
/// Panics when `counts` and `cells` differ in length.
pub fn accumulate_band_hits_scalar(counts: &mut [u16], cells: &[u8], lo: u8, hi: u8) {
    assert_eq!(counts.len(), cells.len(), "counts/cells length mismatch");
    for (c, &k) in counts.iter_mut().zip(cells) {
        if k >= lo && k <= hi {
            *c += 1;
        }
    }
}

/// The n-th smallest value of `buf` (1-based `n`), by in-place selection
/// under the canonical [`f64::total_cmp`] order. `buf` is reordered.
///
/// # Panics
///
/// Panics when `n` is 0 or exceeds `buf.len()`.
pub fn nth_smallest(buf: &mut [f64], n: usize) -> f64 {
    assert!(n >= 1 && n <= buf.len(), "n out of range");
    *buf.select_nth_unstable_by(n - 1, f64::total_cmp).1
}

/// Sorts `entries` into the canonical `(diff, pid)` answer order shared by
/// every exact backend (ascending difference, ties by ascending point id —
/// the PR-3 tie-break that makes answers a pure function of the data).
pub fn sort_canonical(entries: &mut [MatchEntry]) {
    entries.sort_unstable_by(|a, b| a.diff.total_cmp(&b.diff).then(a.pid.cmp(&b.pid)));
}

/// Offers `(pid, diff)` pairs into a fresh canonical top-`k` collector —
/// convenience for filter backends that rank a candidate list.
pub fn top_k_of(pairs: impl IntoIterator<Item = (PointId, f64)>, k: usize) -> TopK {
    let mut top = TopK::new(k);
    for (pid, diff) in pairs {
        top.offer(pid, diff);
    }
    top
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(seed: u64, len: usize) -> Vec<f64> {
        let mut s = seed | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn abs_diffs_matches_scalar_at_every_length() {
        for len in [0usize, 1, 5, 8, 9, 16, 31, 64, 100] {
            let row = pseudo(3, len);
            let q = pseudo(7, len);
            let mut a = vec![0.0; len];
            let mut b = vec![0.0; len];
            abs_diffs(&mut a, &row, &q);
            abs_diffs_scalar(&mut b, &row, &q);
            assert_eq!(a, b, "len={len}");
        }
    }

    #[test]
    fn abs_diffs_bit_identical_on_special_values() {
        // The AVX2 path computes |x| as a sign-bit clear; it must agree
        // with `f64::abs` bit-for-bit on every special value, padded out
        // so the vector body (not just the remainder loop) sees them.
        let specials = [
            0.0,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            -f64::NAN,
            f64::MIN_POSITIVE,
            -f64::MIN_POSITIVE,
            f64::MAX,
            f64::MIN,
            1.0,
            -1.0,
        ];
        let mut row = Vec::new();
        let mut q = Vec::new();
        for &a in &specials {
            for &b in &specials {
                row.push(a);
                q.push(b);
            }
        }
        let mut fast = vec![0.0; row.len()];
        let mut oracle = vec![0.0; row.len()];
        abs_diffs(&mut fast, &row, &q);
        abs_diffs_scalar(&mut oracle, &row, &q);
        for i in 0..row.len() {
            assert_eq!(
                fast[i].to_bits(),
                oracle[i].to_bits(),
                "slot {i}: |{} - {}|",
                row[i],
                q[i]
            );
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_and_unrolled_paths_agree_when_detected() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        for len in [0usize, 1, 3, 4, 5, 8, 31, 100] {
            let row = pseudo(11, len);
            let q = pseudo(23, len);
            let mut a = vec![0.0; len];
            let mut b = vec![0.0; len];
            super::x86::abs_diffs_avx2(&mut a, &row, &q);
            abs_diffs_unrolled(&mut b, &row, &q);
            assert_eq!(a, b, "len={len}");
        }
    }

    #[test]
    fn band_hits_match_scalar_at_every_length_and_band() {
        for len in [0usize, 1, 7, 8, 9, 40, 65] {
            let cells: Vec<u8> = (0..len).map(|i| ((i * 37 + 11) % 256) as u8).collect();
            for (lo, hi) in [(0u8, 255u8), (10, 10), (200, 100), (0, 0), (100, 180)] {
                let mut a = vec![0u16; len];
                let mut b = vec![0u16; len];
                accumulate_band_hits(&mut a, &cells, lo, hi);
                accumulate_band_hits_scalar(&mut b, &cells, lo, hi);
                assert_eq!(a, b, "len={len} band=({lo},{hi})");
            }
        }
    }

    #[test]
    fn band_hits_accumulate_across_calls() {
        let cells = vec![5u8, 100, 200];
        let mut counts = vec![0u16; 3];
        accumulate_band_hits(&mut counts, &cells, 0, 255);
        accumulate_band_hits(&mut counts, &cells, 0, 99);
        assert_eq!(counts, vec![2, 1, 1]);
    }

    #[test]
    fn nth_smallest_matches_full_sort() {
        let vals = pseudo(42, 33);
        for n in [1usize, 2, 17, 33] {
            let mut a = vals.clone();
            let got = nth_smallest(&mut a, n);
            let mut b = vals.clone();
            b.sort_unstable_by(f64::total_cmp);
            assert_eq!(got, b[n - 1], "n={n}");
        }
    }

    #[test]
    fn canonical_sort_breaks_ties_by_pid() {
        let mut e = vec![
            MatchEntry { pid: 9, diff: 1.0 },
            MatchEntry { pid: 2, diff: 1.0 },
            MatchEntry { pid: 4, diff: 0.5 },
        ];
        sort_canonical(&mut e);
        assert_eq!(e.iter().map(|x| x.pid).collect::<Vec<_>>(), vec![4, 2, 9]);
    }

    #[test]
    fn top_k_of_is_canonical() {
        let top = top_k_of([(3u32, 1.0), (1, 1.0), (2, 0.5)], 2);
        let got: Vec<_> = top.into_sorted().into_iter().map(|(p, _)| p).collect();
        assert_eq!(got, vec![2, 1]);
    }
}
