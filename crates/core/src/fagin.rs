//! Fagin's FA and the Threshold Algorithm for **monotone** aggregation
//! over sorted lists — the middleware algorithms (PODS'96 / PODS'01, the
//! paper's references \[11\] and \[13\]) that the paper proves *inapplicable*
//! to the k-n-match problem.
//!
//! Section 3: "the algorithm proposed in \[11\] … does not apply to our
//! problem. They require the aggregation function to be monotone, but the
//! aggregation function used in k-n-match (that is, n-match difference) is
//! not monotone." This module implements the real thing for functions that
//! *are* monotone (min / max / weighted sum of per-dimension differences
//! would not be — FA's classical setting aggregates *scores*, larger =
//! better), and the tests reproduce the paper's Figure 3 counterexample:
//! running a sorted-row FA-style scan with the n-match difference returns
//! the wrong answer, while the AD algorithm returns the right one.
//!
//! Model: dimension `i` ranks all objects by descending grade
//! `x_i ∈ [0, 1]`; a monotone function `t(x_1, …, x_d)` aggregates them;
//! the query asks for the top-k objects by `t`.

use std::collections::{HashMap, HashSet};

use crate::error::{KnMatchError, Result};
use crate::point::{Dataset, PointId};
use crate::topk::TopK;

/// A monotone aggregation function over per-dimension grades.
pub trait MonotoneAggregate {
    /// Combines one object's grades (monotone non-decreasing in each).
    fn combine(&self, grades: &[f64]) -> f64;

    /// Display name.
    fn name(&self) -> &'static str;
}

/// `min` of the grades (Fagin's canonical example).
#[derive(Debug, Clone, Copy, Default)]
pub struct MinAggregate;

impl MonotoneAggregate for MinAggregate {
    fn combine(&self, grades: &[f64]) -> f64 {
        grades.iter().copied().fold(f64::INFINITY, f64::min)
    }
    fn name(&self) -> &'static str {
        "min"
    }
}

/// Weighted sum of the grades.
#[derive(Debug, Clone)]
pub struct WeightedSum {
    /// Non-negative per-dimension weights.
    pub weights: Vec<f64>,
}

impl MonotoneAggregate for WeightedSum {
    fn combine(&self, grades: &[f64]) -> f64 {
        grades.iter().zip(&self.weights).map(|(g, w)| g * w).sum()
    }
    fn name(&self) -> &'static str {
        "weighted-sum"
    }
}

/// Cost counters for a middleware run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MiddlewareStats {
    /// Sorted accesses performed.
    pub sorted_accesses: u64,
    /// Random accesses (grade lookups for an already-seen object).
    pub random_accesses: u64,
}

/// Grades organised for middleware queries: per dimension, objects sorted
/// by **descending** grade.
#[derive(Debug, Clone)]
pub struct GradedLists {
    dims: usize,
    /// `lists[i]` = (pid, grade) sorted by grade descending.
    lists: Vec<Vec<(PointId, f64)>>,
    /// Row-major grades for random access.
    grades: Dataset,
}

impl GradedLists {
    /// Builds the descending-sorted lists from a grade table.
    pub fn build(grades: &Dataset) -> Self {
        let dims = grades.dims();
        let mut lists = Vec::with_capacity(dims);
        for dim in 0..dims {
            let mut l: Vec<(PointId, f64)> = grades.iter().map(|(pid, p)| (pid, p[dim])).collect();
            l.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            lists.push(l);
        }
        GradedLists {
            dims,
            lists,
            grades: grades.clone(),
        }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.grades.len()
    }

    /// Whether there are no objects.
    pub fn is_empty(&self) -> bool {
        self.grades.is_empty()
    }

    /// Dimensionality (number of "systems").
    pub fn dims(&self) -> usize {
        self.dims
    }

    fn validate_k(&self, k: usize) -> Result<()> {
        if self.is_empty() {
            return Err(KnMatchError::EmptyDataset);
        }
        if k == 0 || k > self.len() {
            return Err(KnMatchError::InvalidK {
                k,
                cardinality: self.len(),
            });
        }
        Ok(())
    }

    /// **FA** (Fagin's Algorithm): sorted-access all lists in parallel until
    /// `k` objects have been seen in *every* list; random-access the grades
    /// of everything seen; return the top k by `t`. Correct for any
    /// monotone `t`.
    ///
    /// # Errors
    ///
    /// Rejects `k` outside `1..=len` and empty inputs.
    pub fn fa<T: MonotoneAggregate>(
        &self,
        t: &T,
        k: usize,
    ) -> Result<(Vec<(PointId, f64)>, MiddlewareStats)> {
        self.validate_k(k)?;
        let mut stats = MiddlewareStats::default();
        let mut seen_count: HashMap<PointId, usize> = HashMap::new();
        let mut seen: HashSet<PointId> = HashSet::new();
        let mut fully_seen = 0usize;
        let mut depth = 0usize;
        while fully_seen < k && depth < self.len() {
            for list in &self.lists {
                let (pid, _) = list[depth];
                stats.sorted_accesses += 1;
                seen.insert(pid);
                let c = seen_count.entry(pid).or_insert(0);
                *c += 1;
                if *c == self.dims {
                    fully_seen += 1;
                }
            }
            depth += 1;
        }
        // Random-access every seen object's full grade vector.
        let mut top = TopK::new(k);
        for &pid in &seen {
            stats.random_accesses += self.dims as u64;
            let score = t.combine(self.grades.point(pid));
            // TopK keeps smallest; we want largest score → negate.
            top.offer(pid, -score);
        }
        let out = top
            .into_sorted()
            .into_iter()
            .map(|(pid, s)| (pid, -s))
            .collect();
        Ok((out, stats))
    }

    /// **TA** (the Threshold Algorithm): sorted-access all lists in
    /// parallel, random-access each newly seen object immediately, and stop
    /// as soon as `k` objects score at least the threshold
    /// `t(x̄_1, …, x̄_d)` of the current sorted-access frontier. Instance
    /// optimal for monotone `t`.
    ///
    /// # Errors
    ///
    /// Rejects `k` outside `1..=len` and empty inputs.
    pub fn ta<T: MonotoneAggregate>(
        &self,
        t: &T,
        k: usize,
    ) -> Result<(Vec<(PointId, f64)>, MiddlewareStats)> {
        self.validate_k(k)?;
        let mut stats = MiddlewareStats::default();
        let mut seen: HashSet<PointId> = HashSet::new();
        let mut top = TopK::new(k);
        let mut frontier = vec![1.0f64; self.dims];
        for depth in 0..self.len() {
            for (dim, list) in self.lists.iter().enumerate() {
                let (pid, grade) = list[depth];
                stats.sorted_accesses += 1;
                frontier[dim] = grade;
                if seen.insert(pid) {
                    stats.random_accesses += self.dims as u64;
                    top.offer(pid, -t.combine(self.grades.point(pid)));
                }
            }
            let threshold = t.combine(&frontier);
            if let Some(worst) = top.threshold() {
                if -worst >= threshold {
                    break; // k objects at or above anything unseen can score
                }
            }
        }
        let out = top
            .into_sorted()
            .into_iter()
            .map(|(pid, s)| (pid, -s))
            .collect();
        Ok((out, stats))
    }

    /// The **misapplication** the paper warns about: treat the k-n-match
    /// problem as middleware by sorted-accessing rows in *value* order and
    /// stopping FA-style once an object has been seen in every list, then
    /// scoring seen objects by n-match difference. Returns whatever that
    /// procedure finds — which the tests show to be wrong, because the
    /// n-match difference is not monotone in the values.
    pub fn fa_misapplied_nmatch(&self, query: &[f64], n: usize) -> Option<PointId> {
        // Sort each dimension ascending by value (the natural but wrong
        // order) and do FA's parallel row scan until one object is fully
        // seen.
        let mut lists: Vec<Vec<(PointId, f64)>> = self.lists.clone();
        for l in &mut lists {
            l.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        }
        let mut count: HashMap<PointId, usize> = HashMap::new();
        let mut candidates: Vec<PointId> = Vec::new();
        'outer: for depth in 0..self.len() {
            for l in &lists {
                let (pid, _) = l[depth];
                let c = count.entry(pid).or_insert(0);
                *c += 1;
                if *c == self.dims {
                    candidates = count.keys().copied().collect();
                    break 'outer;
                }
            }
        }
        candidates.into_iter().min_by(|&a, &b| {
            let da = crate::nmatch_difference(self.grades.point(a), query, n);
            let db = crate::nmatch_difference(self.grades.point(b), query, n);
            da.total_cmp(&db).then(a.cmp(&b))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grades() -> Dataset {
        Dataset::from_rows(&[
            vec![0.9, 0.3, 0.5],
            vec![0.8, 0.9, 0.7],
            vec![0.1, 0.8, 0.9],
            vec![0.5, 0.5, 0.4],
        ])
        .unwrap()
    }

    fn brute_top<T: MonotoneAggregate>(ds: &Dataset, t: &T, k: usize) -> Vec<PointId> {
        let mut v: Vec<(PointId, f64)> = ds.iter().map(|(pid, p)| (pid, t.combine(p))).collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v.into_iter().map(|(pid, _)| pid).collect()
    }

    #[test]
    fn fa_min_matches_bruteforce() {
        let ds = grades();
        let lists = GradedLists::build(&ds);
        for k in 1..=4 {
            let (got, stats) = lists.fa(&MinAggregate, k).unwrap();
            let ids: Vec<PointId> = got.iter().map(|&(pid, _)| pid).collect();
            assert_eq!(ids, brute_top(&ds, &MinAggregate, k), "k={k}");
            assert!(stats.sorted_accesses > 0);
        }
    }

    #[test]
    fn ta_weighted_sum_matches_bruteforce() {
        let ds = grades();
        let lists = GradedLists::build(&ds);
        let t = WeightedSum {
            weights: vec![1.0, 2.0, 0.5],
        };
        for k in 1..=4 {
            let (got, _) = lists.ta(&t, k).unwrap();
            let ids: Vec<PointId> = got.iter().map(|&(pid, _)| pid).collect();
            assert_eq!(ids, brute_top(&ds, &t, k), "k={k}");
        }
    }

    #[test]
    fn ta_stops_no_later_than_fa() {
        let ds = grades();
        let lists = GradedLists::build(&ds);
        let (_, fa) = lists.fa(&MinAggregate, 1).unwrap();
        let (_, ta) = lists.ta(&MinAggregate, 1).unwrap();
        assert!(ta.sorted_accesses <= fa.sorted_accesses);
    }

    #[test]
    fn paper_fig3_fa_misapplication_returns_wrong_answer() {
        // The paper, Section 3: "If we use the FA algorithm here, we get
        // point 1, which is a wrong answer (the correct answer is point 2)."
        let ds = crate::paper::fig3_dataset();
        let q = crate::paper::fig3_query();
        let lists = GradedLists::build(&ds);
        let fa_answer = lists.fa_misapplied_nmatch(&q, 1).expect("non-empty");
        assert_eq!(
            fa_answer, 0,
            "FA's row scan fully sees point 1 (0-based 0) first"
        );
        // Whereas the AD algorithm returns the correct 1-match: point 2.
        let mut cols = crate::SortedColumns::build(&ds);
        let (correct, _) = crate::k_n_match_ad(&mut cols, &q, 1, 1).unwrap();
        assert_eq!(correct.ids(), vec![1]);
        assert_ne!(
            fa_answer,
            correct.ids()[0],
            "the paper's inapplicability claim"
        );
    }

    #[test]
    fn validation() {
        let ds = grades();
        let lists = GradedLists::build(&ds);
        assert!(lists.fa(&MinAggregate, 0).is_err());
        assert!(lists.fa(&MinAggregate, 5).is_err());
        assert!(lists.ta(&MinAggregate, 99).is_err());
    }

    #[test]
    fn single_object() {
        let ds = Dataset::from_rows(&[vec![0.4, 0.6]]).unwrap();
        let lists = GradedLists::build(&ds);
        let (got, _) = lists.ta(&MinAggregate, 1).unwrap();
        assert_eq!(got[0].0, 0);
        assert!((got[0].1 - 0.4).abs() < 1e-12);
    }
}
