//! The sorted-access data model the AD algorithm runs against.
//!
//! Section 3 of the paper assumes the attributes of each dimension are
//! sorted and that an algorithm pays one unit of cost per individual
//! attribute retrieved. This matches information retrieval from multiple
//! systems (Fagin's model): each "system" ranks all objects by one score
//! (here: one dimension), and a query performs sorted accesses against each
//! system. It also matches the disk cost model, where page accesses are
//! proportional to attributes retrieved.
//!
//! [`SortedAccessSource`] abstracts that model so the same AD engine drives
//! the in-memory sorted columns ([`crate::SortedColumns`]), the disk-resident
//! layout in `knmatch-storage`, and simulated remote systems.

use crate::point::PointId;

/// One sorted access: the attribute value and the id of the point it
/// belongs to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SortedEntry {
    /// Owning point.
    pub pid: PointId,
    /// Attribute value in the accessed dimension.
    pub value: f64,
}

impl SortedEntry {
    /// The canonical column order: ascending `(value, pid)` with
    /// [`f64::total_cmp`] on the value. Every per-dimension sort and
    /// ordered insert in the workspace uses this explicit key, so a layout
    /// change (or an unstable sort) can never perturb the tie order
    /// between equal values.
    pub fn cmp_value_pid(a: &SortedEntry, b: &SortedEntry) -> std::cmp::Ordering {
        a.value.total_cmp(&b.value).then(a.pid.cmp(&b.pid))
    }
}

/// A database organised as `d` sorted lists of `(value, point id)` pairs,
/// one per dimension, supporting positional (rank-based) sorted access.
///
/// `locate` is the binary-search probe the AD algorithm issues once per
/// dimension; `entry` is the per-attribute sorted access whose count the
/// paper's optimality theorem bounds. Implementations may count I/O or
/// network cost internally; the AD engine counts retrieved attributes
/// itself.
pub trait SortedAccessSource {
    /// Dimensionality `d`.
    fn dims(&self) -> usize;

    /// Cardinality `c` (every dimension lists every point exactly once).
    fn cardinality(&self) -> usize;

    /// Rank of the first entry in `dim` whose value is `>= q`
    /// (`0..=cardinality`). This is the seed position for the two
    /// directional cursors.
    fn locate(&mut self, dim: usize, q: f64) -> usize;

    /// The entry at `rank` (0-based, ascending by value) in `dim`.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `rank >= cardinality` or
    /// `dim >= dims`.
    fn entry(&mut self, dim: usize, rank: usize) -> SortedEntry;
}

impl<S: SortedAccessSource + ?Sized> SortedAccessSource for &mut S {
    fn dims(&self) -> usize {
        (**self).dims()
    }
    fn cardinality(&self) -> usize {
        (**self).cardinality()
    }
    fn locate(&mut self, dim: usize, q: f64) -> usize {
        (**self).locate(dim, q)
    }
    fn entry(&mut self, dim: usize, rank: usize) -> SortedEntry {
        (**self).entry(dim, rank)
    }
}
