//! The in-memory dataset: a dense, row-major collection of d-dimensional
//! points addressed by [`PointId`].
//!
//! The paper treats "object" and "point" interchangeably; a database is a set
//! of d-dimensional points (Section 2). Coordinates must be finite so that
//! per-dimension differences `|p_i - q_i|` totally order.

use crate::error::{KnMatchError, Result};

/// Identifier of a point inside a [`Dataset`]: its insertion index.
pub type PointId = u32;

/// A dense, row-major set of d-dimensional points with finite coordinates.
///
/// Construction validates every coordinate once so query code can use plain
/// `f64` comparisons without NaN hazards.
///
/// # Examples
///
/// ```
/// use knmatch_core::Dataset;
///
/// let ds = Dataset::from_rows(&[vec![0.0, 1.0], vec![0.5, 0.25]]).unwrap();
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.dims(), 2);
/// assert_eq!(ds.point(1), &[0.5, 0.25]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    dims: usize,
    data: Vec<f64>,
}

impl Dataset {
    /// Creates an empty dataset of the given dimensionality.
    ///
    /// # Errors
    ///
    /// Returns [`KnMatchError::ZeroDimensions`] when `dims == 0`.
    pub fn new(dims: usize) -> Result<Self> {
        if dims == 0 {
            return Err(KnMatchError::ZeroDimensions);
        }
        Ok(Dataset {
            dims,
            data: Vec::new(),
        })
    }

    /// Creates an empty dataset with room for `capacity` points.
    ///
    /// # Errors
    ///
    /// Returns [`KnMatchError::ZeroDimensions`] when `dims == 0`.
    pub fn with_capacity(dims: usize, capacity: usize) -> Result<Self> {
        let mut ds = Self::new(dims)?;
        ds.data.reserve(capacity.saturating_mul(dims));
        Ok(ds)
    }

    /// Builds a dataset from row slices, validating shape and finiteness.
    ///
    /// # Errors
    ///
    /// - [`KnMatchError::EmptyDataset`] when `rows` is empty;
    /// - [`KnMatchError::DimensionMismatch`] when a row's length differs from
    ///   the first row's;
    /// - [`KnMatchError::NonFiniteValue`] on NaN/infinite coordinates.
    pub fn from_rows<R: AsRef<[f64]>>(rows: &[R]) -> Result<Self> {
        let first = rows.first().ok_or(KnMatchError::EmptyDataset)?;
        let mut ds = Self::with_capacity(first.as_ref().len(), rows.len())?;
        for row in rows {
            ds.push(row.as_ref())?;
        }
        Ok(ds)
    }

    /// Appends a point and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`KnMatchError::DimensionMismatch`] on a wrong-length row and
    /// [`KnMatchError::NonFiniteValue`] on NaN/infinite coordinates.
    pub fn push(&mut self, point: &[f64]) -> Result<PointId> {
        if point.len() != self.dims {
            return Err(KnMatchError::DimensionMismatch {
                expected: self.dims,
                actual: point.len(),
            });
        }
        validate_finite(point)?;
        let pid = self.len() as PointId;
        self.data.extend_from_slice(point);
        Ok(pid)
    }

    /// Number of points stored (the paper's cardinality `c`).
    pub fn len(&self) -> usize {
        self.data.len() / self.dims
    }

    /// Whether the dataset holds no points.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimensionality `d` of the data space.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Coordinates of point `pid`.
    ///
    /// # Panics
    ///
    /// Panics when `pid` is out of range.
    pub fn point(&self, pid: PointId) -> &[f64] {
        let i = pid as usize * self.dims;
        &self.data[i..i + self.dims]
    }

    /// Coordinate of point `pid` in dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics when `pid` or `dim` is out of range.
    pub fn coord(&self, pid: PointId, dim: usize) -> f64 {
        assert!(dim < self.dims, "dimension {dim} out of range");
        self.data[pid as usize * self.dims + dim]
    }

    /// Iterates `(pid, coordinates)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (PointId, &[f64])> {
        self.data
            .chunks_exact(self.dims)
            .enumerate()
            .map(|(i, row)| (i as PointId, row))
    }

    /// The raw row-major coordinate buffer.
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// Validates a query point against this dataset (shape + finiteness).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Dataset::push`].
    pub fn validate_query(&self, query: &[f64]) -> Result<()> {
        if query.len() != self.dims {
            return Err(KnMatchError::DimensionMismatch {
                expected: self.dims,
                actual: query.len(),
            });
        }
        validate_finite(query)
    }
}

/// Checks every coordinate is finite.
pub(crate) fn validate_finite(point: &[f64]) -> Result<()> {
    for (dim, v) in point.iter().enumerate() {
        if !v.is_finite() {
            return Err(KnMatchError::NonFiniteValue { dim });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_roundtrip() {
        let ds = Dataset::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(ds.dims(), 3);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.point(0), &[1.0, 2.0, 3.0]);
        assert_eq!(ds.point(1), &[4.0, 5.0, 6.0]);
        assert_eq!(ds.coord(1, 2), 6.0);
        assert!(!ds.is_empty());
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let ds = Dataset::from_rows(&[[0.0], [1.0], [2.0]]).unwrap();
        let ids: Vec<PointId> = ds.iter().map(|(pid, _)| pid).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        let vals: Vec<f64> = ds.iter().map(|(_, p)| p[0]).collect();
        assert_eq!(vals, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn rejects_empty_and_zero_dims() {
        let rows: Vec<Vec<f64>> = vec![];
        assert_eq!(
            Dataset::from_rows(&rows).unwrap_err(),
            KnMatchError::EmptyDataset
        );
        assert_eq!(Dataset::new(0).unwrap_err(), KnMatchError::ZeroDimensions);
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = Dataset::from_rows(&[vec![1.0, 2.0], vec![3.0]]).unwrap_err();
        assert_eq!(
            err,
            KnMatchError::DimensionMismatch {
                expected: 2,
                actual: 1
            }
        );
    }

    #[test]
    fn rejects_non_finite() {
        let err = Dataset::from_rows(&[vec![1.0, f64::NAN]]).unwrap_err();
        assert_eq!(err, KnMatchError::NonFiniteValue { dim: 1 });
        let err = Dataset::from_rows(&[vec![f64::INFINITY, 0.0]]).unwrap_err();
        assert_eq!(err, KnMatchError::NonFiniteValue { dim: 0 });
    }

    #[test]
    fn validate_query_checks_shape_and_values() {
        let ds = Dataset::from_rows(&[[0.0, 0.0]]).unwrap();
        assert!(ds.validate_query(&[0.1, 0.2]).is_ok());
        assert!(matches!(
            ds.validate_query(&[0.1]),
            Err(KnMatchError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            ds.validate_query(&[0.1, f64::NAN]),
            Err(KnMatchError::NonFiniteValue { dim: 1 })
        ));
    }

    #[test]
    fn push_assigns_sequential_ids() {
        let mut ds = Dataset::new(1).unwrap();
        assert_eq!(ds.push(&[1.0]).unwrap(), 0);
        assert_eq!(ds.push(&[2.0]).unwrap(), 1);
        assert_eq!(ds.as_flat(), &[1.0, 2.0]);
    }
}
