//! The paper's worked examples as ready-made datasets, so tests, examples
//! and the reproduction harness all reference one canonical copy.
//!
//! Point ids in the paper are 1-based; [`Dataset`] ids are 0-based, so
//! "paper point 3" is id 2 here.

use crate::point::Dataset;

/// Figure 1: the 10-dimensional, 4-object motivating database. The query
/// `(1, 1, …, 1)` has Euclidean NN = object 4 (all 20s), yet objects 1–3
/// match it in 9 of 10 dimensions.
pub fn fig1_dataset() -> Dataset {
    Dataset::from_rows(&[
        vec![1.1, 100.0, 1.2, 1.6, 1.6, 1.1, 1.2, 1.2, 1.0, 1.0],
        vec![1.4, 1.4, 1.4, 1.5, 100.0, 1.4, 1.2, 1.2, 1.0, 1.0],
        vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 2.0, 100.0, 2.0, 2.0],
        vec![20.0; 10],
    ])
    .expect("static data is well-formed")
}

/// The Figure 1 query point `(1, 1, …, 1)`.
pub fn fig1_query() -> Vec<f64> {
    vec![1.0; 10]
}

/// Figure 2: five 2-d points A–E (ids 0–4) around a query Q, with the
/// relationships the paper reads off the figure: A is the 1-match, B the
/// 2-match, `{A, D, E}` the 3-1-match, `{A, B}` the 2-2-match, and the
/// skyline of closeness to Q is `{A, B, C}`.
pub fn fig2_dataset() -> Dataset {
    Dataset::from_rows(&[
        vec![5.2, 8.5],   // A
        vec![6.2, 6.5],   // B
        vec![9.0, 5.9],   // C
        vec![5.6, 10.5],  // D
        vec![5.85, 11.0], // E
    ])
    .expect("static data is well-formed")
}

/// The Figure 2 query point Q.
pub fn fig2_query() -> Vec<f64> {
    vec![5.0, 5.0]
}

/// Figure 3: the 5-point, 3-dimensional example database used for the AD
/// running example (Figure 5) and the Fagin-monotonicity counterexample.
pub fn fig3_dataset() -> Dataset {
    Dataset::from_rows(&[
        vec![0.4, 1.0, 1.0],
        vec![2.8, 5.5, 2.0],
        vec![6.5, 7.8, 5.0],
        vec![9.0, 9.0, 9.0],
        vec![3.5, 1.5, 8.0],
    ])
    .expect("static data is well-formed")
}

/// The Figure 3/5 query point `(3.0, 7.0, 4.0)`.
pub fn fig3_query() -> Vec<f64> {
    vec![3.0, 7.0, 4.0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes() {
        assert_eq!(fig1_dataset().dims(), 10);
        assert_eq!(fig1_dataset().len(), 4);
        assert_eq!(fig2_dataset().dims(), 2);
        assert_eq!(fig2_dataset().len(), 5);
        assert_eq!(fig3_dataset().dims(), 3);
        assert_eq!(fig3_dataset().len(), 5);
        assert_eq!(fig1_query().len(), 10);
        assert_eq!(fig2_query().len(), 2);
        assert_eq!(fig3_query().len(), 3);
    }
}
