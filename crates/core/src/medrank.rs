//! MEDRANK — approximate nearest neighbour by median rank aggregation
//! (Fagin, Kumar & Sivakumar, SIGMOD'03; the paper's reference \[12\] and
//! Section 6 related work).
//!
//! Like the AD algorithm, MEDRANK walks two cursors per sorted dimension
//! outward from the query. Unlike AD it advances **by rank, not by
//! difference**: every round each dimension reveals its next-closest
//! point, and the first point seen in more than half the dimensions wins
//! (its *median rank* is minimal). This makes it a natural cousin of the
//! k-n-match with `n = ⌈(d+1)/2⌉` — but aggregating ranks instead of
//! differences, which is cheaper (no value comparisons across dimensions)
//! and only approximate with respect to any metric. The paper contrasts
//! its own exact-by-definition answers with MEDRANK's
//! approximation-factor guarantees; implementing both lets the evaluation
//! compare them head-to-head.

use crate::ad::{validate_params, AdStats};
use crate::error::Result;
use crate::result::{KnMatchResult, MatchEntry};
use crate::source::SortedAccessSource;

/// One MEDRANK answer: the point and the (outward) rank step at which it
/// reached the quorum — smaller is better.
pub type MedrankEntry = MatchEntry;

/// Returns the `k` best points by median rank: the order in which points
/// accumulate appearances in more than `quorum` of the `d` dimensions as
/// the per-dimension cursors move outward rank-by-rank.
///
/// `quorum` defaults to the majority `⌈(d+1)/2⌉` when `None` (Fagin's
/// MEDRANK); any `1..=d` is accepted, making the k-n-match connection
/// explicit: quorum = n over ranks instead of differences.
///
/// The returned entries carry the quorum round (as `diff`) for inspection;
/// entries are ordered by `(round, pid)`. The [`AdStats`] counts sorted
/// accesses like the AD algorithm's.
///
/// # Errors
///
/// Validates like [`crate::k_n_match_ad`] (the quorum plays `n`'s role).
pub fn medrank<S: SortedAccessSource>(
    src: &mut S,
    query: &[f64],
    k: usize,
    quorum: Option<usize>,
) -> Result<(KnMatchResult, AdStats)> {
    let d = src.dims();
    let c = src.cardinality();
    let quorum = quorum.unwrap_or(d / 2 + 1);
    validate_params(query, d, c, k, quorum, quorum)?;

    let mut stats = AdStats::default();
    // Cached frontier heads per dimension: the next unconsumed attribute
    // below / at-or-above the query, read once (a real implementation
    // would hold these in its cursor buffers).
    #[derive(Clone, Copy)]
    struct Head {
        diff: f64,
        pid: crate::PointId,
        rank: usize,
    }
    let mut down: Vec<Option<Head>> = Vec::with_capacity(d);
    let mut up: Vec<Option<Head>> = Vec::with_capacity(d);
    let read_head = |src: &mut S, stats: &mut AdStats, dim: usize, rank: usize| {
        let e = src.entry(dim, rank);
        stats.attributes_retrieved += 1;
        Head {
            diff: q_abs(e.value, query[dim]),
            pid: e.pid,
            rank,
        }
    };
    for (dim, &qv) in query.iter().enumerate() {
        let pos = src.locate(dim, qv);
        stats.locate_probes += 1;
        down.push(
            pos.checked_sub(1)
                .map(|r| read_head(src, &mut stats, dim, r)),
        );
        up.push((pos < c).then(|| read_head(src, &mut stats, dim, pos)));
    }

    let mut seen = vec![0u16; c];
    let mut entries: Vec<MedrankEntry> = Vec::with_capacity(k);
    let mut round = 0u64;
    while entries.len() < k {
        round += 1;
        let mut advanced = false;
        for dim in 0..d {
            // Each round every dimension reveals its next-closest point by
            // VALUE among the two frontier heads (one rank step outward).
            let take_down = match (down[dim], up[dim]) {
                (None, None) => continue,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(x), Some(y)) => x.diff <= y.diff,
            };
            advanced = true;
            let head = if take_down {
                let h = down[dim].expect("checked");
                down[dim] = h
                    .rank
                    .checked_sub(1)
                    .map(|r| read_head(src, &mut stats, dim, r));
                h
            } else {
                let h = up[dim].expect("checked");
                up[dim] = (h.rank + 1 < c).then(|| read_head(src, &mut stats, dim, h.rank + 1));
                h
            };
            stats.heap_pops += 1;
            let s = seen[head.pid as usize] + 1;
            seen[head.pid as usize] = s;
            if s as usize == quorum && entries.len() < k {
                entries.push(MedrankEntry {
                    pid: head.pid,
                    diff: round as f64,
                });
            }
        }
        if !advanced {
            break; // all lists exhausted (k > distinct quorum reachers)
        }
    }
    entries.sort_unstable_by(|a, b| a.diff.total_cmp(&b.diff).then(a.pid.cmp(&b.pid)));
    Ok((KnMatchResult { n: quorum, entries }, stats))
}

fn q_abs(v: f64, q: f64) -> f64 {
    (v - q).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columns::SortedColumns;

    fn fig3() -> SortedColumns {
        SortedColumns::build(&crate::paper::fig3_dataset())
    }

    #[test]
    fn exact_point_wins_round_one() {
        let mut cols = fig3();
        // Query exactly at point 2 (0-based 1): it is rank-closest in
        // every dimension, so it reaches any quorum in round 1.
        let (res, _) = medrank(&mut cols, &[2.8, 5.5, 2.0], 1, None).unwrap();
        assert_eq!(res.ids(), vec![1]);
        assert_eq!(res.entries[0].diff, 1.0);
    }

    #[test]
    fn majority_quorum_default() {
        let mut cols = fig3();
        let (res, _) = medrank(&mut cols, &[3.0, 7.0, 4.0], 2, None).unwrap();
        assert_eq!(res.n, 2); // d = 3 → quorum 2
        assert_eq!(res.entries.len(), 2);
        // MEDRANK's first answer here agrees with the 1-2-match winner
        // (point 2, 0-based 1): it is among the closest by rank in two
        // dimensions quickly.
        assert!(res.contains(1), "{:?}", res.ids());
    }

    #[test]
    fn full_quorum_requires_all_dimensions() {
        let mut cols = fig3();
        let (res, _) = medrank(&mut cols, &[3.0, 7.0, 4.0], 5, Some(3)).unwrap();
        assert_eq!(
            res.entries.len(),
            5,
            "every point eventually reaches quorum d"
        );
        // Rounds are non-decreasing in rank order.
        let rounds: Vec<f64> = res.diffs();
        assert!(rounds.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn medrank_is_rank_based_not_distance_based() {
        // Construct data where the rank winner differs from the Euclidean
        // NN: many decoys crowd one dimension.
        let rows = vec![
            vec![0.50, 0.90], // A: rank-close in x (crowded), far in y
            vec![0.58, 0.52], // B: Euclidean NN
            vec![0.49, 0.0],
            vec![0.51, 0.0],
            vec![0.505, 0.0],
            vec![0.495, 0.0],
        ];
        let ds = crate::Dataset::from_rows(&rows).unwrap();
        let mut cols = SortedColumns::build(&ds);
        let q = [0.5, 0.5];
        let nn = crate::k_nearest(&ds, &q, 1, &crate::Euclidean).unwrap();
        assert_eq!(nn[0].pid, 1);
        let (mr, _) = medrank(&mut cols, &q, 1, None).unwrap();
        // The x-crowd pushes B's x-rank far out; a crowd point reaches the
        // 2-quorum first even though B is metrically nearest.
        assert_ne!(
            mr.ids(),
            vec![1],
            "MEDRANK is an approximation: {:?}",
            mr.ids()
        );
    }

    #[test]
    fn stats_are_counted() {
        let mut cols = fig3();
        let (_, stats) = medrank(&mut cols, &[3.0, 7.0, 4.0], 1, None).unwrap();
        assert!(stats.attributes_retrieved > 0);
        assert_eq!(stats.locate_probes, 3);
        assert!(stats.heap_pops >= 2);
    }

    #[test]
    fn validation() {
        let mut cols = fig3();
        assert!(medrank(&mut cols, &[0.0; 2], 1, None).is_err());
        assert!(medrank(&mut cols, &[0.0; 3], 0, None).is_err());
        assert!(medrank(&mut cols, &[0.0; 3], 1, Some(4)).is_err());
        assert!(medrank(&mut cols, &[0.0; 3], 1, Some(0)).is_err());
    }

    #[test]
    fn k_equals_cardinality_terminates() {
        let mut cols = fig3();
        let (res, _) = medrank(&mut cols, &[3.0, 7.0, 4.0], 5, None).unwrap();
        assert_eq!(res.entries.len(), 5);
        let mut ids = res.ids();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }
}
