//! Mixed numeric/categorical attributes — the paper's footnote 1:
//! "a side effect of our work will be that we can have a uniform treatment
//! for both types of attributes in the future."
//!
//! The n-match difference already *is* that uniform treatment: per
//! dimension it needs only a difference, not a coordinate. This module
//! generalises the model to a per-dimension [`DimKind`]:
//!
//! * **numeric** — difference `w · |p_i − q_i|` (weight `w` defaults to 1);
//! * **categorical** — difference `0` on equal codes, `w` otherwise (the
//!   Hamming-style matching the paper's Section 2.1 compares against).
//!
//! The AD algorithm generalises too: each dimension only has to serve its
//! attributes in **ascending difference** order. Numeric dimensions do so
//! with the usual two directional cursors; a categorical dimension serves
//! its equal-code block (difference 0) and then everything else
//! (difference `w`). The merged walk, stopping rule and optimality
//! argument are unchanged.

use std::collections::BinaryHeap;

use crate::ad::AdStats;
use crate::error::{KnMatchError, Result};
use crate::point::{Dataset, PointId};
use crate::result::{rank_frequent, FrequentResult, KnMatchResult, MatchEntry};
use crate::source::SortedEntry;
use crate::topk::TopK;

/// Kind and weight of one dimension.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DimKind {
    /// A numeric attribute; difference `weight · |p − q|`.
    Numeric {
        /// Multiplier on the absolute difference (must be positive).
        weight: f64,
    },
    /// A categorical attribute (codes stored as `f64`); difference 0 when
    /// the codes are equal, `weight` otherwise.
    Categorical {
        /// The mismatch penalty (must be positive).
        weight: f64,
    },
}

impl DimKind {
    /// Unweighted numeric dimension.
    pub fn numeric() -> Self {
        DimKind::Numeric { weight: 1.0 }
    }

    /// Categorical dimension with mismatch penalty 1.
    pub fn categorical() -> Self {
        DimKind::Categorical { weight: 1.0 }
    }

    fn weight(self) -> f64 {
        match self {
            DimKind::Numeric { weight } | DimKind::Categorical { weight } => weight,
        }
    }

    /// The difference contributed by this dimension.
    pub fn diff(self, p: f64, q: f64) -> f64 {
        match self {
            DimKind::Numeric { weight } => weight * (p - q).abs(),
            DimKind::Categorical { weight } => {
                if p == q {
                    0.0
                } else {
                    weight
                }
            }
        }
    }
}

/// Per-dimension kinds for a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridSchema {
    kinds: Vec<DimKind>,
}

impl HybridSchema {
    /// Builds a schema, validating the weights.
    ///
    /// # Errors
    ///
    /// Rejects empty schemas ([`KnMatchError::ZeroDimensions`]) and
    /// non-positive or non-finite weights
    /// ([`KnMatchError::NonFiniteValue`] with the offending dimension).
    pub fn new(kinds: Vec<DimKind>) -> Result<Self> {
        if kinds.is_empty() {
            return Err(KnMatchError::ZeroDimensions);
        }
        for (dim, k) in kinds.iter().enumerate() {
            let w = k.weight();
            if !w.is_finite() || w <= 0.0 {
                return Err(KnMatchError::NonFiniteValue { dim });
            }
        }
        Ok(HybridSchema { kinds })
    }

    /// All-numeric schema with unit weights (equivalent to the plain model).
    pub fn all_numeric(dims: usize) -> Result<Self> {
        Self::new(vec![DimKind::numeric(); dims])
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.kinds.len()
    }

    /// The kind of dimension `dim`.
    pub fn kind(&self, dim: usize) -> DimKind {
        self.kinds[dim]
    }

    /// All per-dimension differences of `p` vs `q`, sorted ascending
    /// (index `n − 1` is the hybrid n-match difference).
    ///
    /// # Panics
    ///
    /// Panics when the point widths disagree with the schema.
    pub fn sorted_differences(&self, p: &[f64], q: &[f64]) -> Vec<f64> {
        assert_eq!(p.len(), self.dims(), "point width must match schema");
        assert_eq!(q.len(), self.dims(), "query width must match schema");
        let mut diffs: Vec<f64> = self
            .kinds
            .iter()
            .zip(p.iter().zip(q))
            .map(|(k, (&a, &b))| k.diff(a, b))
            .collect();
        diffs.sort_unstable_by(f64::total_cmp);
        diffs
    }

    /// The hybrid n-match difference of `p` w.r.t. `q`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or `n` outside `1..=d`.
    pub fn nmatch_difference(&self, p: &[f64], q: &[f64], n: usize) -> f64 {
        assert!(n >= 1 && n <= self.dims(), "n must be in 1..=d");
        self.sorted_differences(p, q)[n - 1]
    }
}

/// Per-dimension ascending-difference stream state.
#[derive(Debug, Clone, Copy)]
enum StreamState {
    /// Two directional cursors over a value-sorted column. `down`/`up` are
    /// the next ranks to read (None = exhausted).
    Numeric {
        down: Option<usize>,
        up: Option<usize>,
    },
    /// Equal-code block first, then the rest. `next` walks `0..c` skipping
    /// the block once the block has been exhausted.
    Categorical {
        block: (usize, usize),
        in_block: usize,
        outside: usize,
    },
}

/// The sorted-dimension organisation for a hybrid schema: every dimension
/// value-sorted (codes sort like values), plus the schema.
#[derive(Debug, Clone)]
pub struct HybridColumns {
    schema: HybridSchema,
    columns: Vec<Vec<SortedEntry>>,
    cardinality: usize,
}

impl HybridColumns {
    /// Sorts every dimension of `ds` under `schema`.
    ///
    /// # Errors
    ///
    /// Rejects a schema/dataset dimensionality mismatch.
    pub fn build(ds: &Dataset, schema: HybridSchema) -> Result<Self> {
        if ds.dims() != schema.dims() {
            return Err(KnMatchError::DimensionMismatch {
                expected: schema.dims(),
                actual: ds.dims(),
            });
        }
        let cols = crate::columns::SortedColumns::build(ds);
        let columns = (0..ds.dims()).map(|d| cols.column(d).to_vec()).collect();
        Ok(HybridColumns {
            schema,
            columns,
            cardinality: ds.len(),
        })
    }

    /// The schema.
    pub fn schema(&self) -> &HybridSchema {
        &self.schema
    }

    /// Cardinality.
    pub fn cardinality(&self) -> usize {
        self.cardinality
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.schema.dims()
    }

    /// Seeds the per-dimension stream for `q` in `dim`.
    fn seed_stream(&self, dim: usize, q: f64) -> StreamState {
        let col = &self.columns[dim];
        match self.schema.kind(dim) {
            DimKind::Numeric { .. } => {
                let pos = col.partition_point(|e| e.value < q);
                StreamState::Numeric {
                    down: pos.checked_sub(1),
                    up: (pos < col.len()).then_some(pos),
                }
            }
            DimKind::Categorical { .. } => {
                let lo = col.partition_point(|e| e.value < q);
                let hi = col.partition_point(|e| e.value <= q);
                StreamState::Categorical {
                    block: (lo, hi),
                    in_block: lo,
                    outside: 0,
                }
            }
        }
    }

    /// Pops the next `(pid, diff)` of `dim`'s stream, if any.
    fn stream_next(&self, dim: usize, q: f64, state: &mut StreamState) -> Option<(PointId, f64)> {
        let col = &self.columns[dim];
        let kind = self.schema.kind(dim);
        match state {
            StreamState::Numeric { down, up } => {
                // Choose the closer of the two frontier attributes.
                let d_diff = down.map(|r| (q - col[r].value).abs());
                let u_diff = up.map(|r| (col[r].value - q).abs());
                match (d_diff, u_diff) {
                    (None, None) => None,
                    (Some(_), None) => {
                        let r = down.expect("checked");
                        *down = r.checked_sub(1);
                        Some((col[r].pid, kind.diff(col[r].value, q)))
                    }
                    (None, Some(_)) => {
                        let r = up.expect("checked");
                        *up = (r + 1 < col.len()).then_some(r + 1);
                        Some((col[r].pid, kind.diff(col[r].value, q)))
                    }
                    (Some(dd), Some(ud)) => {
                        if dd <= ud {
                            let r = down.expect("checked");
                            *down = r.checked_sub(1);
                            Some((col[r].pid, kind.diff(col[r].value, q)))
                        } else {
                            let r = up.expect("checked");
                            *up = (r + 1 < col.len()).then_some(r + 1);
                            Some((col[r].pid, kind.diff(col[r].value, q)))
                        }
                    }
                }
            }
            StreamState::Categorical {
                block,
                in_block,
                outside,
            } => {
                if *in_block < block.1 {
                    let r = *in_block;
                    *in_block += 1;
                    return Some((col[r].pid, 0.0));
                }
                // Outside the block: skip over it.
                let mut r = *outside;
                if r == block.0 {
                    r = block.1;
                }
                if r >= col.len() {
                    return None;
                }
                *outside = r + 1;
                Some((col[r].pid, kind.diff(col[r].value, q)))
            }
        }
    }
}

/// Frontier item for the hybrid walk (min-heap by difference).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Item {
    diff: f64,
    dim: u32,
    pid: PointId,
}

impl Eq for Item {}

impl PartialOrd for Item {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Item {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .diff
            .total_cmp(&self.diff)
            .then_with(|| other.dim.cmp(&self.dim))
            .then_with(|| other.pid.cmp(&self.pid))
    }
}

/// Answers a frequent k-n-match query under a hybrid schema with the
/// generalised AD walk.
///
/// # Errors
///
/// Validates like [`crate::frequent_k_n_match_ad`].
pub fn frequent_k_n_match_hybrid(
    cols: &HybridColumns,
    query: &[f64],
    k: usize,
    n0: usize,
    n1: usize,
) -> Result<(FrequentResult, AdStats)> {
    let d = cols.dims();
    let c = cols.cardinality();
    crate::ad::validate_params(query, d, c, k, n0, n1)?;

    let mut stats = AdStats::default();
    let mut states: Vec<StreamState> = Vec::with_capacity(d);
    let mut heap: BinaryHeap<Item> = BinaryHeap::with_capacity(d);
    for (dim, &qv) in query.iter().enumerate() {
        let mut st = cols.seed_stream(dim, qv);
        stats.locate_probes += 1;
        if let Some((pid, diff)) = cols.stream_next(dim, qv, &mut st) {
            stats.attributes_retrieved += 1;
            heap.push(Item {
                diff,
                dim: dim as u32,
                pid,
            });
        }
        states.push(st);
    }

    let mut appear = vec![0u16; c];
    let mut sets: Vec<Vec<MatchEntry>> = vec![Vec::new(); n1 - n0 + 1];
    let last = n1 - n0;
    while sets[last].len() < k {
        let item = heap
            .pop()
            .expect("streams exhausted only after every point appeared d times");
        stats.heap_pops += 1;
        let dim = item.dim as usize;
        if let Some((pid, diff)) = cols.stream_next(dim, query[dim], &mut states[dim]) {
            stats.attributes_retrieved += 1;
            heap.push(Item {
                diff,
                dim: item.dim,
                pid,
            });
        }
        let a = appear[item.pid as usize] + 1;
        appear[item.pid as usize] = a;
        let a = a as usize;
        if a >= n0 && a <= n1 {
            sets[a - n0].push(MatchEntry {
                pid: item.pid,
                diff: item.diff,
            });
        }
    }

    let mut per_n = Vec::with_capacity(sets.len());
    let mut counts: Vec<u32> = vec![0; c];
    for (i, mut set) in sets.into_iter().enumerate() {
        set.truncate(k);
        for e in &set {
            counts[e.pid as usize] += 1;
        }
        let mut res = KnMatchResult {
            n: n0 + i,
            entries: set,
        };
        res.normalise();
        per_n.push(res);
    }
    let pairs: Vec<(PointId, u32)> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &cnt)| cnt > 0)
        .map(|(pid, &cnt)| (pid as PointId, cnt))
        .collect();
    let entries = rank_frequent(&pairs, k);
    Ok((
        FrequentResult {
            range: (n0, n1),
            entries,
            per_n,
        },
        stats,
    ))
}

/// Answers a k-n-match query under a hybrid schema.
///
/// # Errors
///
/// Validates like [`crate::k_n_match_ad`].
pub fn k_n_match_hybrid(
    cols: &HybridColumns,
    query: &[f64],
    k: usize,
    n: usize,
) -> Result<(KnMatchResult, AdStats)> {
    let (mut freq, stats) = frequent_k_n_match_hybrid(cols, query, k, n, n)?;
    Ok((freq.per_n.pop().expect("single n"), stats))
}

/// Naive hybrid k-n-match by full scan (the correctness oracle).
///
/// # Errors
///
/// Validates like [`crate::k_n_match_scan`].
pub fn k_n_match_hybrid_scan(
    ds: &Dataset,
    schema: &HybridSchema,
    query: &[f64],
    k: usize,
    n: usize,
) -> Result<KnMatchResult> {
    if ds.dims() != schema.dims() {
        return Err(KnMatchError::DimensionMismatch {
            expected: schema.dims(),
            actual: ds.dims(),
        });
    }
    crate::ad::validate_params(query, ds.dims(), ds.len(), k, n, n)?;
    let mut top = TopK::new(k);
    for (pid, p) in ds.iter() {
        top.offer(pid, schema.nmatch_difference(p, query, n));
    }
    Ok(top.into_result(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Movies: (genre code, decade code, rating, runtime) — two categorical
    /// and two numeric dimensions.
    fn movies() -> (Dataset, HybridSchema) {
        let ds = Dataset::from_rows(&[
            vec![0.0, 199.0, 0.82, 0.45], // action, 90s
            vec![0.0, 200.0, 0.80, 0.50], // action, 00s
            vec![1.0, 199.0, 0.81, 0.48], // drama, 90s
            vec![2.0, 198.0, 0.30, 0.90], // horror, 80s
            vec![0.0, 199.0, 0.10, 0.44], // action, 90s, awful rating
        ])
        .unwrap();
        let schema = HybridSchema::new(vec![
            DimKind::categorical(),
            DimKind::categorical(),
            DimKind::numeric(),
            DimKind::numeric(),
        ])
        .unwrap();
        (ds, schema)
    }

    #[test]
    fn categorical_diff_semantics() {
        let k = DimKind::Categorical { weight: 0.5 };
        assert_eq!(k.diff(3.0, 3.0), 0.0);
        assert_eq!(k.diff(3.0, 4.0), 0.5);
        let n = DimKind::Numeric { weight: 2.0 };
        assert_eq!(n.diff(1.0, 1.5), 1.0);
    }

    #[test]
    fn hybrid_ad_matches_scan_oracle() {
        let (ds, schema) = movies();
        let cols = HybridColumns::build(&ds, schema.clone()).unwrap();
        let q = vec![0.0, 199.0, 0.85, 0.46]; // an action 90s movie
        for n in 1..=4 {
            for k in [1usize, 3, 5] {
                let (ad, _) = k_n_match_hybrid(&cols, &q, k, n).unwrap();
                let scan = k_n_match_hybrid_scan(&ds, &schema, &q, k, n).unwrap();
                let ad_d = ad.diffs();
                let sc_d = scan.diffs();
                for (a, b) in ad_d.iter().zip(&sc_d) {
                    assert!((a - b).abs() < 1e-12, "k={k} n={n}: {ad_d:?} vs {sc_d:?}");
                }
            }
        }
    }

    #[test]
    fn hybrid_finds_genre_peers() {
        let (ds, schema) = movies();
        let cols = HybridColumns::build(&ds, schema).unwrap();
        let q = vec![0.0, 199.0, 0.85, 0.46];
        // 3-match: genre + decade + one numeric must align → movie 0 wins.
        let (m, _) = k_n_match_hybrid(&cols, &q, 1, 3).unwrap();
        assert_eq!(m.ids(), vec![0]);
        // 2-match admits movie 4 (same genre + decade, terrible rating):
        // the noisy numeric dimension is ignored, like the paper's bad
        // pixels.
        let (m, _) = k_n_match_hybrid(&cols, &q, 3, 2).unwrap();
        assert!(m.contains(4), "{:?}", m.ids());
    }

    #[test]
    fn all_numeric_schema_equals_plain_model() {
        let ds = crate::paper::fig3_dataset();
        let schema = HybridSchema::all_numeric(3).unwrap();
        let cols = HybridColumns::build(&ds, schema).unwrap();
        let q = [3.0, 7.0, 4.0];
        let mut plain = crate::SortedColumns::build(&ds);
        for n in 1..=3 {
            let (h, hs) = k_n_match_hybrid(&cols, &q, 2, n).unwrap();
            let (p, ps) = crate::k_n_match_ad(&mut plain, &q, 2, n).unwrap();
            assert_eq!(h.ids(), p.ids(), "n={n}");
            // The hybrid walk keeps one frontier item per dimension
            // (directions merge inside the stream), so it emits at most as
            // many attributes as the plain 2-cursor frontier.
            assert!(hs.attributes_retrieved <= ps.attributes_retrieved);
            assert_eq!(hs.heap_pops, ps.heap_pops);
        }
    }

    #[test]
    fn weights_reorder_matches() {
        // One point is close in a low-weight dim, another in a high-weight
        // dim; the 1-match must respect weights.
        let ds = Dataset::from_rows(&[
            vec![0.10, 0.90], // close in dim 0
            vec![0.90, 0.12], // close in dim 1
        ])
        .unwrap();
        let q = [0.0, 0.0];
        let heavy0 = HybridSchema::new(vec![
            DimKind::Numeric { weight: 10.0 },
            DimKind::Numeric { weight: 1.0 },
        ])
        .unwrap();
        let cols = HybridColumns::build(&ds, heavy0).unwrap();
        let (m, _) = k_n_match_hybrid(&cols, &q, 1, 1).unwrap();
        assert_eq!(m.ids(), vec![1], "dim-0 closeness costs 10x");
        let heavy1 = HybridSchema::new(vec![
            DimKind::Numeric { weight: 1.0 },
            DimKind::Numeric { weight: 10.0 },
        ])
        .unwrap();
        let cols = HybridColumns::build(&ds, heavy1).unwrap();
        let (m, _) = k_n_match_hybrid(&cols, &q, 1, 1).unwrap();
        assert_eq!(m.ids(), vec![0]);
    }

    #[test]
    fn frequent_hybrid_counts() {
        let (ds, schema) = movies();
        let cols = HybridColumns::build(&ds, schema).unwrap();
        let q = vec![0.0, 199.0, 0.85, 0.46];
        let (freq, _) = frequent_k_n_match_hybrid(&cols, &q, 2, 1, 4).unwrap();
        assert_eq!(freq.per_n.len(), 4);
        // Movie 0 (same genre/decade, best numerics) tops the count.
        assert_eq!(freq.ids()[0], 0);
        assert_eq!(freq.count_of(0), 4);
    }

    #[test]
    fn unknown_category_matches_nothing_exactly() {
        let (ds, schema) = movies();
        let cols = HybridColumns::build(&ds, schema).unwrap();
        // Genre code 9 matches no movie: every 1-match difference in that
        // dimension is the weight.
        let q = vec![9.0, 199.0, 0.85, 0.46];
        let (m, _) = k_n_match_hybrid(&cols, &q, 5, 1).unwrap();
        assert_eq!(m.entries.len(), 5);
        assert_eq!(m.entries[0].diff, 0.0, "decade still matches exactly");
    }

    #[test]
    fn schema_validation() {
        assert!(HybridSchema::new(vec![]).is_err());
        assert!(HybridSchema::new(vec![DimKind::Numeric { weight: 0.0 }]).is_err());
        assert!(HybridSchema::new(vec![DimKind::Categorical { weight: -1.0 }]).is_err());
        let (ds, _) = movies();
        let wrong = HybridSchema::all_numeric(2).unwrap();
        assert!(HybridColumns::build(&ds, wrong).is_err());
    }
}
