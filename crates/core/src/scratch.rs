//! Reusable per-query working memory for the AD algorithm.
//!
//! Every AD run needs two arrays indexed by point id — how often each point
//! has appeared (`appear`) and how often it entered a per-n answer set
//! (`counts`) — plus the frontier and cursor state of the walk itself.
//! Allocating and zeroing those arrays per query costs O(c) before the
//! first attribute is read, which dominates at high cardinality and small
//! answers. A [`Scratch`] keeps them alive across queries and clears them
//! in O(1) with an epoch stamp: each slot carries the epoch of the query
//! that last wrote it, and a slot whose stamp differs from the current
//! epoch reads as zero. Starting a query is a single integer increment.
//!
//! Reuse also works *across* engine calls: a dropped `Scratch` parks its
//! buffers in a per-thread pool that [`QueryControl::scratch`] draws
//! from, so a long-lived thread issuing many small
//! [`run_with`](crate::BatchEngine::run_with) calls (the event-loop
//! server's executors pipeline single-query jobs this way) pays the
//! O(c) warm-up once instead of per call.

use std::cell::RefCell;
use std::mem;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::error::{KnMatchError, Result};
use crate::frontier::{AdWalker, HeapFrontier};
use crate::point::PointId;

/// How many AD heap pops elapse between cooperative deadline /
/// cancellation checks. Checking costs an `Instant::now()` and an atomic
/// load; every 64 pops that is noise (a pop does a heap operation plus
/// an attribute read) while still bounding overshoot to well under a
/// millisecond of work.
const CONTROL_CHECK_INTERVAL: u32 = 64;

/// Cooperative per-query deadline and cancellation, checked inside the
/// AD pop loop (DESIGN.md §10).
///
/// A default `QueryControl` imposes nothing: the checks reduce to two
/// `None` tests and the healthy path's answers and
/// [`AdStats`](crate::AdStats) are bit-identical to a build without any
/// control plumbing. Engines stamp a control into their workers'
/// [`Scratch`] per batch (see
/// [`BatchOptions`](crate::engine::BatchOptions)).
#[derive(Debug, Clone, Default)]
pub struct QueryControl {
    /// Absolute point in time after which the query gives up with
    /// [`KnMatchError::DeadlineExceeded`].
    pub deadline: Option<Instant>,
    /// Shared flag; when set, the query gives up with
    /// [`KnMatchError::Cancelled`] (fail-fast batches trip it on the
    /// first failure).
    pub cancel: Option<Arc<AtomicBool>>,
}

impl QueryControl {
    /// A control that never interrupts (the default).
    pub fn none() -> Self {
        QueryControl::default()
    }

    /// A [`Scratch`] already carrying a clone of this control — the
    /// per-worker init every batch engine uses, factored here so the
    /// engines cannot drift on how workers are armed. Buffers come from
    /// this thread's pool of previously dropped scratches when one is
    /// available, so repeated small batches skip the O(c) warm-up.
    pub fn scratch(&self) -> Scratch {
        let mut s = SCRATCH_POOL
            .try_with(|p| p.borrow_mut().pop())
            .ok()
            .flatten()
            .unwrap_or_default();
        s.set_control(self.clone());
        s
    }

    /// Whether any check could ever fire.
    fn is_armed(&self) -> bool {
        self.deadline.is_some() || self.cancel.is_some()
    }

    /// Immediate check, used once at query start so even a query whose
    /// walk is shorter than the check interval honours an
    /// already-expired deadline or an already-tripped cancel flag.
    ///
    /// # Errors
    ///
    /// [`KnMatchError::Cancelled`] or [`KnMatchError::DeadlineExceeded`].
    pub(crate) fn precheck(&self) -> Result<()> {
        if !self.is_armed() {
            return Ok(());
        }
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                return Err(KnMatchError::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(KnMatchError::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// Loop-body check: consults the clock and the cancel flag every
    /// [`CONTROL_CHECK_INTERVAL`] calls. `tick` is the caller's local
    /// counter (local so the stride never depends on what previous
    /// queries did).
    ///
    /// # Errors
    ///
    /// As [`QueryControl::precheck`].
    #[inline]
    pub(crate) fn check(&self, tick: &mut u32) -> Result<()> {
        if !self.is_armed() {
            return Ok(());
        }
        *tick += 1;
        if *tick % CONTROL_CHECK_INTERVAL != 0 {
            return Ok(());
        }
        self.precheck()
    }
}

/// Epoch-stamped `appear`/`counts` arrays: logically zeroed per query by
/// bumping a generation counter instead of an O(c) memset.
#[derive(Debug, Default)]
pub(crate) struct EpochMarks {
    /// Generation of the current query. Slots whose stamp differs are stale
    /// and read as zero.
    epoch: u32,
    stamps: Vec<u32>,
    appear: Vec<u16>,
    counts: Vec<u32>,
    /// Pids whose `counts` went positive this query, so the frequency
    /// ranking never scans all `c` slots.
    touched: Vec<PointId>,
}

impl EpochMarks {
    pub(crate) fn new() -> Self {
        EpochMarks::default()
    }

    /// Whether the marks carry grown buffers worth recycling.
    fn is_warm(&self) -> bool {
        !self.stamps.is_empty()
    }

    /// Starts a query over a cardinality-`c` source: grows the arrays if
    /// this source is larger than any seen before, then invalidates every
    /// slot by bumping the epoch. On the (once per 2³² queries) epoch wrap
    /// the stamps are hard-reset so stale slots cannot alias the new epoch.
    pub(crate) fn begin(&mut self, c: usize) {
        if self.stamps.len() < c {
            // New slots get the pre-bump epoch, so they are stale like the
            // rest and lazily zeroed on first touch.
            self.stamps.resize(c, self.epoch);
            self.appear.resize(c, 0);
            self.counts.resize(c, 0);
        }
        self.touched.clear();
        if self.epoch == u32::MAX {
            self.stamps.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// Lazily zeroes a stale slot.
    fn fresh(&mut self, i: usize) {
        if self.stamps[i] != self.epoch {
            self.stamps[i] = self.epoch;
            self.appear[i] = 0;
            self.counts[i] = 0;
        }
    }

    /// Increments and returns the appearance count of `pid`.
    pub(crate) fn bump_appear(&mut self, pid: PointId) -> u16 {
        let i = pid as usize;
        self.fresh(i);
        self.appear[i] += 1;
        self.appear[i]
    }

    /// Increments the answer-set frequency of `pid`.
    pub(crate) fn bump_count(&mut self, pid: PointId) {
        let i = pid as usize;
        self.fresh(i);
        if self.counts[i] == 0 {
            self.touched.push(pid);
        }
        self.counts[i] += 1;
    }

    /// The `(pid, count)` pairs with positive count, in ascending pid order
    /// (the order the former full-array scan produced).
    pub(crate) fn count_pairs(&mut self) -> Vec<(PointId, u32)> {
        self.touched.sort_unstable();
        self.touched
            .iter()
            .map(|&pid| (pid, self.counts[pid as usize]))
            .collect()
    }
}

/// Reusable working memory for AD queries: the epoch-stamped counters and
/// the walker (frontier, cursors, query buffer).
///
/// One `Scratch` serves any number of queries, of any kind, against
/// sources of any size — it grows to the largest cardinality it has seen
/// and never shrinks. It is cheap to create but worth reusing: with a
/// fresh `Scratch` per query the per-query cost includes zeroing two
/// arrays of length `c`; with a reused one it is a pointer bump.
///
/// Not `Sync`/shareable: use one per thread (see
/// [`QueryEngine`](crate::QueryEngine), which keeps one per worker).
///
/// # Examples
///
/// ```
/// use knmatch_core::{k_n_match_ad_with, Scratch, SortedColumns};
///
/// let mut cols = SortedColumns::from_rows(&[[0.1, 0.9], [0.5, 0.4]]).unwrap();
/// let mut scratch = Scratch::new();
/// for q in [[0.5, 0.5], [0.0, 1.0]] {
///     let (res, _) = k_n_match_ad_with(&mut cols, &q, 1, 2, &mut scratch).unwrap();
///     assert_eq!(res.entries.len(), 1);
/// }
/// ```
#[derive(Debug, Default)]
pub struct Scratch {
    pub(crate) marks: EpochMarks,
    pub(crate) walker: AdWalker<HeapFrontier>,
    /// Deadline/cancellation the next query run against this scratch
    /// must honour. Defaults to no control; engines stamp it per batch.
    pub control: QueryControl,
}

impl Scratch {
    /// An empty scratch; buffers are grown on first use.
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Sets the [`QueryControl`] subsequent queries will honour.
    pub fn set_control(&mut self, control: QueryControl) {
        self.control = control;
    }
}

/// Scratches a thread keeps warm at most; each holds roughly 10 bytes per
/// point of the largest source it has served, so the pool is a bounded
/// per-thread cache, not a leak.
const SCRATCH_POOL_CAP: usize = 4;

thread_local! {
    /// Buffers of dropped scratches, recycled by [`QueryControl::scratch`].
    static SCRATCH_POOL: RefCell<Vec<Scratch>> = const { RefCell::new(Vec::new()) };
}

impl Drop for Scratch {
    fn drop(&mut self) {
        if !self.marks.is_warm() {
            return;
        }
        // Park the grown buffers (control is deliberately reset — a
        // recycled scratch must not inherit a stale deadline or cancel
        // flag). `try_with` fails during thread teardown, in which case
        // the buffers are simply freed. A discarded entry drops plain
        // `Vec`s inside the closure, so this cannot re-enter the pool.
        let marks = mem::take(&mut self.marks);
        let walker = mem::take(&mut self.walker);
        let _ = SCRATCH_POOL.try_with(move |p| {
            let mut p = p.borrow_mut();
            if p.len() < SCRATCH_POOL_CAP {
                p.push(Scratch {
                    marks,
                    walker,
                    control: QueryControl::none(),
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_bump_invalidates_previous_query() {
        let mut m = EpochMarks::new();
        m.begin(4);
        assert_eq!(m.bump_appear(2), 1);
        assert_eq!(m.bump_appear(2), 2);
        m.bump_count(2);
        m.bump_count(2);
        m.bump_count(3);
        assert_eq!(m.count_pairs(), vec![(2, 2), (3, 1)]);
        // Next query: all slots logically zero again, no memset.
        m.begin(4);
        assert_eq!(m.bump_appear(2), 1);
        assert_eq!(m.count_pairs(), vec![]);
    }

    #[test]
    fn grows_to_larger_sources_and_keeps_working() {
        let mut m = EpochMarks::new();
        m.begin(2);
        m.bump_count(1);
        m.begin(10);
        assert_eq!(m.bump_appear(9), 1);
        m.bump_count(9);
        assert_eq!(m.count_pairs(), vec![(9, 1)]);
    }

    #[test]
    fn epoch_wrap_resets_stamps() {
        let mut m = EpochMarks::new();
        m.begin(3);
        m.bump_count(0);
        // Force the wrap path.
        m.epoch = u32::MAX;
        m.stamps.fill(u32::MAX - 1);
        m.begin(3);
        assert_eq!(m.epoch, 1);
        assert!(m.stamps.iter().all(|&s| s == 0));
        assert_eq!(m.bump_appear(0), 1);
    }

    #[test]
    fn touched_list_dedupes() {
        let mut m = EpochMarks::new();
        m.begin(5);
        for _ in 0..3 {
            m.bump_count(4);
        }
        assert_eq!(m.count_pairs(), vec![(4, 3)]);
    }
}
