//! In-memory sorted-dimension organisation of a dataset.
//!
//! Each dimension is a list of `(value, point id)` pairs sorted by value —
//! the organisation the AD algorithm requires (Section 3.1, Figure 5 of the
//! paper). Building from a [`Dataset`] costs `O(d · c log c)` once
//! (parallelised across dimensions on the [`run_batch`] pool); afterwards
//! every query locates the query attribute by binary search and walks
//! outwards.
//!
//! # Structure-of-arrays layout
//!
//! The columns are stored as two flat dimension-major arrays — all values
//! in one `Vec<f64>`, all point ids in a parallel `Vec<PointId>` — rather
//! than one `Vec<SortedEntry>` per dimension. The binary-search seed and
//! the outward cursor walk only compare *values*; keeping values densely
//! packed (8 bytes per entry instead of 16 with the pid and padding
//! interleaved) halves the cache lines those hot loops touch. The
//! [`ColumnView`] adapter re-materialises `SortedEntry` pairs on demand so
//! callers that want the AoS view (`dynamic`, `hybrid`, the storage crate)
//! keep working unchanged.

use crate::engine::run_batch;
use crate::error::Result;
use crate::point::{Dataset, PointId};
use crate::source::{SortedAccessSource, SortedEntry};

/// A borrowed view of one sorted column: parallel value/pid slices of equal
/// length, presenting the array-of-structs [`SortedEntry`] interface over
/// the structure-of-arrays storage.
#[derive(Debug, Clone, Copy)]
pub struct ColumnView<'a> {
    values: &'a [f64],
    pids: &'a [PointId],
}

impl<'a> ColumnView<'a> {
    /// Number of entries (the column cardinality).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The entry at `rank` (0-based, ascending by `(value, pid)`).
    ///
    /// # Panics
    ///
    /// Panics when `rank >= len()`.
    pub fn get(&self, rank: usize) -> SortedEntry {
        SortedEntry {
            pid: self.pids[rank],
            value: self.values[rank],
        }
    }

    /// The packed attribute values, ascending.
    pub fn values(&self) -> &'a [f64] {
        self.values
    }

    /// The point ids, parallel to [`values`](Self::values).
    pub fn pids(&self) -> &'a [PointId] {
        self.pids
    }

    /// Iterates the entries in rank order.
    pub fn iter(&self) -> impl Iterator<Item = SortedEntry> + 'a {
        self.pids
            .iter()
            .zip(self.values)
            .map(|(&pid, &value)| SortedEntry { pid, value })
    }

    /// Materialises the column as an array-of-structs vector.
    pub fn to_vec(&self) -> Vec<SortedEntry> {
        self.iter().collect()
    }

    /// Iterates sub-views of at most `size` entries, in rank order (the
    /// SoA analogue of `slice::chunks`).
    ///
    /// # Panics
    ///
    /// Panics when `size == 0`.
    pub fn chunks(&self, size: usize) -> impl Iterator<Item = ColumnView<'a>> + 'a {
        self.values
            .chunks(size)
            .zip(self.pids.chunks(size))
            .map(|(values, pids)| ColumnView { values, pids })
    }
}

/// A dataset reorganised into `d` value-sorted columns.
///
/// # Examples
///
/// ```
/// use knmatch_core::{Dataset, SortedColumns};
///
/// let ds = Dataset::from_rows(&[vec![0.9, 0.1], vec![0.2, 0.8]]).unwrap();
/// let cols = SortedColumns::build(&ds);
/// // Dimension 0 sorted ascending: (pid 1, 0.2), (pid 0, 0.9).
/// assert_eq!(cols.column(0).get(0).pid, 1);
/// ```
#[derive(Debug, Clone)]
pub struct SortedColumns {
    dims: usize,
    cardinality: usize,
    /// Dimension-major: `values[dim * cardinality + rank]`.
    values: Vec<f64>,
    /// Parallel to `values`.
    pids: Vec<PointId>,
}

/// Sorts one dimension of `ds` restricted to global pids `[lo, hi)` into
/// `pairs` (a reusable buffer), returning the split `(values, pids)` with
/// pids rebased to `lo`. Tie order between equal values is the explicit
/// `(value, pid)` key ([`SortedEntry::cmp_value_pid`]) — never the layout.
pub(crate) fn sort_dim_range(
    ds: &Dataset,
    dim: usize,
    lo: usize,
    hi: usize,
    pairs: &mut Vec<SortedEntry>,
) -> (Vec<f64>, Vec<PointId>) {
    pairs.clear();
    pairs.extend((lo..hi).map(|i| SortedEntry {
        pid: (i - lo) as PointId,
        value: ds.coord(i as PointId, dim),
    }));
    pairs.sort_unstable_by(SortedEntry::cmp_value_pid);
    (
        pairs.iter().map(|e| e.value).collect(),
        pairs.iter().map(|e| e.pid).collect(),
    )
}

impl SortedColumns {
    /// Sorts every dimension of `ds`, one [`run_batch`] work item per
    /// dimension, with one worker per available CPU.
    pub fn build(ds: &Dataset) -> Self {
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::build_with_workers(ds, workers)
    }

    /// [`build`](Self::build) with an explicit worker count (clamped to
    /// ≥ 1). The result is identical at any worker count: each dimension
    /// sorts independently with the explicit `(value, pid)` key.
    pub fn build_with_workers(ds: &Dataset, workers: usize) -> Self {
        let dims = ds.dims();
        let cardinality = ds.len();
        let cols = run_batch(workers.max(1), dims, Vec::new, |pairs, dim| {
            sort_dim_range(ds, dim, 0, cardinality, pairs)
        });
        Self::from_sorted_parts(cardinality, cols)
    }

    /// Assembles per-dimension sorted `(values, pids)` parts into the flat
    /// dimension-major arrays.
    pub(crate) fn from_sorted_parts(
        cardinality: usize,
        cols: Vec<(Vec<f64>, Vec<PointId>)>,
    ) -> Self {
        let dims = cols.len();
        let mut values = Vec::with_capacity(dims * cardinality);
        let mut pids = Vec::with_capacity(dims * cardinality);
        for (v, p) in cols {
            debug_assert_eq!(v.len(), cardinality);
            debug_assert_eq!(p.len(), cardinality);
            values.extend_from_slice(&v);
            pids.extend_from_slice(&p);
        }
        SortedColumns {
            dims,
            cardinality,
            values,
            pids,
        }
    }

    /// Builds the columns of the contiguous pid range `[lo, hi)` of `ds`,
    /// with entry pids rebased to `lo` (so shard-local pids start at 0 and
    /// preserve global pid order); see
    /// [`ShardedColumns`](crate::ShardedColumns).
    #[cfg(test)]
    pub(crate) fn build_range(ds: &Dataset, lo: usize, hi: usize, workers: usize) -> Self {
        let dims = ds.dims();
        let cols = run_batch(workers.max(1), dims, Vec::new, |pairs, dim| {
            sort_dim_range(ds, dim, lo, hi, pairs)
        });
        Self::from_sorted_parts(hi - lo, cols)
    }

    /// Builds directly from row slices (validates like [`Dataset::from_rows`]).
    ///
    /// # Errors
    ///
    /// Propagates [`Dataset::from_rows`] validation errors.
    pub fn from_rows<R: AsRef<[f64]>>(rows: &[R]) -> Result<Self> {
        Ok(Self::build(&Dataset::from_rows(rows)?))
    }

    /// The sorted column of `dim` as a [`ColumnView`] over the parallel
    /// `(values, pids)` slices.
    ///
    /// # Panics
    ///
    /// Panics when `dim` is out of range.
    pub fn column(&self, dim: usize) -> ColumnView<'_> {
        ColumnView {
            values: self.dim_values(dim),
            pids: &self.pids[dim * self.cardinality..(dim + 1) * self.cardinality],
        }
    }

    /// The packed value slice of `dim` — the array the hot binary search
    /// and cursor walk touch.
    fn dim_values(&self, dim: usize) -> &[f64] {
        &self.values[dim * self.cardinality..(dim + 1) * self.cardinality]
    }

    /// Dimensionality `d`.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Cardinality `c`.
    pub fn cardinality(&self) -> usize {
        self.cardinality
    }
}

impl SortedAccessSource for SortedColumns {
    fn dims(&self) -> usize {
        self.dims
    }

    fn cardinality(&self) -> usize {
        self.cardinality
    }

    fn locate(&mut self, dim: usize, q: f64) -> usize {
        self.dim_values(dim).partition_point(|&v| v < q)
    }

    fn entry(&mut self, dim: usize, rank: usize) -> SortedEntry {
        let i = dim * self.cardinality + rank;
        SortedEntry {
            pid: self.pids[i],
            value: self.values[i],
        }
    }
}

/// Sorted access never mutates the columns, so a shared reference is a
/// source too. This is what lets many worker threads walk one
/// `Arc<SortedColumns>` concurrently (each holds its own `&SortedColumns`
/// value and passes `&mut` *to that reference*); see
/// [`QueryEngine`](crate::QueryEngine).
impl SortedAccessSource for &SortedColumns {
    fn dims(&self) -> usize {
        self.dims
    }

    fn cardinality(&self) -> usize {
        self.cardinality
    }

    fn locate(&mut self, dim: usize, q: f64) -> usize {
        self.dim_values(dim).partition_point(|&v| v < q)
    }

    fn entry(&mut self, dim: usize, rank: usize) -> SortedEntry {
        let i = dim * self.cardinality + rank;
        SortedEntry {
            pid: self.pids[i],
            value: self.values[i],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SortedColumns {
        // Figure 3 database of the paper.
        SortedColumns::from_rows(&[
            vec![0.4, 1.0, 1.0],
            vec![2.8, 5.5, 2.0],
            vec![6.5, 7.8, 5.0],
            vec![9.0, 9.0, 9.0],
            vec![3.5, 1.5, 8.0],
        ])
        .unwrap()
    }

    #[test]
    fn columns_are_sorted_with_pids() {
        let cols = sample();
        // Figure 5 of the paper: dimension 1 sorted is
        // (1,0.4) (2,2.8) (5,3.5) (3,6.5) (4,9.0) — paper ids are 1-based.
        let d0: Vec<(PointId, f64)> = cols.column(0).iter().map(|e| (e.pid, e.value)).collect();
        assert_eq!(d0, vec![(0, 0.4), (1, 2.8), (4, 3.5), (2, 6.5), (3, 9.0)]);
        for dim in 0..cols.dims() {
            let col = cols.column(dim);
            assert!(col.values().windows(2).all(|w| w[0] <= w[1]));
            assert_eq!(col.len(), cols.cardinality());
        }
    }

    #[test]
    fn every_point_appears_once_per_column() {
        let cols = sample();
        for dim in 0..cols.dims() {
            let mut pids: Vec<PointId> = cols.column(dim).pids().to_vec();
            pids.sort_unstable();
            assert_eq!(pids, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn locate_finds_first_geq() {
        let mut cols = sample();
        // Dimension 0 values: 0.4 2.8 3.5 6.5 9.0
        assert_eq!(cols.locate(0, 3.0), 2);
        assert_eq!(cols.locate(0, 0.0), 0);
        assert_eq!(cols.locate(0, 9.0), 4);
        assert_eq!(cols.locate(0, 10.0), 5);
        assert_eq!(cols.locate(0, 2.8), 1); // exact hit → its own rank
    }

    #[test]
    fn entry_returns_rank_order() {
        let mut cols = sample();
        assert_eq!(cols.entry(1, 0), SortedEntry { pid: 0, value: 1.0 });
        assert_eq!(cols.entry(1, 4), SortedEntry { pid: 3, value: 9.0 });
    }

    #[test]
    fn duplicate_values_break_ties_by_pid() {
        let mut cols = SortedColumns::from_rows(&[[5.0], [5.0], [1.0]]).unwrap();
        let col: Vec<PointId> = cols.column(0).pids().to_vec();
        assert_eq!(col, vec![2, 0, 1]);
        assert_eq!(cols.locate(0, 5.0), 1);
    }

    #[test]
    fn parallel_build_is_identical_to_sequential() {
        let rows: Vec<Vec<f64>> = (0..37)
            .map(|i| {
                (0..5)
                    .map(|d| (((i * 31 + d * 17) % 11) as f64) * 0.5)
                    .collect()
            })
            .collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let seq = SortedColumns::build_with_workers(&ds, 1);
        for workers in [2, 4, 9] {
            let par = SortedColumns::build_with_workers(&ds, workers);
            assert_eq!(par.values, seq.values, "workers={workers}");
            assert_eq!(par.pids, seq.pids, "workers={workers}");
        }
    }

    #[test]
    fn build_range_rebases_pids_and_matches_sub_dataset() {
        let rows = [
            vec![0.4, 1.0],
            vec![2.8, 5.5],
            vec![6.5, 7.8],
            vec![9.0, 9.0],
            vec![3.5, 1.5],
        ];
        let ds = Dataset::from_rows(&rows).unwrap();
        let shard = SortedColumns::build_range(&ds, 2, 5, 1);
        let direct = SortedColumns::from_rows(&rows[2..5]).unwrap();
        assert_eq!(shard.values, direct.values);
        assert_eq!(shard.pids, direct.pids);
        assert_eq!(shard.cardinality(), 3);
    }

    #[test]
    fn column_view_adapters() {
        let cols = sample();
        let view = cols.column(2);
        assert!(!view.is_empty());
        assert_eq!(view.get(0), SortedEntry { pid: 0, value: 1.0 });
        assert_eq!(view.to_vec().len(), 5);
        let chunk_lens: Vec<usize> = view.chunks(2).map(|c| c.len()).collect();
        assert_eq!(chunk_lens, vec![2, 2, 1]);
        let first = view.chunks(2).next().unwrap();
        assert_eq!(first.get(0), view.get(0));
        assert_eq!(first.values(), &view.values()[..2]);
    }
}
