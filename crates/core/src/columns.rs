//! In-memory sorted-dimension organisation of a dataset.
//!
//! Each dimension is a list of `(value, point id)` pairs sorted by value —
//! the organisation the AD algorithm requires (Section 3.1, Figure 5 of the
//! paper). Building from a [`Dataset`] costs `O(d · c log c)` once;
//! afterwards every query locates the query attribute by binary search and
//! walks outwards.

use crate::error::Result;
use crate::point::{Dataset, PointId};
use crate::source::{SortedAccessSource, SortedEntry};

/// A dataset reorganised into `d` value-sorted columns.
///
/// # Examples
///
/// ```
/// use knmatch_core::{Dataset, SortedColumns};
///
/// let ds = Dataset::from_rows(&[vec![0.9, 0.1], vec![0.2, 0.8]]).unwrap();
/// let cols = SortedColumns::build(&ds);
/// // Dimension 0 sorted ascending: (pid 1, 0.2), (pid 0, 0.9).
/// assert_eq!(cols.column(0)[0].pid, 1);
/// ```
#[derive(Debug, Clone)]
pub struct SortedColumns {
    dims: usize,
    cardinality: usize,
    columns: Vec<Vec<SortedEntry>>,
}

impl SortedColumns {
    /// Sorts every dimension of `ds`.
    pub fn build(ds: &Dataset) -> Self {
        let dims = ds.dims();
        let cardinality = ds.len();
        let mut columns = Vec::with_capacity(dims);
        for dim in 0..dims {
            let mut col: Vec<SortedEntry> = (0..cardinality)
                .map(|i| SortedEntry {
                    pid: i as PointId,
                    value: ds.coord(i as PointId, dim),
                })
                .collect();
            col.sort_unstable_by(|a, b| a.value.total_cmp(&b.value).then(a.pid.cmp(&b.pid)));
            columns.push(col);
        }
        SortedColumns {
            dims,
            cardinality,
            columns,
        }
    }

    /// Builds directly from row slices (validates like [`Dataset::from_rows`]).
    ///
    /// # Errors
    ///
    /// Propagates [`Dataset::from_rows`] validation errors.
    pub fn from_rows<R: AsRef<[f64]>>(rows: &[R]) -> Result<Self> {
        Ok(Self::build(&Dataset::from_rows(rows)?))
    }

    /// The sorted `(value, pid)` column of `dim`.
    ///
    /// # Panics
    ///
    /// Panics when `dim` is out of range.
    pub fn column(&self, dim: usize) -> &[SortedEntry] {
        &self.columns[dim]
    }

    /// Dimensionality `d`.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Cardinality `c`.
    pub fn cardinality(&self) -> usize {
        self.cardinality
    }
}

impl SortedAccessSource for SortedColumns {
    fn dims(&self) -> usize {
        self.dims
    }

    fn cardinality(&self) -> usize {
        self.cardinality
    }

    fn locate(&mut self, dim: usize, q: f64) -> usize {
        self.columns[dim].partition_point(|e| e.value < q)
    }

    fn entry(&mut self, dim: usize, rank: usize) -> SortedEntry {
        self.columns[dim][rank]
    }
}

/// Sorted access never mutates the columns, so a shared reference is a
/// source too. This is what lets many worker threads walk one
/// `Arc<SortedColumns>` concurrently (each holds its own `&SortedColumns`
/// value and passes `&mut` *to that reference*); see
/// [`QueryEngine`](crate::QueryEngine).
impl SortedAccessSource for &SortedColumns {
    fn dims(&self) -> usize {
        self.dims
    }

    fn cardinality(&self) -> usize {
        self.cardinality
    }

    fn locate(&mut self, dim: usize, q: f64) -> usize {
        self.columns[dim].partition_point(|e| e.value < q)
    }

    fn entry(&mut self, dim: usize, rank: usize) -> SortedEntry {
        self.columns[dim][rank]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SortedColumns {
        // Figure 3 database of the paper.
        SortedColumns::from_rows(&[
            vec![0.4, 1.0, 1.0],
            vec![2.8, 5.5, 2.0],
            vec![6.5, 7.8, 5.0],
            vec![9.0, 9.0, 9.0],
            vec![3.5, 1.5, 8.0],
        ])
        .unwrap()
    }

    #[test]
    fn columns_are_sorted_with_pids() {
        let cols = sample();
        // Figure 5 of the paper: dimension 1 sorted is
        // (1,0.4) (2,2.8) (5,3.5) (3,6.5) (4,9.0) — paper ids are 1-based.
        let d0: Vec<(PointId, f64)> = cols.column(0).iter().map(|e| (e.pid, e.value)).collect();
        assert_eq!(d0, vec![(0, 0.4), (1, 2.8), (4, 3.5), (2, 6.5), (3, 9.0)]);
        for dim in 0..cols.dims() {
            let col = cols.column(dim);
            assert!(col.windows(2).all(|w| w[0].value <= w[1].value));
            assert_eq!(col.len(), cols.cardinality());
        }
    }

    #[test]
    fn every_point_appears_once_per_column() {
        let cols = sample();
        for dim in 0..cols.dims() {
            let mut pids: Vec<PointId> = cols.column(dim).iter().map(|e| e.pid).collect();
            pids.sort_unstable();
            assert_eq!(pids, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn locate_finds_first_geq() {
        let mut cols = sample();
        // Dimension 0 values: 0.4 2.8 3.5 6.5 9.0
        assert_eq!(cols.locate(0, 3.0), 2);
        assert_eq!(cols.locate(0, 0.0), 0);
        assert_eq!(cols.locate(0, 9.0), 4);
        assert_eq!(cols.locate(0, 10.0), 5);
        assert_eq!(cols.locate(0, 2.8), 1); // exact hit → its own rank
    }

    #[test]
    fn entry_returns_rank_order() {
        let mut cols = sample();
        assert_eq!(cols.entry(1, 0), SortedEntry { pid: 0, value: 1.0 });
        assert_eq!(cols.entry(1, 4), SortedEntry { pid: 3, value: 9.0 });
    }

    #[test]
    fn duplicate_values_break_ties_by_pid() {
        let mut cols = SortedColumns::from_rows(&[[5.0], [5.0], [1.0]]).unwrap();
        let col: Vec<PointId> = cols.column(0).iter().map(|e| e.pid).collect();
        assert_eq!(col, vec![2, 0, 1]);
        assert_eq!(cols.locate(0, 5.0), 1);
    }
}
