//! # knmatch-core
//!
//! A from-scratch implementation of **"Similarity Search: A Matching Based
//! Approach"** (Tung, Zhang, Koudas, Ooi — VLDB 2006): the **k-n-match**
//! and **frequent k-n-match** query models and the attribute-optimal **AD
//! (Ascending Difference)** algorithm, together with the naive full-scan
//! reference algorithms and the kNN / skyline baselines the paper compares
//! against.
//!
//! ## The model
//!
//! Similarity search usually maps objects to d-dimensional points and runs
//! kNN under an aggregating metric. That (1) hides partial similarities and
//! (2) lets a single wildly-dissimilar dimension dominate. The k-n-match
//! query instead matches the query and each data point in the `n`
//! dimensions where they agree best: the **n-match difference** of `P`
//! w.r.t. `Q` is the n-th smallest of the per-dimension differences
//! `|p_i − q_i|`, and the k-n-match answer is the `k` points minimising it.
//! The **frequent k-n-match** query removes the sensitivity to `n`: it runs
//! k-n-match for every `n ∈ [n0, n1]` and returns the `k` points appearing
//! most frequently across the answer sets.
//!
//! ## Quick start
//!
//! ```
//! use knmatch_core::{
//!     frequent_k_n_match_ad, k_n_match_ad, k_nearest, Dataset, Euclidean, SortedColumns,
//! };
//!
//! // The paper's Figure 1 database: 4 objects, 10 dims, query (1,…,1).
//! let ds = knmatch_core::paper::fig1_dataset();
//! let q = knmatch_core::paper::fig1_query();
//!
//! // Euclidean kNN picks the all-20s object…
//! assert_eq!(k_nearest(&ds, &q, 1, &Euclidean).unwrap()[0].pid, 3);
//!
//! // …but the 6-match finds the object agreeing exactly in 6 dimensions,
//! let mut cols = SortedColumns::build(&ds);
//! let (m6, _) = k_n_match_ad(&mut cols, &q, 1, 6).unwrap();
//! assert_eq!(m6.ids(), vec![2]);
//!
//! // and the frequent k-n-match over n ∈ [1, 10] ranks by full similarity.
//! let (freq, _) = frequent_k_n_match_ad(&mut cols, &q, 2, 1, 10).unwrap();
//! assert!(!freq.contains_answer(3));
//! # // helper used above:
//! ```
//!
//! (The `contains_answer` call above is sugar for checking the ranked ids;
//! see [`FrequentResult`].)
//!
//! ## Module map
//!
//! - [`point`] / [`Dataset`] — row-major point storage with validation;
//! - [`nmatch`] — the n-match difference (Definition 1) and helpers;
//! - [`columns`] / [`SortedColumns`] — the sorted-dimension organisation;
//! - [`source`] — the sorted-access abstraction (multiple-system IR model);
//! - [`ad`] — the AD algorithm (`KNMatchAD` / `FKNMatchAD`, Theorems 3.1–3.3),
//!   plus the ε-threshold variant and the paper-literal linear `g[]` ablation;
//! - [`scratch`] / [`Scratch`] — reusable epoch-stamped query working memory;
//! - [`engine`] / [`QueryEngine`] — parallel batch execution over shared
//!   columns, and the [`BatchEngine`] trait every batch backend implements;
//! - [`kernels`] — unrolled, autovectorization-friendly inner-loop kernels
//!   for the filter and scan hot paths;
//! - [`filter`] / [`ScanEngine`] / [`BandEngine`] — exact filter-and-refine
//!   batch backends over quantised cells (VA-file / IGrid adapters build on
//!   these);
//! - [`sharded`] / [`ShardedQueryEngine`] — intra-query parallelism over
//!   point-id-sharded columns with an exact `(diff, pid)` merge;
//! - [`stream`] — lazy ascending-difference answer iterator;
//! - [`dynamic`] — insert/remove-capable index with stable keys;
//! - [`versioned`] / [`VersionedIndex`] — epoch-versioned MVCC index:
//!   delta + sealed runs + pinned snapshots, writers never block readers;
//! - [`hybrid`] — mixed numeric/categorical/weighted schemas (footnote 1);
//! - [`naive`] — full-scan reference algorithms;
//! - [`knn`] / [`metrics`] — kNN baselines (L_p, Chebyshev, DPF);
//! - [`medrank`](mod@crate::medrank) — Fagin's median-rank aggregation (related work \[12\]);
//! - [`fagin`] — FA / TA for monotone aggregates, and the misapplication
//!   counterexample the paper builds on;
//! - [`skyline`] — the query-relative skyline comparison;
//! - [`paper`] — the paper's worked examples as datasets.

#![warn(missing_docs)]
// `deny` rather than `forbid`: the explicit AVX2 kernel in
// `kernels::x86` is the one narrowly-scoped `#[allow(unsafe_code)]`
// module in the crate.
#![deny(unsafe_code)]

pub mod ad;
pub mod columns;
pub mod dynamic;
pub mod engine;
pub mod error;
pub mod fagin;
pub mod filter;
pub(crate) mod frontier;
pub mod hybrid;
pub mod kernels;
pub mod knn;
pub mod medrank;
pub mod metrics;
pub mod naive;
pub mod nmatch;
pub mod paper;
pub mod point;
pub mod result;
pub mod scratch;
pub mod sharded;
pub mod skyline;
pub mod source;
pub mod stream;
pub mod topk;
pub mod versioned;

pub use ad::{
    eps_n_match_ad, eps_n_match_ad_with, frequent_k_n_match_ad, frequent_k_n_match_ad_linear,
    frequent_k_n_match_ad_with, k_n_match_ad, k_n_match_ad_with, AdStats,
};
pub use columns::{ColumnView, SortedColumns};
pub use dynamic::{DynamicColumns, KeyedMatch};
pub use engine::{
    execute_batch_query, isolate_panic, note_outcome, run_batch, BatchAnswer, BatchEngine,
    BatchOptions, BatchOutcome, BatchQuery, PlanTally, PlannerMode, QueryEngine,
};
pub use error::{panic_message, KnMatchError, Result};
pub use fagin::{GradedLists, MiddlewareStats, MinAggregate, MonotoneAggregate, WeightedSum};
pub use filter::{
    equi_width_boundaries, sample_threshold, BandEngine, FilterScratch, ScanEngine, FILTER_SAMPLE,
};
pub use hybrid::{
    frequent_k_n_match_hybrid, k_n_match_hybrid, k_n_match_hybrid_scan, DimKind, HybridColumns,
    HybridSchema,
};
pub use knn::{k_nearest, Neighbour};
pub use medrank::medrank;
pub use metrics::{Chebyshev, Dpf, Euclidean, Lp, Manhattan, Metric};
pub use naive::{
    frequent_k_n_match_scan, k_n_match_scan, k_n_match_scan_counted, k_n_match_scan_parallel,
};
pub use nmatch::{
    matching_dimensions, nmatch_difference, nmatch_difference_with_buf, sorted_differences,
    sorted_differences_with_buf,
};
pub use point::{Dataset, PointId};
pub use result::{FrequentEntry, FrequentResult, KnMatchResult, MatchEntry};
pub use scratch::{QueryControl, Scratch};
pub use sharded::{ShardedColumns, ShardedOutcome, ShardedQueryEngine};
pub use skyline::skyline_wrt;
pub use source::{SortedAccessSource, SortedEntry};
pub use stream::NMatchStream;
pub use versioned::{
    EpochSnapshot, VersionStats, VersionWriter, VersionedEngine, VersionedIndex,
    DEFAULT_MERGE_THRESHOLD,
};

impl FrequentResult {
    /// Whether `pid` is one of the ranked answers.
    pub fn contains_answer(&self, pid: PointId) -> bool {
        self.entries.iter().any(|e| e.pid == pid)
    }
}
