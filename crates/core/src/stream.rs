//! Incremental n-match answers: a lazy iterator over the k-n-match ranking.
//!
//! [`NMatchStream`] yields `(point, n-match difference)` pairs in ascending
//! difference order, one at a time, retrieving only the attributes needed
//! so far — the AD algorithm's stopping rule turned inside-out. Useful when
//! `k` is not known up front (e.g. "keep fetching matches until the user
//! stops scrolling"): taking the first `k` elements is exactly the
//! k-n-match answer set and costs exactly what [`crate::k_n_match_ad`]
//! would (Theorem 3.2's optimality is per answer).
//!
//! Ties are canonical, matching the batch algorithms: answers sharing one
//! difference value emit in ascending pid order (the plateau is drained
//! and buffered when its first member surfaces), so a stream prefix is
//! bit-identical to the batch answer even on tied boundaries.

use std::collections::VecDeque;

use crate::ad::{validate_params, AdStats};
use crate::error::Result;
use crate::frontier::{AdWalker, HeapFrontier};
use crate::result::MatchEntry;
use crate::source::SortedAccessSource;

/// A lazy, ascending-difference stream of n-match answers.
///
/// # Examples
///
/// ```
/// use knmatch_core::{NMatchStream, SortedColumns};
///
/// let ds = knmatch_core::paper::fig3_dataset();
/// let mut cols = SortedColumns::build(&ds);
/// let mut stream = NMatchStream::new(&mut cols, &[3.0, 7.0, 4.0], 2).unwrap();
/// let first = stream.next().unwrap();
/// assert_eq!(first.pid, 2); // paper's point 3, the best 2-match
/// let second = stream.next().unwrap();
/// assert_eq!(second.pid, 1); // paper's point 2 — together: the 2-2-match
/// ```
#[derive(Debug)]
pub struct NMatchStream<'a, S: SortedAccessSource> {
    src: &'a mut S,
    walker: AdWalker<HeapFrontier>,
    appear: Vec<u16>,
    /// Answers from a drained equal-difference plateau, in canonical
    /// ascending-pid order, waiting to be emitted.
    pending: VecDeque<MatchEntry>,
    n: usize,
    emitted: usize,
    cardinality: usize,
}

impl<'a, S: SortedAccessSource> NMatchStream<'a, S> {
    /// Seeds a stream for the given query and `n`.
    ///
    /// # Errors
    ///
    /// Validates the query shape and `n`; see [`crate::KnMatchError`].
    pub fn new(src: &'a mut S, query: &[f64], n: usize) -> Result<Self> {
        let d = src.dims();
        let c = src.cardinality();
        validate_params(query, d, c, 1, n, n)?;
        let walker = AdWalker::seed(src, query);
        Ok(NMatchStream {
            src,
            walker,
            appear: vec![0u16; c],
            pending: VecDeque::new(),
            n,
            emitted: 0,
            cardinality: c,
        })
    }

    /// Cost counters so far.
    pub fn stats(&self) -> AdStats {
        self.walker.stats
    }

    /// Answers emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }
}

impl<S: SortedAccessSource> Iterator for NMatchStream<'_, S> {
    type Item = MatchEntry;

    fn next(&mut self) -> Option<MatchEntry> {
        if let Some(e) = self.pending.pop_front() {
            self.emitted += 1;
            return Some(e);
        }
        if self.emitted == self.cardinality {
            return None;
        }
        while let Some((pid, diff)) = self.walker.next_pop(self.src) {
            let a = self.appear[pid as usize] + 1;
            self.appear[pid as usize] = a;
            if a as usize == self.n {
                // Drain the rest of this difference plateau so tied
                // answers emit by ascending pid, not by pop order — the
                // same canonical key the batch algorithms select by.
                let mut group = vec![MatchEntry { pid, diff }];
                while self.walker.peek_diff() == Some(diff) {
                    let (tied, _) = self
                        .walker
                        .next_pop(self.src)
                        .expect("peeked non-empty frontier");
                    let at = self.appear[tied as usize] + 1;
                    self.appear[tied as usize] = at;
                    if at as usize == self.n {
                        group.push(MatchEntry { pid: tied, diff });
                    }
                }
                group.sort_unstable_by_key(|e| e.pid);
                self.pending.extend(group);
                let e = self.pending.pop_front().expect("group has one entry");
                self.emitted += 1;
                return Some(e);
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.cardinality - self.emitted;
        (remaining, Some(remaining))
    }
}

impl<S: SortedAccessSource> ExactSizeIterator for NMatchStream<'_, S> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columns::SortedColumns;
    use crate::k_n_match_ad;

    fn cols() -> SortedColumns {
        SortedColumns::build(&crate::paper::fig3_dataset())
    }

    #[test]
    fn streams_every_point_in_ascending_order() {
        let mut cols = cols();
        let entries: Vec<MatchEntry> = NMatchStream::new(&mut cols, &[3.0, 7.0, 4.0], 2)
            .unwrap()
            .collect();
        assert_eq!(entries.len(), 5);
        assert!(entries.windows(2).all(|w| w[0].diff <= w[1].diff));
        let mut pids: Vec<u32> = entries.iter().map(|e| e.pid).collect();
        pids.sort_unstable();
        assert_eq!(pids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn prefix_equals_k_n_match_answer() {
        let mut a = cols();
        let mut b = cols();
        let q = [3.0, 7.0, 4.0];
        for n in 1..=3 {
            for k in 1..=5 {
                let stream: Vec<MatchEntry> =
                    NMatchStream::new(&mut a, &q, n).unwrap().take(k).collect();
                let (batch, _) = k_n_match_ad(&mut b, &q, k, n).unwrap();
                let mut stream_sorted = stream.clone();
                stream_sorted.sort_by(|x, y| x.diff.total_cmp(&y.diff).then(x.pid.cmp(&y.pid)));
                assert_eq!(stream_sorted, batch.entries, "k={k} n={n}");
            }
        }
    }

    #[test]
    fn lazy_cost_matches_batch_cost() {
        let mut a = cols();
        let mut b = cols();
        let q = [3.0, 7.0, 4.0];
        let mut stream = NMatchStream::new(&mut a, &q, 2).unwrap();
        stream.next();
        stream.next();
        let (_, batch_stats) = k_n_match_ad(&mut b, &q, 2, 2).unwrap();
        assert_eq!(stream.stats().heap_pops, batch_stats.heap_pops);
        assert_eq!(
            stream.stats().attributes_retrieved,
            batch_stats.attributes_retrieved
        );
        assert_eq!(stream.emitted(), 2);
    }

    #[test]
    fn size_hint_counts_down() {
        let mut cols = cols();
        let mut s = NMatchStream::new(&mut cols, &[3.0, 7.0, 4.0], 1).unwrap();
        assert_eq!(s.size_hint(), (5, Some(5)));
        s.next();
        assert_eq!(s.size_hint(), (4, Some(4)));
        assert_eq!(s.by_ref().count(), 4);
    }

    #[test]
    fn exhausted_stream_stays_none() {
        let mut cols = cols();
        let mut s = NMatchStream::new(&mut cols, &[3.0, 7.0, 4.0], 3).unwrap();
        for _ in 0..5 {
            assert!(s.next().is_some());
        }
        assert!(s.next().is_none());
        assert!(s.next().is_none());
    }

    #[test]
    fn validates_parameters() {
        let mut cols = cols();
        assert!(NMatchStream::new(&mut cols, &[1.0], 1).is_err());
        assert!(NMatchStream::new(&mut cols, &[1.0, 2.0, 3.0], 0).is_err());
        assert!(NMatchStream::new(&mut cols, &[1.0, 2.0, 3.0], 4).is_err());
    }
}
