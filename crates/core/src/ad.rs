//! The AD (Ascending Difference) algorithm — Section 3 of the paper.
//!
//! The data is organised as `d` sorted lists (one per dimension). For a
//! query `Q`, the algorithm locates `q_i` in each list by binary search and
//! then retrieves individual attributes **in ascending order of their
//! difference to the corresponding query attribute**, merging the `2d`
//! directional cursors through a frontier (the paper's `g[]` array,
//! defaulted here to a min-heap; the paper-literal linear array is kept
//! as an ablation — see [`frequent_k_n_match_ad_linear`]).
//! When a point id has been seen `n` times, it is the next k-n-match answer
//! (Theorem 3.1); the algorithm stops once `k` ids have been seen `n` times
//! (`n1` times for the frequent variant) and is **optimal in the number of
//! attributes retrieved** (Theorems 3.2 / 3.3).

use crate::error::{KnMatchError, Result};
use crate::frontier::{AdWalker, Frontier, LinearFrontier};
use crate::point::validate_finite;
use crate::result::{rank_frequent, FrequentResult, KnMatchResult, MatchEntry};
use crate::scratch::{EpochMarks, QueryControl, Scratch};
use crate::source::SortedAccessSource;

/// Cost counters for one AD run, in the paper's cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdStats {
    /// Individual attributes retrieved by sorted access (the paper's cost
    /// measure; Theorem 3.2 proves AD minimises this).
    pub attributes_retrieved: u64,
    /// Binary-search probes issued to seed the cursors (one per dimension).
    pub locate_probes: u64,
    /// Triples popped from `g[]`. Popped ≤ retrieved: up to `2d` retrieved
    /// attributes may still sit in `g[]` at termination.
    pub heap_pops: u64,
}

impl AdStats {
    /// Adds `other`'s counters into `self` — used to total the per-shard
    /// stats of one sharded query. Note that the total of a sharded run
    /// exceeds the unsharded run's stats: every shard seeds its own `2d`
    /// cursors and walks until its local stop condition.
    pub fn accumulate(&mut self, other: &AdStats) {
        self.attributes_retrieved += other.attributes_retrieved;
        self.locate_probes += other.locate_probes;
        self.heap_pops += other.heap_pops;
    }

    /// Retrieved attributes as a fraction of the `c · d` total — the y-axis
    /// of the paper's Figures 9(a) and 15(b).
    pub fn retrieved_fraction(&self, cardinality: usize, dims: usize) -> f64 {
        let total = (cardinality as u64).saturating_mul(dims as u64);
        if total == 0 {
            0.0
        } else {
            self.attributes_retrieved as f64 / total as f64
        }
    }
}

/// Answers a k-n-match query (Definition 3) with algorithm `KNMatchAD`.
///
/// Returns the answer set together with the run's [`AdStats`].
///
/// # Errors
///
/// Validates the query shape and parameters; see [`KnMatchError`].
///
/// # Examples
///
/// ```
/// use knmatch_core::{k_n_match_ad, SortedColumns};
///
/// // The paper's Figure 3 database and its 2-2-match example:
/// let mut cols = SortedColumns::from_rows(&[
///     vec![0.4, 1.0, 1.0],
///     vec![2.8, 5.5, 2.0],
///     vec![6.5, 7.8, 5.0],
///     vec![9.0, 9.0, 9.0],
///     vec![3.5, 1.5, 8.0],
/// ]).unwrap();
/// let (res, _stats) = k_n_match_ad(&mut cols, &[3.0, 7.0, 4.0], 2, 2).unwrap();
/// // Paper ids {2, 3} are our zero-based {1, 2}; ascending diff order
/// // lists point 2 (diff 1.0) before point 1 (diff 1.5 = ε).
/// assert_eq!(res.ids(), vec![2, 1]);
/// assert_eq!(res.epsilon(), 1.5);
/// ```
pub fn k_n_match_ad<S: SortedAccessSource>(
    src: &mut S,
    query: &[f64],
    k: usize,
    n: usize,
) -> Result<(KnMatchResult, AdStats)> {
    k_n_match_ad_with(src, query, k, n, &mut Scratch::new())
}

/// [`k_n_match_ad`] with caller-provided working memory (see [`Scratch`]):
/// identical answers and stats, but no per-query O(c) allocation.
///
/// # Errors
///
/// Validates the query shape and parameters; see [`KnMatchError`].
pub fn k_n_match_ad_with<S: SortedAccessSource>(
    src: &mut S,
    query: &[f64],
    k: usize,
    n: usize,
    scratch: &mut Scratch,
) -> Result<(KnMatchResult, AdStats)> {
    let (mut freq, stats) = frequent_k_n_match_ad_with(src, query, k, n, n, scratch)?;
    Ok((
        freq.per_n
            .pop()
            .expect("single-n run yields one answer set"),
        stats,
    ))
}

/// Answers a frequent k-n-match query (Definition 4) with algorithm
/// `FKNMatchAD`.
///
/// Runs the ascending-difference scan until `k` points have appeared `n1`
/// times; by then the k-n-match answer sets for every `n ∈ [n0, n1]` have
/// been produced as a side effect (Theorem 3.3: no more attributes are
/// retrieved than a plain k-n1-match needs). Frequencies are counted over
/// the k-sized per-n answer sets, per Definition 4.
///
/// # Errors
///
/// Validates the query shape and parameters; see [`KnMatchError`].
pub fn frequent_k_n_match_ad<S: SortedAccessSource>(
    src: &mut S,
    query: &[f64],
    k: usize,
    n0: usize,
    n1: usize,
) -> Result<(FrequentResult, AdStats)> {
    frequent_k_n_match_ad_with(src, query, k, n0, n1, &mut Scratch::new())
}

/// [`frequent_k_n_match_ad`] with caller-provided working memory (see
/// [`Scratch`]): identical answers and stats, but no per-query O(c)
/// allocation or memset for the appearance/frequency counters.
///
/// # Errors
///
/// Validates the query shape and parameters; see [`KnMatchError`].
pub fn frequent_k_n_match_ad_with<S: SortedAccessSource>(
    src: &mut S,
    query: &[f64],
    k: usize,
    n0: usize,
    n1: usize,
    scratch: &mut Scratch,
) -> Result<(FrequentResult, AdStats)> {
    let Scratch {
        marks,
        walker,
        control,
    } = scratch;
    frequent_core(src, query, k, n0, n1, walker, marks, control)
}

/// [`frequent_k_n_match_ad`] using the paper's literal `g[]` array (linear
/// minimum scan per pop) instead of a heap. Identical answers and
/// attribute counts; O(d) instead of O(log d) per pop. Exposed for the
/// frontier ablation bench.
///
/// # Errors
///
/// Validates the query shape and parameters; see [`KnMatchError`].
pub fn frequent_k_n_match_ad_linear<S: SortedAccessSource>(
    src: &mut S,
    query: &[f64],
    k: usize,
    n0: usize,
    n1: usize,
) -> Result<(FrequentResult, AdStats)> {
    let mut walker: AdWalker<LinearFrontier> = AdWalker::new_empty();
    let mut marks = EpochMarks::new();
    frequent_core(
        src,
        query,
        k,
        n0,
        n1,
        &mut walker,
        &mut marks,
        &QueryControl::none(),
    )
}

/// The FKNMatchAD loop against borrowed working memory. Every public
/// entry point funnels here, so the sequential, scratch-reusing, and
/// parallel paths are the same code and produce bit-identical answers
/// and [`AdStats`].
///
/// Tie-breaking is **canonical**: when several points share the boundary
/// difference ε of an answer set, the set keeps the ones with the smallest
/// (diff, pid) keys — a pure function of the data, independent of cursor
/// interleaving. This costs a short extra drain of boundary-tied pops
/// (zero when the boundary difference is unique) and is what makes the
/// point-id-sharded engine's merged answers bit-identical to this loop.
#[allow(clippy::too_many_arguments)]
fn frequent_core<S: SortedAccessSource, F: Frontier>(
    src: &mut S,
    query: &[f64],
    k: usize,
    n0: usize,
    n1: usize,
    walker: &mut AdWalker<F>,
    marks: &mut EpochMarks,
    control: &QueryControl,
) -> Result<(FrequentResult, AdStats)> {
    let d = src.dims();
    let c = src.cardinality();
    validate_params(query, d, c, k, n0, n1)?;
    control.precheck()?;

    marks.begin(c);
    walker.reseed(src, query);
    // S_{n0} … S_{n1}, filled in order of appearance (= ascending n-match
    // difference, Theorem 3.1).
    let mut sets: Vec<Vec<MatchEntry>> = vec![Vec::new(); n1 - n0 + 1];

    let last_set = n1 - n0;
    let mut tick = 0u32;
    while sets[last_set].len() < k {
        control.check(&mut tick)?;
        let (pid, diff) = walker
            .next_pop(src)
            .expect("g[] exhausted: all c·d attributes read, so every point appeared d ≥ n1 times");
        let a = marks.bump_appear(pid) as usize;
        if a >= n0 && a <= n1 {
            sets[a - n0].push(MatchEntry { pid, diff });
        }
    }

    // Canonical tie drain. The loop above stops the instant S_{n1} holds k
    // entries, which resolves ties at an answer-set boundary by pop order —
    // an order that depends on cursor interleaving, not on the data alone.
    // Keep popping while the next difference is still within ε_{n1} (=
    // `sets[last_set][k-1].diff`, the largest boundary: per-point n-match
    // differences are non-decreasing in n, so ε_{n0} ≤ … ≤ ε_{n1}). After
    // the drain every set holds *all* candidates with diff ≤ its own
    // boundary, and selecting each set's k smallest by the canonical
    // (diff, pid) key makes the answer a pure function of the data — which
    // is what lets a sharded run merged by (diff, pid) be bit-identical
    // (see `ShardedQueryEngine`). On tie-free boundaries the drain pops
    // nothing and the result is unchanged.
    let bound = sets[last_set][k - 1].diff;
    while walker.peek_diff().is_some_and(|d| d <= bound) {
        let (pid, diff) = walker.next_pop(src).expect("peeked non-empty frontier");
        let a = marks.bump_appear(pid) as usize;
        if a >= n0 && a <= n1 {
            sets[a - n0].push(MatchEntry { pid, diff });
        }
    }

    // Each S_n lists its candidates in ascending pop order; the k-n-match
    // answer set is its k smallest entries by (diff, pid).
    let mut per_n = Vec::with_capacity(sets.len());
    for (i, mut set) in sets.into_iter().enumerate() {
        set.sort_unstable_by(|a, b| a.diff.total_cmp(&b.diff).then(a.pid.cmp(&b.pid)));
        set.truncate(k);
        for e in &set {
            marks.bump_count(e.pid);
        }
        per_n.push(KnMatchResult {
            n: n0 + i,
            entries: set,
        });
    }
    let entries = rank_frequent(&marks.count_pairs(), k);

    Ok((
        FrequentResult {
            range: (n0, n1),
            entries,
            per_n,
        },
        walker.stats,
    ))
}

/// Answers an **ε-n-match query**: every point whose n-match difference is
/// at most `eps`, in ascending `(diff, pid)` order — the threshold
/// companion of the k-n-match query (the paper determines ε from k; this
/// API lets callers fix ε directly, e.g. "all objects matching the query
/// in ≥ n dimensions within 0.05").
///
/// Also returns the run's [`AdStats`]; the walk stops at the first popped
/// difference exceeding `eps`, so the cost is proportional to the answer.
///
/// # Errors
///
/// Validates like [`k_n_match_ad`] (with `k` implicitly free), plus
/// rejects a negative or non-finite `eps` via
/// [`KnMatchError::InvalidEpsilon`].
pub fn eps_n_match_ad<S: SortedAccessSource>(
    src: &mut S,
    query: &[f64],
    eps: f64,
    n: usize,
) -> Result<(KnMatchResult, AdStats)> {
    eps_n_match_ad_with(src, query, eps, n, &mut Scratch::new())
}

/// [`eps_n_match_ad`] with caller-provided working memory (see
/// [`Scratch`]): identical answers and stats, but no per-query O(c)
/// allocation.
///
/// # Errors
///
/// As for [`eps_n_match_ad`].
pub fn eps_n_match_ad_with<S: SortedAccessSource>(
    src: &mut S,
    query: &[f64],
    eps: f64,
    n: usize,
    scratch: &mut Scratch,
) -> Result<(KnMatchResult, AdStats)> {
    let d = src.dims();
    let c = src.cardinality();
    validate_params(query, d, c, 1, n, n)?;
    validate_eps(eps)?;
    let Scratch {
        marks,
        walker,
        control,
    } = scratch;
    control.precheck()?;
    marks.begin(c);
    walker.reseed(src, query);
    let mut entries = Vec::new();
    let mut tick = 0u32;
    while let Some((pid, diff)) = walker.next_pop(src) {
        control.check(&mut tick)?;
        if diff > eps {
            break;
        }
        if marks.bump_appear(pid) as usize == n {
            entries.push(MatchEntry { pid, diff });
        }
    }
    let mut res = KnMatchResult { n, entries };
    res.normalise();
    Ok((res, walker.stats))
}

/// Validates an ε-n-match threshold: finite and non-negative. Shared (like
/// [`validate_params`]) by every backend that answers ε-n-match, so the
/// error for a bad `eps` is identical everywhere.
///
/// # Errors
///
/// [`KnMatchError::InvalidEpsilon`] otherwise.
pub fn validate_eps(eps: f64) -> Result<()> {
    if !eps.is_finite() || eps < 0.0 {
        return Err(KnMatchError::InvalidEpsilon { eps });
    }
    Ok(())
}

/// Validates a (query, k, n-range) parameter set against a `d`-dimensional,
/// cardinality-`c` source. Shared by every query algorithm in this crate and
/// by the disk/VA-file/IGrid implementations in sibling crates.
///
/// # Errors
///
/// See [`KnMatchError`] for each condition.
pub fn validate_params(
    query: &[f64],
    d: usize,
    c: usize,
    k: usize,
    n0: usize,
    n1: usize,
) -> Result<()> {
    if c == 0 {
        return Err(KnMatchError::EmptyDataset);
    }
    if query.len() != d {
        return Err(KnMatchError::DimensionMismatch {
            expected: d,
            actual: query.len(),
        });
    }
    validate_finite(query)?;
    if k == 0 || k > c {
        return Err(KnMatchError::InvalidK { k, cardinality: c });
    }
    if n0 == 0 || n0 > n1 || n1 > d {
        return Err(KnMatchError::InvalidRange { n0, n1, dims: d });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columns::SortedColumns;

    /// The paper's Figure 3 database (ids shifted to 0-based).
    fn fig3() -> SortedColumns {
        SortedColumns::build(&crate::paper::fig3_dataset())
    }

    #[test]
    fn paper_running_example_2_2_match() {
        // Section 3.1's worked run: 2-2-match of (3.0, 7.0, 4.0) is
        // {point 2, point 3} (1-based) with ε = 1.5.
        let mut cols = fig3();
        let (res, stats) = k_n_match_ad(&mut cols, &[3.0, 7.0, 4.0], 2, 2).unwrap();
        // Ascending 2-match difference: point 3 (paper id; diff 1.0) then
        // point 2 (diff 1.5).
        assert_eq!(res.ids(), vec![2, 1]);
        assert_eq!(res.epsilon(), 1.5);
        // The worked example pops 5 triples before stopping.
        assert_eq!(stats.heap_pops, 5);
        // 6 seeds + one refill per pop, none exhausted.
        assert_eq!(stats.attributes_retrieved, 6 + 5);
        assert_eq!(stats.locate_probes, 3);
    }

    #[test]
    fn linear_frontier_variant_is_identical() {
        let mut cols = fig3();
        let q = [3.0, 7.0, 4.0];
        for (k, n0, n1) in [(2usize, 2usize, 2usize), (1, 1, 1), (3, 1, 3), (5, 2, 3)] {
            let (a, sa) = frequent_k_n_match_ad(&mut cols, &q, k, n0, n1).unwrap();
            let (b, sb) = frequent_k_n_match_ad_linear(&mut cols, &q, k, n0, n1).unwrap();
            assert_eq!(a, b, "k={k} [{n0},{n1}]");
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn paper_fig3_1_match_is_point_2() {
        // The FA counterexample: the correct 1-match of (3.0, 7.0, 4.0) is
        // point 2 (diff 0.2), not point 1.
        let mut cols = fig3();
        let (res, _) = k_n_match_ad(&mut cols, &[3.0, 7.0, 4.0], 1, 1).unwrap();
        assert_eq!(res.ids(), vec![1]); // paper's point 2
        assert!((res.epsilon() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn full_n_equals_d_matches_chebyshev_ranking() {
        // With n = d the n-match difference is the L∞ distance, so the
        // answer is the Chebyshev nearest neighbour.
        let ds = crate::paper::fig3_dataset();
        let mut cols = fig3();
        let q = [3.0, 7.0, 4.0];
        let (res, _) = k_n_match_ad(&mut cols, &q, 1, 3).unwrap();
        let cheb = |p: &[f64]| {
            p.iter()
                .zip(&q)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max)
        };
        let best = ds
            .iter()
            .min_by(|a, b| cheb(a.1).total_cmp(&cheb(b.1)))
            .map(|(pid, _)| pid)
            .unwrap();
        assert_eq!(res.ids(), vec![best]);
    }

    #[test]
    fn frequent_run_produces_all_per_n_sets() {
        let mut cols = fig3();
        let (freq, _) = frequent_k_n_match_ad(&mut cols, &[3.0, 7.0, 4.0], 2, 1, 3).unwrap();
        assert_eq!(freq.per_n.len(), 3);
        for (i, r) in freq.per_n.iter().enumerate() {
            assert_eq!(r.n, i + 1);
            assert_eq!(r.entries.len(), 2);
        }
        assert_eq!(freq.entries.len(), 2);
        // Point 2 (0-based 1) is in every answer set: 1-match (0.2),
        // 2-match (1.5), 3-match (2.0) → count 3.
        assert_eq!(freq.count_of(1), 3);
        assert_eq!(freq.ids()[0], 1);
    }

    #[test]
    fn boundary_ties_resolve_by_smallest_pid() {
        // Values 1.0 (pids 0, 1) and 3.0 (pid 2) with q = 2.0: every point
        // has 1-match difference exactly 1.0. The seeded down cursor meets
        // pid 1 before pid 0, so a pop-order answer to k = 1 would be
        // {1}; the canonical answer keeps the smallest (diff, pid) key.
        let mut cols = SortedColumns::from_rows(&[[1.0], [1.0], [3.0]]).unwrap();
        let (res, stats) = k_n_match_ad(&mut cols, &[2.0], 1, 1).unwrap();
        assert_eq!(res.ids(), vec![0]);
        // The drain reads the whole tie plateau: all three attributes.
        assert_eq!(stats.attributes_retrieved, 3);
        assert_eq!(stats.heap_pops, 3);
        let (res, _) = k_n_match_ad(&mut cols, &[2.0], 2, 1).unwrap();
        assert_eq!(res.ids(), vec![0, 1]);
        // A unique boundary still stops without draining anything: the
        // paper's worked example costs are asserted exactly in
        // `paper_running_example_2_2_match`.
    }

    #[test]
    fn eps_n_match_returns_all_within_threshold() {
        let mut cols = fig3();
        let q = [3.0, 7.0, 4.0];
        // 2-match differences: p1 2.6, p2 1.5, p3 1.0, p4 5.0, p5 3.5
        // (1-based). ε = 1.6 admits points 2 and 3.
        let (res, _) = eps_n_match_ad(&mut cols, &q, 1.6, 2).unwrap();
        assert_eq!(res.ids(), vec![2, 1]);
        // ε = 0.9 admits nothing.
        let (res, _) = eps_n_match_ad(&mut cols, &q, 0.9, 2).unwrap();
        assert!(res.entries.is_empty());
        // A huge ε admits everything, ranked.
        let (res, _) = eps_n_match_ad(&mut cols, &q, 100.0, 2).unwrap();
        assert_eq!(res.entries.len(), 5);
        let diffs = res.diffs();
        assert!(diffs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn eps_n_match_agrees_with_k_n_match_at_epsilon() {
        let mut cols = fig3();
        let q = [3.0, 7.0, 4.0];
        let (topk, _) = k_n_match_ad(&mut cols, &q, 3, 2).unwrap();
        let (by_eps, _) = eps_n_match_ad(&mut cols, &q, topk.epsilon(), 2).unwrap();
        assert_eq!(by_eps.ids(), topk.ids());
    }

    #[test]
    fn eps_validation() {
        let mut cols = fig3();
        assert_eq!(
            eps_n_match_ad(&mut cols, &[0.0; 3], -1.0, 1),
            Err(KnMatchError::InvalidEpsilon { eps: -1.0 })
        );
        assert!(matches!(
            eps_n_match_ad(&mut cols, &[0.0; 3], f64::NAN, 1),
            Err(KnMatchError::InvalidEpsilon { .. })
        ));
        assert!(matches!(
            eps_n_match_ad(&mut cols, &[0.0; 3], f64::INFINITY, 1),
            Err(KnMatchError::InvalidEpsilon { .. })
        ));
        // Parameter errors still report as such, not as epsilon problems.
        assert!(matches!(
            eps_n_match_ad(&mut cols, &[0.0; 3], 1.0, 4),
            Err(KnMatchError::InvalidRange { .. })
        ));
    }

    #[test]
    fn reused_scratch_is_identical_to_fresh_across_query_kinds() {
        let mut cols = fig3();
        let mut scratch = Scratch::new();
        let queries = [
            [3.0, 7.0, 4.0],
            [0.0, 0.0, 0.0],
            [9.0, 9.0, 9.0],
            [2.8, 5.5, 2.0],
        ];
        for q in &queries {
            let with = frequent_k_n_match_ad_with(&mut cols, q, 2, 1, 3, &mut scratch).unwrap();
            let fresh = frequent_k_n_match_ad(&mut cols, q, 2, 1, 3).unwrap();
            assert_eq!(with, fresh);
            let with = k_n_match_ad_with(&mut cols, q, 3, 2, &mut scratch).unwrap();
            let fresh = k_n_match_ad(&mut cols, q, 3, 2).unwrap();
            assert_eq!(with, fresh);
            let with = eps_n_match_ad_with(&mut cols, q, 2.0, 2, &mut scratch).unwrap();
            let fresh = eps_n_match_ad(&mut cols, q, 2.0, 2).unwrap();
            assert_eq!(with, fresh);
        }
        // A smaller source after a larger one must not see stale counters.
        let mut small = SortedColumns::from_rows(&[[1.0], [2.0]]).unwrap();
        let with = k_n_match_ad_with(&mut small, &[1.4], 1, 1, &mut scratch).unwrap();
        let fresh = k_n_match_ad(&mut small, &[1.4], 1, 1).unwrap();
        assert_eq!(with, fresh);
    }

    #[test]
    fn k_equals_cardinality_ranks_everything() {
        let mut cols = fig3();
        let (res, stats) = k_n_match_ad(&mut cols, &[3.0, 7.0, 4.0], 5, 2).unwrap();
        assert_eq!(res.entries.len(), 5);
        assert!(stats.attributes_retrieved <= 15);
        let diffs = res.diffs();
        assert!(diffs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn query_outside_data_range_works() {
        let mut cols = fig3();
        // All data below the query in every dimension: only down-cursors live.
        let (res, _) = k_n_match_ad(&mut cols, &[100.0, 100.0, 100.0], 1, 3).unwrap();
        assert_eq!(res.ids(), vec![3]); // (9,9,9) is the closest everywhere
                                        // And from below.
        let (res, _) = k_n_match_ad(&mut cols, &[-5.0, -5.0, -5.0], 1, 3).unwrap();
        assert_eq!(res.ids(), vec![0]);
    }

    #[test]
    fn validation_errors() {
        let mut cols = fig3();
        assert!(matches!(
            k_n_match_ad(&mut cols, &[1.0], 1, 1),
            Err(KnMatchError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            k_n_match_ad(&mut cols, &[1.0, 1.0, 1.0], 0, 1),
            Err(KnMatchError::InvalidK { .. })
        ));
        assert!(matches!(
            k_n_match_ad(&mut cols, &[1.0, 1.0, 1.0], 6, 1),
            Err(KnMatchError::InvalidK { .. })
        ));
        assert!(matches!(
            k_n_match_ad(&mut cols, &[1.0, 1.0, 1.0], 1, 0),
            Err(KnMatchError::InvalidRange { .. })
        ));
        assert!(matches!(
            k_n_match_ad(&mut cols, &[1.0, 1.0, 1.0], 1, 4),
            Err(KnMatchError::InvalidRange { .. })
        ));
        assert!(matches!(
            frequent_k_n_match_ad(&mut cols, &[1.0, 1.0, 1.0], 1, 3, 2),
            Err(KnMatchError::InvalidRange { .. })
        ));
        assert!(matches!(
            k_n_match_ad(&mut cols, &[1.0, f64::NAN, 1.0], 1, 1),
            Err(KnMatchError::NonFiniteValue { dim: 1 })
        ));
    }

    #[test]
    fn single_point_database() {
        let mut cols = SortedColumns::from_rows(&[[0.5, 0.5]]).unwrap();
        let (res, _) = k_n_match_ad(&mut cols, &[0.0, 1.0], 1, 2).unwrap();
        assert_eq!(res.ids(), vec![0]);
        assert!((res.epsilon() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn exact_match_has_zero_epsilon() {
        let mut cols = fig3();
        let (res, _) = k_n_match_ad(&mut cols, &[2.8, 5.5, 2.0], 1, 3).unwrap();
        assert_eq!(res.ids(), vec![1]);
        assert_eq!(res.epsilon(), 0.0);
    }

    #[test]
    fn stats_fraction() {
        let s = AdStats {
            attributes_retrieved: 30,
            locate_probes: 3,
            heap_pops: 25,
        };
        assert!((s.retrieved_fraction(10, 10) - 0.3).abs() < 1e-12);
        assert_eq!(AdStats::default().retrieved_fraction(0, 0), 0.0);
    }
}
