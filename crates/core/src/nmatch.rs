//! The n-match difference (Definition 1 of the paper) and helpers.
//!
//! For points `P` and `Q`, let `δ_i = |p_i − q_i|`. Sorting `{δ_1, …, δ_d}`
//! ascending yields `{δ'_1, …, δ'_d}`; `δ'_n` is the **n-match difference**
//! of `P` with regard to `Q`. It is symmetric in `P`/`Q`, monotone
//! non-decreasing in `n`, but **not** a metric (the triangle inequality
//! fails — see the paper's F/G/H example reproduced in the tests) and not a
//! monotone aggregation function in Fagin's sense (see the tests for the
//! paper's Figure 3 counterexample).

/// Returns the n-match difference of `p` with regard to `q` (1-based `n`).
///
/// Allocates a scratch buffer; prefer [`nmatch_difference_with_buf`] in hot
/// loops.
///
/// # Panics
///
/// Panics when `p.len() != q.len()`, or `n` is not in `1..=d`.
///
/// # Examples
///
/// ```
/// use knmatch_core::nmatch_difference;
///
/// // diffs = [0.1, 0.5, 2.0]; the 2-match difference is 0.5.
/// assert_eq!(nmatch_difference(&[1.1, 3.5, 6.0], &[1.0, 3.0, 4.0], 2), 0.5);
/// ```
pub fn nmatch_difference(p: &[f64], q: &[f64], n: usize) -> f64 {
    let mut buf = Vec::with_capacity(p.len());
    nmatch_difference_with_buf(p, q, n, &mut buf)
}

/// [`nmatch_difference`] reusing a caller-provided scratch buffer.
///
/// The buffer is cleared and refilled; capacity is reused across calls.
///
/// # Panics
///
/// Same conditions as [`nmatch_difference`].
pub fn nmatch_difference_with_buf(p: &[f64], q: &[f64], n: usize, buf: &mut Vec<f64>) -> f64 {
    assert_eq!(p.len(), q.len(), "points must share dimensionality");
    assert!(
        n >= 1 && n <= p.len(),
        "n must be in 1..=d (got {n}, d={})",
        p.len()
    );
    buf.clear();
    buf.extend(p.iter().zip(q).map(|(a, b)| (a - b).abs()));
    // Selection is O(d); full sorts are reserved for the all-n variant.
    let (_, nth, _) = buf.select_nth_unstable_by(n - 1, f64::total_cmp);
    *nth
}

/// Returns all d per-dimension differences of `p` vs `q`, sorted ascending.
///
/// Index `n − 1` of the result is the n-match difference, so one call serves
/// every `n` of a frequent k-n-match range.
///
/// # Panics
///
/// Panics when `p.len() != q.len()`.
pub fn sorted_differences(p: &[f64], q: &[f64]) -> Vec<f64> {
    let mut buf = Vec::with_capacity(p.len());
    sorted_differences_with_buf(p, q, &mut buf);
    buf
}

/// [`sorted_differences`] writing into a caller-provided buffer.
///
/// # Panics
///
/// Panics when `p.len() != q.len()`.
pub fn sorted_differences_with_buf(p: &[f64], q: &[f64], buf: &mut Vec<f64>) {
    assert_eq!(p.len(), q.len(), "points must share dimensionality");
    buf.clear();
    buf.extend(p.iter().zip(q).map(|(a, b)| (a - b).abs()));
    buf.sort_unstable_by(f64::total_cmp);
}

/// Counts the dimensions in which `p` matches `q` within tolerance `eps`,
/// i.e. `|p_i − q_i| <= eps`.
///
/// This is the paper's flexible match scheme: with the answer-determined
/// threshold `ε`, a point is an n-match iff it matches in at least `n`
/// dimensions.
///
/// # Panics
///
/// Panics when `p.len() != q.len()`.
pub fn matching_dimensions(p: &[f64], q: &[f64], eps: f64) -> usize {
    assert_eq!(p.len(), q.len(), "points must share dimensionality");
    p.iter()
        .zip(q)
        .filter(|(a, b)| (*a - *b).abs() <= eps)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nth_smallest_difference() {
        let p = [1.1, 100.0, 1.2, 1.6];
        let q = [1.0, 1.0, 1.0, 1.0];
        // diffs sorted: [0.1, 0.2, 0.6, 99.0]
        assert!((nmatch_difference(&p, &q, 1) - 0.1).abs() < 1e-12);
        assert!((nmatch_difference(&p, &q, 2) - 0.2).abs() < 1e-12);
        assert!((nmatch_difference(&p, &q, 3) - 0.6).abs() < 1e-12);
        assert!((nmatch_difference(&p, &q, 4) - 99.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric_in_p_and_q() {
        let p = [0.3, 0.9, 0.4];
        let q = [0.5, 0.1, 0.7];
        for n in 1..=3 {
            assert_eq!(nmatch_difference(&p, &q, n), nmatch_difference(&q, &p, n));
        }
    }

    #[test]
    fn monotone_in_n() {
        let p = [0.2, 0.8, 0.5, 0.1];
        let q = [0.9, 0.15, 0.55, 0.05];
        let mut prev = 0.0;
        for n in 1..=4 {
            let d = nmatch_difference(&p, &q, n);
            assert!(d >= prev, "n-match difference must be non-decreasing in n");
            prev = d;
        }
    }

    #[test]
    fn paper_triangle_inequality_counterexample() {
        // Section 2.1: F(0.1,0.5,0.9), G(0.1,0.1,0.1), H(0.5,0.5,0.5);
        // 1-match differences FG=0, FH=0, GH=0.4 — triangle inequality fails.
        let f = [0.1, 0.5, 0.9];
        let g = [0.1, 0.1, 0.1];
        let h = [0.5, 0.5, 0.5];
        let fg = nmatch_difference(&f, &g, 1);
        let fh = nmatch_difference(&f, &h, 1);
        let gh = nmatch_difference(&g, &h, 1);
        assert_eq!(fg, 0.0);
        assert_eq!(fh, 0.0);
        assert!((gh - 0.4).abs() < 1e-12);
        assert!(fg + fh < gh, "n-match difference is not a metric");
    }

    #[test]
    fn paper_fig3_non_monotone_aggregation() {
        // Figure 3 discussion: point 1 is smaller than point 2 in every
        // dimension yet has a LARGER 1-match difference w.r.t. (3, 7, 4);
        // point 4 is larger in every dimension, also larger 1-match diff.
        let q = [3.0, 7.0, 4.0];
        let p1 = [0.4, 1.0, 1.0];
        let p2 = [2.8, 5.5, 2.0];
        let p4 = [9.0, 9.0, 9.0];
        assert!(p1.iter().zip(&p2).all(|(a, b)| a < b));
        assert!(p4.iter().zip(&p2).all(|(a, b)| a > b));
        let d1 = nmatch_difference(&p1, &q, 1);
        let d2 = nmatch_difference(&p2, &q, 1);
        let d4 = nmatch_difference(&p4, &q, 1);
        assert!((d1 - 2.6).abs() < 1e-12);
        assert!((d2 - 0.2).abs() < 1e-12);
        assert!((d4 - 2.0).abs() < 1e-12);
        assert!(d1 > d2 && d4 > d2, "n-match difference is not monotone");
    }

    #[test]
    fn sorted_differences_gives_every_n() {
        let p = [1.0, 5.0, 2.0];
        let q = [2.0, 2.0, 2.0];
        let all = sorted_differences(&p, &q);
        assert_eq!(all, vec![0.0, 1.0, 3.0]);
        for n in 1..=3 {
            assert_eq!(all[n - 1], nmatch_difference(&p, &q, n));
        }
    }

    #[test]
    fn matching_dimensions_counts_within_eps() {
        let q = [1.0; 10];
        let p3 = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 2.0, 100.0, 2.0, 2.0];
        assert_eq!(matching_dimensions(&p3, &q, 0.0), 6); // Fig. 1: obj 3 is the 6-match, ε=0
        assert_eq!(matching_dimensions(&p3, &q, 1.0), 9);
        let p1 = [1.1, 100.0, 1.2, 1.6, 1.6, 1.1, 1.2, 1.2, 1.0, 1.0];
        assert_eq!(matching_dimensions(&p1, &q, 0.2), 7); // Fig. 1: obj 1 is the 7-match, ε=0.2
    }

    #[test]
    #[should_panic(expected = "n must be in 1..=d")]
    fn rejects_n_zero() {
        nmatch_difference(&[1.0], &[2.0], 0);
    }

    #[test]
    #[should_panic(expected = "n must be in 1..=d")]
    fn rejects_n_above_d() {
        nmatch_difference(&[1.0], &[2.0], 2);
    }

    #[test]
    #[should_panic(expected = "share dimensionality")]
    fn rejects_mismatched_lengths() {
        nmatch_difference(&[1.0, 2.0], &[2.0], 1);
    }
}
