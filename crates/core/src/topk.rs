//! A bounded top-k collector over `(score, point id)` pairs.
//!
//! Shared by the naive scan, the kNN baseline and the VA-file competitor:
//! keeps the `k` smallest scores seen so far and exposes the current k-th
//! smallest as a pruning threshold.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::point::PointId;
use crate::result::{KnMatchResult, MatchEntry};

/// Max-heap entry ordering by `(score, pid)` so the worst answer pops first.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Worst {
    score: f64,
    pid: PointId,
}

impl Eq for Worst {}

impl PartialOrd for Worst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Worst {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .total_cmp(&other.score)
            .then_with(|| self.pid.cmp(&other.pid))
    }
}

/// Keeps the `k` smallest `(score, pid)` pairs offered, breaking score ties
/// by ascending point id.
///
/// # Examples
///
/// ```
/// use knmatch_core::topk::TopK;
///
/// let mut t = TopK::new(2);
/// t.offer(0, 0.9);
/// t.offer(1, 0.1);
/// t.offer(2, 0.5);
/// assert_eq!(t.threshold(), Some(0.5));
/// let best: Vec<u32> = t.into_sorted().into_iter().map(|(pid, _)| pid).collect();
/// assert_eq!(best, vec![1, 2]);
/// ```
#[derive(Debug)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Worst>,
}

impl TopK {
    /// Creates a collector for the `k` smallest scores.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "top-k needs k >= 1");
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers a candidate; it is kept iff it beats the current k-th best.
    pub fn offer(&mut self, pid: PointId, score: f64) {
        let cand = Worst { score, pid };
        if self.heap.len() < self.k {
            self.heap.push(cand);
        } else if let Some(top) = self.heap.peek() {
            if cand < *top {
                self.heap.pop();
                self.heap.push(cand);
            }
        }
    }

    /// The current k-th smallest score once `k` candidates have been seen —
    /// any candidate with a larger score cannot enter the answer. `None`
    /// while fewer than `k` candidates were offered.
    pub fn threshold(&self) -> Option<f64> {
        if self.heap.len() == self.k {
            self.heap.peek().map(|w| w.score)
        } else {
            None
        }
    }

    /// Number of candidates currently held (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no candidate was offered yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drains into `(pid, score)` pairs sorted by ascending `(score, pid)`.
    pub fn into_sorted(self) -> Vec<(PointId, f64)> {
        let mut v: Vec<(PointId, f64)> = self.heap.into_iter().map(|w| (w.pid, w.score)).collect();
        v.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Drains into a [`KnMatchResult`] for the given `n`.
    pub fn into_result(self, n: usize) -> KnMatchResult {
        KnMatchResult {
            n,
            entries: self
                .into_sorted()
                .into_iter()
                .map(|(pid, diff)| MatchEntry { pid, diff })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_smallest() {
        let mut t = TopK::new(3);
        for (pid, s) in [(0, 5.0), (1, 1.0), (2, 3.0), (3, 4.0), (4, 2.0)] {
            t.offer(pid, s);
        }
        let ids: Vec<PointId> = t.into_sorted().into_iter().map(|(p, _)| p).collect();
        assert_eq!(ids, vec![1, 4, 2]);
    }

    #[test]
    fn threshold_progression() {
        let mut t = TopK::new(2);
        assert_eq!(t.threshold(), None);
        assert!(t.is_empty());
        t.offer(0, 0.5);
        assert_eq!(t.threshold(), None);
        t.offer(1, 0.2);
        assert_eq!(t.threshold(), Some(0.5));
        t.offer(2, 0.1);
        assert_eq!(t.threshold(), Some(0.2));
        t.offer(3, 0.9);
        assert_eq!(t.threshold(), Some(0.2));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn score_ties_keep_smaller_pid() {
        let mut t = TopK::new(1);
        t.offer(7, 1.0);
        t.offer(2, 1.0);
        assert_eq!(t.into_sorted(), vec![(2, 1.0)]);
        // Order of arrival must not matter.
        let mut t = TopK::new(1);
        t.offer(2, 1.0);
        t.offer(7, 1.0);
        assert_eq!(t.into_sorted(), vec![(2, 1.0)]);
    }

    #[test]
    fn into_result_sets_n() {
        let mut t = TopK::new(1);
        t.offer(4, 0.25);
        let r = t.into_result(3);
        assert_eq!(r.n, 3);
        assert_eq!(r.entries, vec![MatchEntry { pid: 4, diff: 0.25 }]);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_panics() {
        let _ = TopK::new(0);
    }
}
