//! Epoch-versioned MVCC index: live ingestion served concurrently with
//! queries (DESIGN.md §16).
//!
//! [`DynamicColumns`](crate::DynamicColumns) proved the ordered-insert
//! column maintenance; this module promotes the idea to a proper
//! multi-version index built from three pieces:
//!
//! - an in-memory **delta** of keyed rows, sorted by key, that receives
//!   every insert and delete;
//! - immutable **sealed runs** — each a [`SortedColumns`] built over a
//!   key-sorted row block, plus a per-run tombstone list for points
//!   deleted after sealing;
//! - a monotonically increasing **epoch**, bumped by every logical
//!   mutation.
//!
//! After each mutation the writer publishes an immutable
//! [`EpochSnapshot`] view; readers pin one with
//! [`VersionedIndex::snapshot`] (an `Arc` clone behind a briefly-held
//! lock) and run the unchanged AD core against that frozen view for as
//! long as they like. Writers never invalidate a pinned snapshot — they
//! only publish newer ones — so **readers never block on writers** and a
//! batch's answers are a pure function of the pinned epoch's live rows.
//!
//! ## Exactness across runs
//!
//! A query runs independently against every run and the results merge
//! with the same exact `(diff, pid)` rule the sharded engine uses
//! (DESIGN.md §9), with two twists:
//!
//! 1. **Keys are the global pids.** Every run is built with slot order =
//!    ascending key order, so a run's local pid order is monotone in key
//!    order and the per-run `(diff, local pid)` top-k equals the
//!    `(diff, key)` top-k. Remapping local pids to keys therefore
//!    preserves the canonical order and the cross-run merge stays exact
//!    over the global key space.
//! 2. **Tombstones inflate k.** A run with `t` tombstones answers a
//!    k-n-match with `k' = min(run cardinality, k + t)`: the top-`k'`
//!    entries minus at most `t` dead ones still contain the run's top-k
//!    *live* points, so filtering tombstones after the per-run walk
//!    loses nothing. Frequent queries inflate each per-n level the same
//!    way; ε queries never truncate, so they only filter.
//!
//! ## Lifecycle
//!
//! The delta is rebuilt into a one-run [`SortedColumns`] on every
//! mutation (cost `O(|delta| · d · log |delta|)`, bounded because the
//! delta **auto-seals** into a run at `merge_threshold` rows). Sealing
//! is O(1) — the freshly built delta run simply becomes immutable.
//! [`VersionWriter::maintain`] compacts the run list (merging runs and
//! dropping tombstoned rows) once it grows past the fanout or turns
//! mostly dead; servers schedule it on their executor pools after
//! writes. Compaction builds the merged run **outside** both locks and
//! installs it only if the captured runs are still in place, folding in
//! any tombstones that arrived mid-build — concurrent writers are never
//! stalled by a merge, and a compacted view answers bit-identically to
//! the uncompacted one at the same epoch.

use std::sync::{Arc, Mutex, RwLock};

use crate::ad::{validate_eps, validate_params, AdStats};
use crate::columns::SortedColumns;
use crate::engine::{
    execute_batch_query, isolate_panic, note_outcome, run_batch, BatchAnswer, BatchEngine,
    BatchOptions, BatchQuery,
};
use crate::error::{KnMatchError, Result};
use crate::point::{validate_finite, Dataset, PointId};
use crate::result::KnMatchResult;
use crate::scratch::Scratch;
use crate::sharded::{merge_shards, ShardedOutcome};

/// Default number of delta rows that triggers an automatic seal.
pub const DEFAULT_MERGE_THRESHOLD: usize = 1024;

/// Sealed-run count past which [`VersionWriter::maintain`] compacts.
const MAX_RUNS: usize = 8;

/// A point-in-time summary of a versioned index, reported over the wire
/// in `STATS` and by the `EPOCH` verb.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VersionStats {
    /// Version of the logical content; bumped by every insert/remove.
    pub epoch: u64,
    /// Live (non-tombstoned) points across the delta and all runs.
    pub live: usize,
    /// Rows currently in the unsealed delta.
    pub delta_len: usize,
    /// Sealed immutable runs.
    pub runs: usize,
    /// Tombstones across all sealed runs.
    pub tombstones: usize,
    /// Inserts accepted over the index lifetime.
    pub inserts: u64,
    /// Removes accepted over the index lifetime.
    pub removes: u64,
    /// Delta seals performed (explicit and automatic).
    pub seals: u64,
    /// Run compactions completed.
    pub merges: u64,
}

/// The object-safe write surface of a versioned engine — what servers
/// dispatch the `INSERT`/`DELETE`/`SEAL`/`EPOCH` verbs through (see
/// [`BatchEngine::writer`]).
pub trait VersionWriter: Sync {
    /// Inserts (or updates) the point stored under `key`, returning the
    /// new epoch.
    ///
    /// # Errors
    ///
    /// Rejects wrong-width or non-finite points; see [`KnMatchError`].
    fn insert(&self, key: PointId, point: &[f64]) -> Result<u64>;

    /// Removes the point stored under `key`, returning the new epoch.
    ///
    /// # Errors
    ///
    /// [`KnMatchError::KeyNotFound`] when `key` holds no live point.
    fn remove(&self, key: PointId) -> Result<u64>;

    /// Seals the current delta into an immutable run (a no-op on an
    /// empty delta) and returns the current epoch.
    ///
    /// # Errors
    ///
    /// Infallible today; the `Result` keeps the wire surface uniform.
    fn seal(&self) -> Result<u64>;

    /// Whether [`VersionWriter::maintain`] would do work right now.
    fn needs_maintenance(&self) -> bool;

    /// Runs one maintenance step (compacting the run list) when due.
    /// Returns whether a compaction was installed. Safe to call from a
    /// background thread while reads and writes proceed.
    ///
    /// # Errors
    ///
    /// Propagates row-validation failures from the rebuild (unreachable
    /// for rows that were accepted by [`VersionWriter::insert`]).
    fn maintain(&self) -> Result<bool>;

    /// The current epoch.
    fn epoch(&self) -> u64;

    /// Counters describing the index right now.
    fn version_stats(&self) -> VersionStats;
}

/// A versioned engine: the mutation surface plus typed snapshot access.
/// This is the API split the live-ingestion design rests on — queries
/// run only against a [`Self::Snapshot`] (a frozen [`BatchEngine`]),
/// never against the mutable index state itself.
pub trait VersionedEngine: VersionWriter {
    /// The frozen view queries run against.
    type Snapshot: BatchEngine;

    /// Pins the current epoch. The returned snapshot stays valid and
    /// unchanged no matter how many writes land afterwards.
    fn snapshot(&self) -> Self::Snapshot;
}

/// One immutable sealed run: rows in ascending key order, their sorted
/// per-dimension columns, and the key list mapping local pids back to
/// keys.
#[derive(Debug)]
struct SealedRun {
    /// Keys in ascending order; index = the run-local pid.
    keys: Vec<PointId>,
    /// Row-major coordinates in the same order (kept for compaction and
    /// oracle extraction).
    coords: Vec<f64>,
    /// The sorted-dimension organisation the AD core walks.
    cols: SortedColumns,
}

impl SealedRun {
    /// Builds a run from key-ascending rows. `keys` must be strictly
    /// ascending and `coords.len() == keys.len() * dims`.
    fn build(
        keys: Vec<PointId>,
        coords: Vec<f64>,
        dims: usize,
        workers: usize,
    ) -> Result<Arc<Self>> {
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]));
        let mut ds = Dataset::with_capacity(dims, keys.len())?;
        for row in coords.chunks_exact(dims) {
            ds.push(row)?;
        }
        let cols = SortedColumns::build_with_workers(&ds, workers);
        Ok(Arc::new(SealedRun { keys, coords, cols }))
    }

    fn len(&self) -> usize {
        self.keys.len()
    }
}

/// A run plus the tombstones that apply to it in one frozen view.
#[derive(Debug, Clone)]
struct SnapRun {
    run: Arc<SealedRun>,
    /// Keys deleted from this run, ascending. Empty for the delta run.
    tombs: Arc<Vec<PointId>>,
}

impl SnapRun {
    fn live(&self) -> usize {
        self.run.len() - self.tombs.len()
    }
}

/// The immutable payload behind one published epoch.
#[derive(Debug)]
struct ViewInner {
    dims: usize,
    epoch: u64,
    live: usize,
    runs: Vec<SnapRun>,
}

/// A frozen, queryable view of a [`VersionedIndex`] at one epoch.
///
/// Cloning is an `Arc` clone; every clone pins the same version. The
/// snapshot implements [`BatchEngine`] with the sharded outcome type —
/// each run behaves like a shard and per-run [`AdStats`] ride along.
#[derive(Debug, Clone)]
pub struct EpochSnapshot {
    inner: Arc<ViewInner>,
    workers: usize,
}

impl EpochSnapshot {
    /// The epoch this snapshot pins.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch
    }

    /// Live points visible in this snapshot.
    pub fn live(&self) -> usize {
        self.inner.live
    }

    /// Dimensionality of the indexed space.
    pub fn dims(&self) -> usize {
        self.inner.dims
    }

    /// Runs (sealed + delta) this snapshot reads.
    pub fn run_count(&self) -> usize {
        self.inner.runs.len()
    }

    /// Every live `(key, row)` in ascending key order — the from-scratch
    /// rebuild oracle's input: building a [`SortedColumns`] over exactly
    /// these rows and mapping its dense pids through the key list must
    /// reproduce this snapshot's answers bit-identically.
    pub fn live_rows(&self) -> Vec<(PointId, Vec<f64>)> {
        let dims = self.inner.dims;
        let mut rows: Vec<(PointId, Vec<f64>)> = Vec::with_capacity(self.inner.live);
        for sr in &self.inner.runs {
            for (i, &key) in sr.run.keys.iter().enumerate() {
                if sr.tombs.binary_search(&key).is_err() {
                    rows.push((key, sr.run.coords[i * dims..(i + 1) * dims].to_vec()));
                }
            }
        }
        rows.sort_unstable_by_key(|&(key, _)| key);
        rows
    }

    fn validate(&self, query: &BatchQuery) -> Result<()> {
        let d = self.inner.dims;
        let c = self.inner.live;
        match query {
            BatchQuery::KnMatch { query, k, n } => validate_params(query, d, c, *k, *n, *n),
            BatchQuery::Frequent { query, k, n0, n1 } => validate_params(query, d, c, *k, *n0, *n1),
            BatchQuery::EpsMatch { query, eps, n } => {
                validate_params(query, d, c, 1, *n, *n)?;
                validate_eps(*eps)
            }
        }
    }

    /// Runs `query` against run `ri` with `k` inflated by the run's
    /// tombstone count, then remaps local pids to keys and filters the
    /// dead entries — the per-run half of the exactness argument above.
    fn run_run(
        &self,
        query: &BatchQuery,
        ri: usize,
        scratch: &mut Scratch,
    ) -> Result<(BatchAnswer, AdStats)> {
        let sr = &self.inner.runs[ri];
        let card = sr.run.len();
        let t = sr.tombs.len();
        let local = match query {
            BatchQuery::KnMatch { query, k, n } => BatchQuery::KnMatch {
                query: query.clone(),
                k: (k + t).min(card),
                n: *n,
            },
            BatchQuery::Frequent { query, k, n0, n1 } => BatchQuery::Frequent {
                query: query.clone(),
                k: (k + t).min(card),
                n0: *n0,
                n1: *n1,
            },
            BatchQuery::EpsMatch { .. } => query.clone(),
        };
        isolate_panic(|| {
            let mut view: &SortedColumns = &sr.run.cols;
            let (answer, stats) = execute_batch_query(&mut view, &local, scratch)?;
            Ok((globalise(answer, sr, query), stats))
        })
    }
}

/// Remaps a per-run answer's local pids to keys, drops tombstoned
/// entries and re-truncates k-bounded lists to the caller's `k`.
/// Key remapping is monotone (keys ascend with local pid), so the
/// canonical `(diff, pid)` order survives untouched.
fn globalise(answer: BatchAnswer, sr: &SnapRun, query: &BatchQuery) -> BatchAnswer {
    let remap = |r: &mut KnMatchResult, truncate: Option<usize>| {
        for e in &mut r.entries {
            e.pid = sr.run.keys[e.pid as usize];
        }
        if !sr.tombs.is_empty() {
            r.entries
                .retain(|e| sr.tombs.binary_search(&e.pid).is_err());
        }
        if let Some(k) = truncate {
            r.entries.truncate(k);
        }
    };
    match answer {
        BatchAnswer::KnMatch(mut r) => {
            let k = match query {
                BatchQuery::KnMatch { k, .. } => Some(*k),
                _ => None,
            };
            remap(&mut r, k);
            BatchAnswer::KnMatch(r)
        }
        BatchAnswer::EpsMatch(mut r) => {
            remap(&mut r, None);
            BatchAnswer::EpsMatch(r)
        }
        BatchAnswer::Frequent(mut f) => {
            let k = match query {
                BatchQuery::Frequent { k, .. } => Some(*k),
                _ => None,
            };
            for lvl in &mut f.per_n {
                remap(lvl, k);
            }
            // The ranked entries are recomputed by the cross-run merge
            // from the per-n sets; a per-run ranking is meaningless.
            f.entries.clear();
            BatchAnswer::Frequent(f)
        }
    }
}

impl BatchEngine for EpochSnapshot {
    type Outcome = ShardedOutcome;

    fn workers(&self) -> usize {
        self.workers
    }

    /// Runs the batch against this frozen view: every `(query, run)`
    /// pair is an independent task on the claim-chunk pool, and per-run
    /// answers merge with the exact `(diff, key)` rule.
    fn run_with(&self, queries: &[BatchQuery], opts: &BatchOptions) -> Vec<Result<ShardedOutcome>> {
        let r_count = self.inner.runs.len();
        let validity: Vec<Result<()>> = queries.iter().map(|q| self.validate(q)).collect();
        let mut tasks = Vec::new();
        for (qi, v) in validity.iter().enumerate() {
            if v.is_ok() {
                tasks.extend((0..r_count).map(|r| (qi, r)));
            }
        }
        let control = opts.arm();
        let outs = run_batch(
            self.workers,
            tasks.len(),
            || control.scratch(),
            |scratch, t| {
                let (qi, r) = tasks[t];
                let out = self.run_run(&queries[qi], r, scratch);
                note_outcome(&control, &out);
                out
            },
        );
        let mut outs = outs.into_iter();
        validity
            .into_iter()
            .enumerate()
            .map(|(qi, v)| {
                v.and_then(|()| {
                    let mut parts = Vec::with_capacity(r_count);
                    let mut first_err = None;
                    for part in outs.by_ref().take(r_count) {
                        match part {
                            Ok(x) => parts.push(x),
                            Err(e) => {
                                first_err.get_or_insert(e);
                            }
                        }
                    }
                    match first_err {
                        Some(e) => Err(e),
                        None => Ok(merge_shards(&queries[qi], parts)),
                    }
                })
            })
            .collect()
    }
}

/// Mutable writer-side state, guarded by one mutex. Holding it never
/// blocks readers — they only touch the published view.
#[derive(Debug)]
struct WriterState {
    epoch: u64,
    /// Delta keys, ascending.
    delta_keys: Vec<PointId>,
    /// Delta rows, row-major, parallel to `delta_keys`.
    delta_coords: Vec<f64>,
    /// Sealed runs, oldest first.
    runs: Vec<SnapRun>,
    inserts: u64,
    removes: u64,
    seals: u64,
    merges: u64,
}

impl WriterState {
    fn delta_len(&self) -> usize {
        self.delta_keys.len()
    }

    fn live(&self) -> usize {
        self.delta_len() + self.runs.iter().map(SnapRun::live).sum::<usize>()
    }

    fn tombstones(&self) -> usize {
        self.runs.iter().map(|r| r.tombs.len()).sum()
    }

    /// Whether `key` is live in some sealed run; returns the run index.
    fn find_in_runs(&self, key: PointId) -> Option<usize> {
        self.runs.iter().position(|sr| {
            sr.run.keys.binary_search(&key).is_ok() && sr.tombs.binary_search(&key).is_err()
        })
    }

    /// Adds `key` to run `ri`'s tombstones (clone-on-write: pinned
    /// snapshots keep the old list).
    fn tombstone(&mut self, ri: usize, key: PointId) {
        let mut tombs: Vec<PointId> = self.runs[ri].tombs.as_ref().clone();
        let pos = tombs.binary_search(&key).unwrap_err();
        tombs.insert(pos, key);
        self.runs[ri].tombs = Arc::new(tombs);
    }
}

/// The epoch-versioned MVCC index: delta + sealed runs + published
/// snapshots. All methods take `&self`; writes serialise on an internal
/// mutex while readers pin immutable [`EpochSnapshot`]s.
///
/// # Examples
///
/// ```
/// use knmatch_core::{
///     BatchEngine, BatchOutcome, BatchQuery, VersionWriter, VersionedEngine, VersionedIndex,
/// };
///
/// let idx = VersionedIndex::new(2, 1, 4).unwrap();
/// for (key, row) in [(10, [0.1, 0.9]), (20, [0.5, 0.4]), (30, [0.9, 0.2])] {
///     idx.insert(key, &row).unwrap();
/// }
/// let pinned = idx.snapshot();
/// idx.remove(20).unwrap();
/// // The pinned snapshot still sees key 20; a fresh one does not.
/// assert_eq!(pinned.live(), 3);
/// assert_eq!(idx.snapshot().live(), 2);
/// let q = BatchQuery::KnMatch { query: vec![0.5, 0.5], k: 1, n: 2 };
/// let got = pinned.run(&[q]).remove(0).unwrap();
/// let knmatch_core::BatchAnswer::KnMatch(r) = got.answer() else { unreachable!() };
/// assert_eq!(r.ids(), vec![20]);
/// ```
#[derive(Debug)]
pub struct VersionedIndex {
    dims: usize,
    workers: usize,
    merge_threshold: usize,
    writer: Mutex<WriterState>,
    published: RwLock<Arc<ViewInner>>,
}

impl VersionedIndex {
    /// An empty index over `dims` dimensions. `workers` drives both
    /// snapshot query parallelism and run builds; `merge_threshold` (≥ 1,
    /// see [`DEFAULT_MERGE_THRESHOLD`]) bounds the delta before it
    /// auto-seals.
    ///
    /// # Errors
    ///
    /// [`KnMatchError::ZeroDimensions`] when `dims == 0`.
    pub fn new(dims: usize, workers: usize, merge_threshold: usize) -> Result<Self> {
        if dims == 0 {
            return Err(KnMatchError::ZeroDimensions);
        }
        let state = WriterState {
            epoch: 0,
            delta_keys: Vec::new(),
            delta_coords: Vec::new(),
            runs: Vec::new(),
            inserts: 0,
            removes: 0,
            seals: 0,
            merges: 0,
        };
        let view = Arc::new(ViewInner {
            dims,
            epoch: 0,
            live: 0,
            runs: Vec::new(),
        });
        Ok(VersionedIndex {
            dims,
            workers: workers.max(1),
            merge_threshold: merge_threshold.max(1),
            writer: Mutex::new(state),
            published: RwLock::new(view),
        })
    }

    /// Seeds an index from a dataset as one sealed run, with keys equal
    /// to the dataset's pids — a served static file becomes epoch 0 of a
    /// live index.
    ///
    /// # Errors
    ///
    /// Propagates [`VersionedIndex::new`] validation; the dataset may be
    /// empty (the index simply starts with no runs).
    pub fn from_dataset(ds: &Dataset, workers: usize, merge_threshold: usize) -> Result<Self> {
        let idx = Self::new(ds.dims(), workers, merge_threshold)?;
        if !ds.is_empty() {
            let keys: Vec<PointId> = (0..ds.len() as PointId).collect();
            let run = SealedRun::build(keys, ds.as_flat().to_vec(), ds.dims(), idx.workers)?;
            {
                let mut w = idx.lock_writer();
                w.runs.push(SnapRun {
                    run,
                    tombs: Arc::new(Vec::new()),
                });
                idx.publish(&w);
            }
        }
        Ok(idx)
    }

    /// Dimensionality of the indexed space.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Live points in the current epoch.
    pub fn live(&self) -> usize {
        self.published.read().expect("published lock poisoned").live
    }

    /// The delta size that triggers an automatic seal.
    pub fn merge_threshold(&self) -> usize {
        self.merge_threshold
    }

    fn lock_writer(&self) -> std::sync::MutexGuard<'_, WriterState> {
        self.writer.lock().expect("writer lock poisoned")
    }

    /// Builds and publishes the view for the writer's current state.
    /// Only the delta run is (re)built; sealed runs are shared by `Arc`.
    fn publish(&self, w: &WriterState) {
        let mut runs: Vec<SnapRun> = w.runs.clone();
        if !w.delta_keys.is_empty() {
            let run = SealedRun::build(
                w.delta_keys.clone(),
                w.delta_coords.clone(),
                self.dims,
                self.workers,
            )
            .expect("delta rows were validated on insert");
            runs.push(SnapRun {
                run,
                tombs: Arc::new(Vec::new()),
            });
        }
        let live = runs.iter().map(SnapRun::live).sum();
        let view = Arc::new(ViewInner {
            dims: self.dims,
            epoch: w.epoch,
            live,
            runs,
        });
        *self.published.write().expect("published lock poisoned") = view;
    }

    /// Moves the delta into a sealed run. O(1): the published view has
    /// already built the delta's columns; this rebuilds them once more
    /// only because the writer keeps raw rows (cheap relative to the
    /// mutation that filled the delta).
    fn seal_locked(&self, w: &mut WriterState) -> Result<()> {
        if w.delta_keys.is_empty() {
            return Ok(());
        }
        let keys = std::mem::take(&mut w.delta_keys);
        let coords = std::mem::take(&mut w.delta_coords);
        let run = SealedRun::build(keys, coords, self.dims, self.workers)?;
        w.runs.push(SnapRun {
            run,
            tombs: Arc::new(Vec::new()),
        });
        w.seals += 1;
        Ok(())
    }

    /// One compaction pass: merge every sealed run into a single run,
    /// dropping tombstoned rows. The expensive rebuild happens outside
    /// both locks; installation re-checks that the captured runs are
    /// still current and folds in tombstones that landed mid-build.
    fn compact(&self) -> Result<bool> {
        // Capture the sealed runs under the lock, then let writers go.
        let captured: Vec<SnapRun> = {
            let w = self.lock_writer();
            if w.runs.len() <= 1 && w.tombstones() == 0 {
                return Ok(false);
            }
            w.runs.clone()
        };
        let dims = self.dims;
        let mut rows: Vec<(PointId, usize, usize)> = Vec::new(); // (key, run, slot)
        for (ri, sr) in captured.iter().enumerate() {
            for (i, &key) in sr.run.keys.iter().enumerate() {
                if sr.tombs.binary_search(&key).is_err() {
                    rows.push((key, ri, i));
                }
            }
        }
        rows.sort_unstable_by_key(|&(key, _, _)| key);
        let mut keys = Vec::with_capacity(rows.len());
        let mut coords = Vec::with_capacity(rows.len() * dims);
        for (key, ri, i) in rows {
            keys.push(key);
            coords.extend_from_slice(&captured[ri].run.coords[i * dims..(i + 1) * dims]);
        }
        let merged = if keys.is_empty() {
            None
        } else {
            Some(SealedRun::build(keys, coords, dims, self.workers)?)
        };

        let mut w = self.lock_writer();
        // Writers only append runs and swap tombstone lists, so the
        // captured runs are current iff the prefix still holds the same
        // sealed blocks (tombstones may differ — folded in below).
        if w.runs.len() < captured.len()
            || !captured
                .iter()
                .zip(&w.runs)
                .all(|(a, b)| Arc::ptr_eq(&a.run, &b.run))
        {
            return Ok(false); // racing compactions; the next pass retries
        }
        let mut tombs: Vec<PointId> = Vec::new();
        if let Some(merged) = &merged {
            for (cap, cur) in captured.iter().zip(&w.runs) {
                for &key in cur.tombs.iter() {
                    // Tombstones added after capture refer to rows the
                    // merge included live; carry them over.
                    if cap.tombs.binary_search(&key).is_err()
                        && merged.keys.binary_search(&key).is_ok()
                    {
                        tombs.push(key);
                    }
                }
            }
            tombs.sort_unstable();
        }
        let tail: Vec<SnapRun> = w.runs[captured.len()..].to_vec();
        w.runs = match merged {
            Some(run) => {
                let mut v = vec![SnapRun {
                    run,
                    tombs: Arc::new(tombs),
                }];
                v.extend(tail);
                v
            }
            None => tail,
        };
        w.merges += 1;
        self.publish(&w);
        Ok(true)
    }

    fn stats_locked(w: &WriterState) -> VersionStats {
        VersionStats {
            epoch: w.epoch,
            live: w.live(),
            delta_len: w.delta_len(),
            runs: w.runs.len(),
            tombstones: w.tombstones(),
            inserts: w.inserts,
            removes: w.removes,
            seals: w.seals,
            merges: w.merges,
        }
    }
}

impl VersionWriter for VersionedIndex {
    fn insert(&self, key: PointId, point: &[f64]) -> Result<u64> {
        if point.len() != self.dims {
            return Err(KnMatchError::DimensionMismatch {
                expected: self.dims,
                actual: point.len(),
            });
        }
        validate_finite(point)?;
        let mut w = self.lock_writer();
        match w.delta_keys.binary_search(&key) {
            Ok(i) => {
                // Re-insert inside the delta: overwrite in place.
                w.delta_coords[i * self.dims..(i + 1) * self.dims].copy_from_slice(point);
            }
            Err(i) => {
                // Updating a sealed key tombstones the old version.
                if let Some(ri) = w.find_in_runs(key) {
                    w.tombstone(ri, key);
                }
                w.delta_keys.insert(i, key);
                let at = i * self.dims;
                w.delta_coords.splice(at..at, point.iter().copied());
            }
        }
        w.epoch += 1;
        w.inserts += 1;
        if w.delta_len() >= self.merge_threshold {
            self.seal_locked(&mut w)?;
        }
        self.publish(&w);
        Ok(w.epoch)
    }

    fn remove(&self, key: PointId) -> Result<u64> {
        let mut w = self.lock_writer();
        if let Ok(i) = w.delta_keys.binary_search(&key) {
            w.delta_keys.remove(i);
            let at = i * self.dims;
            w.delta_coords.drain(at..at + self.dims);
        } else if let Some(ri) = w.find_in_runs(key) {
            w.tombstone(ri, key);
        } else {
            return Err(KnMatchError::KeyNotFound { key });
        }
        w.epoch += 1;
        w.removes += 1;
        self.publish(&w);
        Ok(w.epoch)
    }

    fn seal(&self) -> Result<u64> {
        let mut w = self.lock_writer();
        let had_delta = !w.delta_keys.is_empty();
        self.seal_locked(&mut w)?;
        if had_delta {
            self.publish(&w);
        }
        Ok(w.epoch)
    }

    fn needs_maintenance(&self) -> bool {
        let w = self.lock_writer();
        let sealed: usize = w.runs.iter().map(|r| r.run.len()).sum();
        w.runs.len() > MAX_RUNS
            || (w.runs.len() > 1 && w.tombstones() * 2 > sealed)
            || (w.runs.len() == 1 && w.tombstones() * 2 > sealed && sealed > 0)
    }

    fn maintain(&self) -> Result<bool> {
        if !self.needs_maintenance() {
            return Ok(false);
        }
        self.compact()
    }

    fn epoch(&self) -> u64 {
        self.lock_writer().epoch
    }

    fn version_stats(&self) -> VersionStats {
        Self::stats_locked(&self.lock_writer())
    }
}

impl VersionedEngine for VersionedIndex {
    type Snapshot = EpochSnapshot;

    fn snapshot(&self) -> EpochSnapshot {
        let inner = self
            .published
            .read()
            .expect("published lock poisoned")
            .clone();
        EpochSnapshot {
            inner,
            workers: self.workers,
        }
    }
}

impl BatchEngine for VersionedIndex {
    type Outcome = ShardedOutcome;

    fn workers(&self) -> usize {
        self.workers
    }

    /// Pins the current epoch and runs the whole batch against it — one
    /// batch never observes a torn mix of versions.
    fn run_with(&self, queries: &[BatchQuery], opts: &BatchOptions) -> Vec<Result<ShardedOutcome>> {
        self.snapshot().run_with(queries, opts)
    }

    fn writer(&self) -> Option<&dyn VersionWriter> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ad::{eps_n_match_ad, frequent_k_n_match_ad, k_n_match_ad};
    use crate::engine::BatchOutcome;

    fn rows4() -> Vec<(PointId, Vec<f64>)> {
        vec![
            (10, vec![0.4, 1.0, 1.0]),
            (20, vec![2.8, 5.5, 2.0]),
            (30, vec![6.5, 7.8, 5.0]),
            (40, vec![9.0, 9.0, 9.0]),
            (50, vec![3.5, 1.5, 8.0]),
        ]
    }

    fn filled(threshold: usize) -> VersionedIndex {
        let idx = VersionedIndex::new(3, 2, threshold).unwrap();
        for (key, row) in rows4() {
            idx.insert(key, &row).unwrap();
        }
        idx
    }

    /// Answers from the snapshot must equal a from-scratch build over its
    /// live rows, with oracle pids mapped through the key list.
    fn assert_matches_oracle(snap: &EpochSnapshot, queries: &[BatchQuery]) {
        let rows = snap.live_rows();
        if rows.is_empty() {
            return;
        }
        let keys: Vec<PointId> = rows.iter().map(|&(k, _)| k).collect();
        let data: Vec<Vec<f64>> = rows.into_iter().map(|(_, r)| r).collect();
        let mut cols = SortedColumns::from_rows(&data).unwrap();
        let outs = snap.run(queries);
        for (q, out) in queries.iter().zip(outs) {
            let got = out.unwrap().into_answer();
            let want = match q {
                BatchQuery::KnMatch { query, k, n } => {
                    BatchAnswer::KnMatch(k_n_match_ad(&mut cols, query, *k, *n).unwrap().0)
                }
                BatchQuery::Frequent { query, k, n0, n1 } => BatchAnswer::Frequent(
                    frequent_k_n_match_ad(&mut cols, query, *k, *n0, *n1)
                        .unwrap()
                        .0,
                ),
                BatchQuery::EpsMatch { query, eps, n } => {
                    BatchAnswer::EpsMatch(eps_n_match_ad(&mut cols, query, *eps, *n).unwrap().0)
                }
            };
            assert_eq!(got, remap_oracle(want, &keys), "query {q:?}");
        }
    }

    /// Maps an oracle answer's dense pids onto keys. The map is monotone,
    /// so entry order is untouched.
    fn remap_oracle(a: BatchAnswer, keys: &[PointId]) -> BatchAnswer {
        let map = |r: &mut KnMatchResult| {
            for e in &mut r.entries {
                e.pid = keys[e.pid as usize];
            }
        };
        match a {
            BatchAnswer::KnMatch(mut r) => {
                map(&mut r);
                BatchAnswer::KnMatch(r)
            }
            BatchAnswer::EpsMatch(mut r) => {
                map(&mut r);
                BatchAnswer::EpsMatch(r)
            }
            BatchAnswer::Frequent(mut f) => {
                for lvl in &mut f.per_n {
                    map(lvl);
                }
                for e in &mut f.entries {
                    e.pid = keys[e.pid as usize];
                }
                BatchAnswer::Frequent(f)
            }
        }
    }

    fn sample_queries() -> Vec<BatchQuery> {
        vec![
            BatchQuery::KnMatch {
                query: vec![3.0, 7.0, 4.0],
                k: 2,
                n: 2,
            },
            BatchQuery::Frequent {
                query: vec![3.0, 7.0, 4.0],
                k: 2,
                n0: 1,
                n1: 3,
            },
            BatchQuery::EpsMatch {
                query: vec![3.0, 7.0, 4.0],
                eps: 1.6,
                n: 2,
            },
        ]
    }

    #[test]
    fn insert_then_query_matches_oracle() {
        for threshold in [1, 2, 100] {
            let idx = filled(threshold);
            assert_eq!(idx.live(), 5);
            assert_matches_oracle(&idx.snapshot(), &sample_queries());
        }
    }

    #[test]
    fn pinned_snapshot_survives_writes_and_compaction() {
        let idx = filled(2);
        let pinned = idx.snapshot();
        let epoch = pinned.epoch();
        idx.remove(30).unwrap();
        idx.insert(60, &[1.0, 2.0, 3.0]).unwrap();
        idx.insert(10, &[5.0, 5.0, 5.0]).unwrap(); // update
        while idx.compact().unwrap() {}
        assert_eq!(pinned.epoch(), epoch);
        assert_eq!(pinned.live(), 5);
        assert_matches_oracle(&pinned, &sample_queries());
        let fresh = idx.snapshot();
        assert_eq!(fresh.live(), 5); // -30, +60
        assert_matches_oracle(&fresh, &sample_queries());
    }

    #[test]
    fn removes_and_tombstones_stay_exact() {
        let idx = filled(2); // small threshold: rows land in sealed runs
        idx.remove(20).unwrap();
        idx.remove(50).unwrap();
        let snap = idx.snapshot();
        assert_eq!(snap.live(), 3);
        assert_matches_oracle(&snap, &sample_queries());
        // k can now reference the smaller live set only.
        let q = BatchQuery::KnMatch {
            query: vec![0.0, 0.0, 0.0],
            k: 4,
            n: 1,
        };
        assert!(matches!(
            snap.run(&[q]).remove(0).unwrap_err(),
            KnMatchError::InvalidK { cardinality: 3, .. }
        ));
    }

    #[test]
    fn updates_reroute_answers() {
        let idx = filled(2);
        // Move key 40 on top of the query point; it must dominate.
        idx.insert(40, &[3.0, 7.0, 4.0]).unwrap();
        let snap = idx.snapshot();
        let q = BatchQuery::KnMatch {
            query: vec![3.0, 7.0, 4.0],
            k: 1,
            n: 3,
        };
        let out = snap.run(std::slice::from_ref(&q)).remove(0).unwrap();
        let BatchAnswer::KnMatch(answer) = out.into_answer() else {
            panic!("kn query must yield a kn answer");
        };
        assert_eq!(answer.ids(), vec![40]);
        assert_eq!(answer.epsilon(), 0.0);
        assert_matches_oracle(&snap, &[q]);
    }

    #[test]
    fn seal_and_compaction_preserve_the_epoch_answers() {
        let idx = filled(100); // everything still in the delta
        let before = idx.snapshot();
        idx.seal().unwrap();
        let sealed = idx.snapshot();
        assert_eq!(before.epoch(), sealed.epoch());
        let queries = sample_queries();
        let a = before.run(&queries);
        let b = sealed.run(&queries);
        for (x, y) in a.into_iter().zip(b) {
            assert_eq!(x.unwrap().answer(), y.unwrap().answer());
        }
        // Compaction after deletes keeps answers identical too.
        idx.remove(40).unwrap();
        let pre = idx.snapshot();
        assert!(idx.compact().unwrap());
        let post = idx.snapshot();
        assert_eq!(pre.epoch(), post.epoch());
        let a = pre.run(&queries);
        let b = post.run(&queries);
        for (x, y) in a.into_iter().zip(b) {
            assert_eq!(x.unwrap().answer(), y.unwrap().answer());
        }
        assert_eq!(post.run_count(), 1);
        assert_eq!(idx.version_stats().tombstones, 0);
    }

    #[test]
    fn from_dataset_seeds_identity_keys() {
        let ds = crate::paper::fig3_dataset();
        let idx = VersionedIndex::from_dataset(&ds, 2, 4).unwrap();
        assert_eq!(idx.live(), 5);
        assert_eq!(idx.epoch(), 0);
        let snap = idx.snapshot();
        assert_matches_oracle(&snap, &sample_queries());
        // Key space continues past the seed.
        idx.insert(5, &[1.0, 1.0, 1.0]).unwrap();
        idx.remove(0).unwrap();
        assert_matches_oracle(&idx.snapshot(), &sample_queries());
    }

    #[test]
    fn auto_seal_and_maintenance_counters() {
        let idx = filled(2);
        let stats = idx.version_stats();
        assert_eq!(stats.inserts, 5);
        assert!(stats.seals >= 2, "threshold 2 must have auto-sealed");
        assert!(stats.delta_len < 2);
        // Deleting most sealed rows makes maintenance due.
        idx.remove(10).unwrap();
        idx.remove(20).unwrap();
        idx.remove(30).unwrap();
        assert!(idx.needs_maintenance());
        assert!(idx.maintain().unwrap());
        let after = idx.version_stats();
        assert_eq!(after.merges, 1);
        assert_eq!(after.tombstones, 0);
        assert_eq!(after.live, 2);
        assert_matches_oracle(&idx.snapshot(), &sample_queries());
    }

    #[test]
    fn errors() {
        assert!(matches!(
            VersionedIndex::new(0, 1, 4).unwrap_err(),
            KnMatchError::ZeroDimensions
        ));
        let idx = VersionedIndex::new(2, 1, 4).unwrap();
        assert!(matches!(
            idx.insert(1, &[1.0]).unwrap_err(),
            KnMatchError::DimensionMismatch { .. }
        ));
        assert!(matches!(
            idx.insert(1, &[1.0, f64::NAN]).unwrap_err(),
            KnMatchError::NonFiniteValue { dim: 1 }
        ));
        assert!(matches!(
            idx.remove(7).unwrap_err(),
            KnMatchError::KeyNotFound { key: 7 }
        ));
        // Empty index: queries fail validation, not execution.
        let q = BatchQuery::KnMatch {
            query: vec![0.0, 0.0],
            k: 1,
            n: 1,
        };
        assert!(matches!(
            idx.snapshot().run(&[q]).remove(0).unwrap_err(),
            KnMatchError::EmptyDataset
        ));
        // Removing the last row returns to the empty state cleanly.
        idx.insert(3, &[0.5, 0.5]).unwrap();
        idx.remove(3).unwrap();
        assert_eq!(idx.live(), 0);
    }

    #[test]
    fn writer_hook_exposes_the_mutation_surface() {
        let idx = filled(4);
        let w = BatchEngine::writer(&idx).expect("versioned index is writable");
        let before = w.epoch();
        w.insert(99, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(w.epoch(), before + 1);
        assert_eq!(w.version_stats().live, 6);
    }
}
