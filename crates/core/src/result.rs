//! Answer-set types returned by the query algorithms.

use crate::point::PointId;

/// One member of a k-n-match answer set: a point id plus its n-match
/// difference with regard to the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchEntry {
    /// The matched point.
    pub pid: PointId,
    /// Its n-match difference with regard to the query.
    pub diff: f64,
}

/// The answer of a k-n-match query: exactly `k` entries in ascending
/// `(diff, pid)` order.
///
/// On ties in the k-th difference, different correct algorithms may return
/// different (equally valid) point sets; the multiset of differences is
/// always the same. [`KnMatchResult::epsilon`] is the paper's ε — the k-th
/// smallest n-match difference, which defines the implied per-dimension
/// match threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct KnMatchResult {
    /// The `n` this answer set was computed for.
    pub n: usize,
    /// Answer entries in ascending `(diff, pid)` order.
    pub entries: Vec<MatchEntry>,
}

impl KnMatchResult {
    /// The k-th smallest n-match difference (the match threshold ε).
    ///
    /// # Panics
    ///
    /// Panics on an empty answer set (never produced by the query API, which
    /// requires `k >= 1`).
    pub fn epsilon(&self) -> f64 {
        self.entries.last().expect("answer sets are non-empty").diff
    }

    /// The answered point ids, in ascending `(diff, pid)` order.
    pub fn ids(&self) -> Vec<PointId> {
        self.entries.iter().map(|e| e.pid).collect()
    }

    /// The answer differences, ascending.
    pub fn diffs(&self) -> Vec<f64> {
        self.entries.iter().map(|e| e.diff).collect()
    }

    /// Whether `pid` is in this answer set.
    pub fn contains(&self, pid: PointId) -> bool {
        self.entries.iter().any(|e| e.pid == pid)
    }

    /// Normalises entry order to ascending `(diff, pid)`.
    pub(crate) fn normalise(&mut self) {
        self.entries
            .sort_unstable_by(|a, b| a.diff.total_cmp(&b.diff).then(a.pid.cmp(&b.pid)));
    }
}

/// One member of a frequent k-n-match answer: a point id and how many of the
/// per-n answer sets it appeared in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrequentEntry {
    /// The matched point.
    pub pid: PointId,
    /// Number of `n ∈ [n0, n1]` whose k-n-match answer set contains `pid`.
    pub count: u32,
}

/// The answer of a frequent k-n-match query.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequentResult {
    /// The queried range `[n0, n1]` of n values.
    pub range: (usize, usize),
    /// The k most frequent points, in descending `(count, -pid)` order
    /// (i.e. count descending, pid ascending on ties).
    pub entries: Vec<FrequentEntry>,
    /// The per-n k-n-match answer sets `S_{n0}, …, S_{n1}` the frequencies
    /// were counted over.
    pub per_n: Vec<KnMatchResult>,
}

impl FrequentResult {
    /// The answered point ids in rank order.
    pub fn ids(&self) -> Vec<PointId> {
        self.entries.iter().map(|e| e.pid).collect()
    }

    /// Appearance count of `pid`, or 0 when it was not ranked.
    pub fn count_of(&self, pid: PointId) -> u32 {
        self.entries
            .iter()
            .find(|e| e.pid == pid)
            .map_or(0, |e| e.count)
    }
}

/// Ranks appearance counts into the top-k frequent entries.
///
/// Order: count descending, then pid ascending (deterministic on count ties,
/// where Definition 4 allows any choice). Shared by every frequent
/// k-n-match implementation in this workspace.
pub fn rank_frequent(counts: &[(PointId, u32)], k: usize) -> Vec<FrequentEntry> {
    let mut v: Vec<FrequentEntry> = counts
        .iter()
        .map(|&(pid, count)| FrequentEntry { pid, count })
        .collect();
    v.sort_unstable_by(|a, b| b.count.cmp(&a.count).then(a.pid.cmp(&b.pid)));
    v.truncate(k);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res(pairs: &[(PointId, f64)]) -> KnMatchResult {
        KnMatchResult {
            n: 1,
            entries: pairs
                .iter()
                .map(|&(pid, diff)| MatchEntry { pid, diff })
                .collect(),
        }
    }

    #[test]
    fn epsilon_is_last_diff() {
        let r = res(&[(3, 0.1), (1, 0.5), (2, 0.9)]);
        assert_eq!(r.epsilon(), 0.9);
        assert_eq!(r.ids(), vec![3, 1, 2]);
        assert_eq!(r.diffs(), vec![0.1, 0.5, 0.9]);
        assert!(r.contains(1) && !r.contains(7));
    }

    #[test]
    fn normalise_sorts_by_diff_then_pid() {
        let mut r = res(&[(5, 0.5), (2, 0.1), (4, 0.5)]);
        r.normalise();
        assert_eq!(r.ids(), vec![2, 4, 5]);
    }

    #[test]
    fn rank_frequent_orders_and_truncates() {
        let counts = [(0u32, 2u32), (1, 5), (2, 5), (3, 1)];
        let top = rank_frequent(&counts, 2);
        assert_eq!(
            top,
            vec![
                FrequentEntry { pid: 1, count: 5 },
                FrequentEntry { pid: 2, count: 5 },
            ]
        );
    }

    #[test]
    fn frequent_result_count_of() {
        let fr = FrequentResult {
            range: (1, 3),
            entries: vec![FrequentEntry { pid: 9, count: 3 }],
            per_n: vec![],
        };
        assert_eq!(fr.count_of(9), 3);
        assert_eq!(fr.count_of(1), 0);
        assert_eq!(fr.ids(), vec![9]);
    }
}
