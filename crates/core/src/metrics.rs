//! Distance functions for the kNN baselines the paper compares against.
//!
//! Includes the L_p family (Euclidean, Manhattan, Chebyshev), a fractional
//! L_p, and the Dynamic Partial Function of Goh, Li & Chang (ACM MM'02,
//! the paper's reference \[18\]) — an L_p aggregate over only the `n` smallest
//! per-dimension differences, the closest prior art to the n-match
//! difference.

/// A (not necessarily metric) distance function between equal-length points.
pub trait Metric {
    /// Distance from `p` to `q`.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `p.len() != q.len()`.
    fn dist(&self, p: &[f64], q: &[f64]) -> f64;

    /// A short display name (used by experiment reports).
    fn name(&self) -> &'static str;
}

/// Euclidean distance (L2).
#[derive(Debug, Clone, Copy, Default)]
pub struct Euclidean;

impl Metric for Euclidean {
    fn dist(&self, p: &[f64], q: &[f64]) -> f64 {
        assert_eq!(p.len(), q.len());
        p.iter()
            .zip(q)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
    fn name(&self) -> &'static str {
        "L2"
    }
}

/// Manhattan distance (L1).
#[derive(Debug, Clone, Copy, Default)]
pub struct Manhattan;

impl Metric for Manhattan {
    fn dist(&self, p: &[f64], q: &[f64]) -> f64 {
        assert_eq!(p.len(), q.len());
        p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum()
    }
    fn name(&self) -> &'static str {
        "L1"
    }
}

/// Chebyshev distance (L∞): the maximum per-dimension difference. Note the
/// paper stresses the n-match difference is *not* a generalisation of this
/// metric — it is not a metric at all — but for `n = d` they coincide.
#[derive(Debug, Clone, Copy, Default)]
pub struct Chebyshev;

impl Metric for Chebyshev {
    fn dist(&self, p: &[f64], q: &[f64]) -> f64 {
        assert_eq!(p.len(), q.len());
        p.iter()
            .zip(q)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
    fn name(&self) -> &'static str {
        "Linf"
    }
}

/// General L_p distance with `p > 0` (fractional p allowed, as studied by
/// Aggarwal, Hinneburg & Keim, ICDT'01 — the paper's reference \[5\]).
#[derive(Debug, Clone, Copy)]
pub struct Lp {
    /// The exponent `p`.
    pub p: f64,
}

impl Lp {
    /// Creates an L_p metric.
    ///
    /// # Panics
    ///
    /// Panics when `p <= 0` or `p` is not finite.
    pub fn new(p: f64) -> Self {
        assert!(
            p.is_finite() && p > 0.0,
            "Lp exponent must be positive and finite"
        );
        Lp { p }
    }
}

impl Metric for Lp {
    fn dist(&self, p: &[f64], q: &[f64]) -> f64 {
        assert_eq!(p.len(), q.len());
        let s: f64 = p
            .iter()
            .zip(q)
            .map(|(a, b)| (a - b).abs().powf(self.p))
            .sum();
        s.powf(1.0 / self.p)
    }
    fn name(&self) -> &'static str {
        "Lp"
    }
}

/// Dynamic Partial Function: L_p over the `n` smallest per-dimension
/// differences. `Dpf { n: d, p: 2 }` is Euclidean; `Dpf { n: 1, p: any }`
/// ranks like the 1-match difference.
#[derive(Debug, Clone, Copy)]
pub struct Dpf {
    /// How many smallest differences to aggregate.
    pub n: usize,
    /// The L_p exponent.
    pub p: f64,
}

impl Dpf {
    /// Creates a DPF.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0` or `p` is not positive and finite.
    pub fn new(n: usize, p: f64) -> Self {
        assert!(n >= 1, "DPF needs n >= 1");
        assert!(
            p.is_finite() && p > 0.0,
            "DPF exponent must be positive and finite"
        );
        Dpf { n, p }
    }
}

impl Metric for Dpf {
    fn dist(&self, p: &[f64], q: &[f64]) -> f64 {
        assert_eq!(p.len(), q.len());
        assert!(self.n <= p.len(), "DPF n exceeds dimensionality");
        let mut diffs: Vec<f64> = p.iter().zip(q).map(|(a, b)| (a - b).abs()).collect();
        diffs.select_nth_unstable_by(self.n - 1, f64::total_cmp);
        let s: f64 = diffs[..self.n].iter().map(|d| d.powf(self.p)).sum();
        s.powf(1.0 / self.p)
    }
    fn name(&self) -> &'static str {
        "DPF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: [f64; 3] = [0.0, 3.0, 1.0];
    const Q: [f64; 3] = [4.0, 0.0, 1.0];

    #[test]
    fn euclidean() {
        assert!((Euclidean.dist(&P, &Q) - 5.0).abs() < 1e-12);
        assert_eq!(Euclidean.dist(&P, &P), 0.0);
        assert_eq!(Euclidean.name(), "L2");
    }

    #[test]
    fn manhattan() {
        assert!((Manhattan.dist(&P, &Q) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn chebyshev() {
        assert!((Chebyshev.dist(&P, &Q) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn lp_special_cases_agree() {
        assert!((Lp::new(2.0).dist(&P, &Q) - Euclidean.dist(&P, &Q)).abs() < 1e-9);
        assert!((Lp::new(1.0).dist(&P, &Q) - Manhattan.dist(&P, &Q)).abs() < 1e-9);
        // Fractional p still symmetric and zero on identity.
        let f = Lp::new(0.5);
        assert_eq!(f.dist(&P, &Q), f.dist(&Q, &P));
        assert_eq!(f.dist(&P, &P), 0.0);
    }

    #[test]
    fn dpf_truncates_to_smallest_n() {
        // diffs = [4, 3, 0]; two smallest are [0, 3].
        let d = Dpf::new(2, 2.0);
        assert!((d.dist(&P, &Q) - 3.0).abs() < 1e-12);
        // n = d → Euclidean.
        let full = Dpf::new(3, 2.0);
        assert!((full.dist(&P, &Q) - 5.0).abs() < 1e-9);
        // n = 1, p irrelevant: the 1-match difference.
        let one = Dpf::new(1, 7.0);
        assert_eq!(one.dist(&P, &Q), 0.0);
    }

    #[test]
    fn dpf_ignores_one_noisy_dimension() {
        // DPF with n = d-1 suppresses the paper's "bad pixel" dimension.
        let q = [1.0, 1.0, 1.0];
        let noisy = [1.1, 100.0, 1.1];
        let far = [5.0, 5.0, 5.0];
        let dpf = Dpf::new(2, 2.0);
        assert!(dpf.dist(&noisy, &q) < dpf.dist(&far, &q));
        // Whereas Euclidean is dominated by the noise.
        assert!(Euclidean.dist(&noisy, &q) > Euclidean.dist(&far, &q));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn lp_rejects_nonpositive_p() {
        let _ = Lp::new(0.0);
    }

    #[test]
    #[should_panic(expected = "n >= 1")]
    fn dpf_rejects_zero_n() {
        let _ = Dpf::new(0, 2.0);
    }
}
