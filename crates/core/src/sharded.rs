//! Intra-query parallelism: point-id-sharded columns and the engine that
//! fans one AD query out over them.
//!
//! The batch [`QueryEngine`](crate::QueryEngine) parallelises *across*
//! queries; one giant query still walks its frontier on a single core.
//! [`ShardedColumns`] partitions the point-id space into `S` contiguous
//! ranges and builds an independent [`SortedColumns`] per range, so
//! [`ShardedQueryEngine`] can run the unmodified AD core on every shard
//! concurrently (one [`run_batch`] work item per shard, per-worker
//! [`Scratch`] reuse) and merge the per-shard streams.
//!
//! # Why the merge is exact
//!
//! The n-match difference of a point depends only on that point's own
//! attributes (Definition 1), so partitioning by point id partitions the
//! *candidates*, not the computation: shard `s`'s k-n-match answer is the
//! `k` best `(diff, pid)` keys among its own points, which is a superset
//! of the global answer's members that live in shard `s`. Concatenating
//! the per-shard answers and keeping the `k` smallest `(diff, pid)` keys
//! therefore yields exactly the global answer — *provided* answers are a
//! pure function of the data. The AD core guarantees that: tie-breaking is
//! canonical (boundary ties resolve by `(diff, pid)`, never by cursor pop
//! order — see `frequent_core`), so the merged answers are bit-identical
//! to the unsharded engine for all three query kinds:
//!
//! - **k-n-match**: concatenate per-shard entry lists (pids rebased to
//!   global), sort by `(diff, pid)`, keep `k`.
//! - **ε-n-match**: concatenate and sort; thresholds are per-point, no
//!   truncation.
//! - **frequent k-n-match**: merge each per-n level as a k-n-match, then
//!   recount frequencies over the merged `k`-sized sets (Definition 4) and
//!   rank with the shared [`rank_frequent`].
//!
//! Per-shard `k` is clamped to the shard cardinality (a shard holding
//! fewer than `k` points ranks everything it has), and query validation
//! runs once against the *global* dimensions and cardinality.
//!
//! # Cost accounting
//!
//! Each shard's [`AdStats`] is bit-identical to running the sequential AD
//! core on that shard's columns alone — the engine reports them per shard
//! plus their total. The total exceeds an unsharded run's stats (every
//! shard seeds `2d` cursors and walks to its own stop condition); with
//! `shards = 1` answers *and* stats are bit-identical to
//! [`QueryEngine`](crate::QueryEngine).

use std::collections::HashMap;
use std::sync::Arc;
use std::thread;

use crate::ad::{validate_eps, validate_params, AdStats};
use crate::columns::{sort_dim_range, SortedColumns};
use crate::engine::{
    execute_batch_query, isolate_panic, note_outcome, run_batch, BatchAnswer, BatchEngine,
    BatchOptions, BatchOutcome, BatchQuery,
};
use crate::error::Result;
use crate::point::{Dataset, PointId};
use crate::result::{rank_frequent, FrequentResult, KnMatchResult, MatchEntry};
use crate::scratch::Scratch;

/// A dataset partitioned into `S` contiguous point-id ranges, each
/// organised as its own [`SortedColumns`].
///
/// Shard boundaries are as even as possible (the first `c mod S` shards
/// hold one extra point); entry pids inside a shard are shard-local
/// (starting at 0) so each shard is a self-contained
/// [`SortedAccessSource`](crate::SortedAccessSource) — contiguity makes
/// the local → global mapping a single offset add that preserves pid
/// order, which the exact merge relies on.
///
/// # Examples
///
/// ```
/// use knmatch_core::ShardedColumns;
///
/// let ds = knmatch_core::paper::fig3_dataset();
/// let cols = ShardedColumns::build(&ds, 2);
/// assert_eq!(cols.shard_count(), 2);
/// assert_eq!(cols.shard(0).cardinality(), 3); // 5 points → 3 + 2
/// assert_eq!(cols.shard_start(1), 3);
/// ```
#[derive(Debug, Clone)]
pub struct ShardedColumns {
    dims: usize,
    cardinality: usize,
    /// `starts[s]..starts[s + 1]` is the global pid range of shard `s`.
    starts: Vec<usize>,
    shards: Vec<SortedColumns>,
}

impl ShardedColumns {
    /// Partitions `ds` into `shards` ranges (clamped to `1..=c`) and sorts
    /// every shard × dimension column, one [`run_batch`] work item each,
    /// with one worker per available CPU.
    pub fn build(ds: &Dataset, shards: usize) -> Self {
        let workers = thread::available_parallelism().map_or(1, |n| n.get());
        Self::build_with_workers(ds, shards, workers)
    }

    /// [`build`](Self::build) with an explicit worker count. The result is
    /// identical at any worker count.
    pub fn build_with_workers(ds: &Dataset, shards: usize, workers: usize) -> Self {
        let dims = ds.dims();
        let c = ds.len();
        let s = shards.clamp(1, c.max(1));
        let (base, rem) = (c / s, c % s);
        let mut starts = Vec::with_capacity(s + 1);
        starts.push(0usize);
        for i in 0..s {
            starts.push(starts[i] + base + usize::from(i < rem));
        }
        // One sort task per shard × dimension over a single pool, so a
        // build saturates the workers even when shards ≫ dims or dims ≫
        // shards.
        let parts = run_batch(workers.max(1), s * dims, Vec::new, |pairs, t| {
            let (sh, dim) = (t / dims, t % dims);
            sort_dim_range(ds, dim, starts[sh], starts[sh + 1], pairs)
        });
        let mut parts = parts.into_iter();
        let shards = (0..s)
            .map(|sh| {
                let cols: Vec<_> = parts.by_ref().take(dims).collect();
                SortedColumns::from_sorted_parts(starts[sh + 1] - starts[sh], cols)
            })
            .collect();
        ShardedColumns {
            dims,
            cardinality: c,
            starts,
            shards,
        }
    }

    /// Number of shards `S`.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The columns of shard `s` (entry pids are shard-local).
    ///
    /// # Panics
    ///
    /// Panics when `s >= shard_count()`.
    pub fn shard(&self, s: usize) -> &SortedColumns {
        &self.shards[s]
    }

    /// First global pid of shard `s` — add it to a shard-local pid to get
    /// the global one.
    pub fn shard_start(&self, s: usize) -> usize {
        self.starts[s]
    }

    /// Dimensionality `d`.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Total cardinality `c` across all shards.
    pub fn cardinality(&self) -> usize {
        self.cardinality
    }
}

/// The answer of one sharded query: the merged [`BatchAnswer`]
/// (bit-identical to the unsharded engine's) plus the run's cost split.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedOutcome {
    /// The merged answer, bit-identical to [`QueryEngine`](crate::QueryEngine).
    pub answer: BatchAnswer,
    /// Total of the per-shard stats (see [`AdStats::accumulate`]).
    pub stats: AdStats,
    /// Per-shard stats, in shard order; each is bit-identical to a
    /// sequential AD run over that shard's columns alone.
    pub per_shard: Vec<AdStats>,
}

impl BatchOutcome for ShardedOutcome {
    fn answer(&self) -> &BatchAnswer {
        &self.answer
    }

    fn ad_stats(&self) -> AdStats {
        self.stats
    }

    fn into_answer(self) -> BatchAnswer {
        self.answer
    }
}

/// Executes matching queries with intra-query parallelism over
/// [`ShardedColumns`]: every query fans out into one work item per shard,
/// and a batch of `q` queries schedules `q × S` items on the pool.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use knmatch_core::{BatchAnswer, BatchQuery, ShardedColumns, ShardedQueryEngine};
///
/// let ds = knmatch_core::paper::fig3_dataset();
/// let engine = ShardedQueryEngine::new(Arc::new(ShardedColumns::build(&ds, 2)));
/// let out = engine
///     .execute(&BatchQuery::KnMatch { query: vec![3.0, 7.0, 4.0], k: 2, n: 2 })
///     .unwrap();
/// let BatchAnswer::KnMatch(res) = &out.answer else { unreachable!() };
/// assert_eq!(res.ids(), vec![2, 1]); // same answer as the unsharded engine
/// assert_eq!(out.per_shard.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ShardedQueryEngine {
    cols: Arc<ShardedColumns>,
    workers: usize,
}

impl ShardedQueryEngine {
    /// An engine over `cols` with one worker per available CPU.
    pub fn new(cols: Arc<ShardedColumns>) -> Self {
        let workers = thread::available_parallelism().map_or(1, |n| n.get());
        Self::with_workers(cols, workers)
    }

    /// An engine with an explicit worker count (clamped to ≥ 1).
    pub fn with_workers(cols: Arc<ShardedColumns>, workers: usize) -> Self {
        ShardedQueryEngine {
            cols,
            workers: workers.max(1),
        }
    }

    /// The shared sharded organisation.
    pub fn columns(&self) -> &Arc<ShardedColumns> {
        &self.cols
    }

    /// Executes one query across all shards on the pool.
    ///
    /// # Errors
    ///
    /// Per-query parameter validation against the global dimensions and
    /// cardinality; see [`KnMatchError`](crate::KnMatchError).
    pub fn execute(&self, query: &BatchQuery) -> Result<ShardedOutcome> {
        self.run(std::slice::from_ref(query))
            .pop()
            .expect("one result per query")
    }

    /// Validates `query` against the global shape (`d`, total `c`).
    fn validate(&self, query: &BatchQuery) -> Result<()> {
        let d = self.cols.dims();
        let c = self.cols.cardinality();
        match query {
            BatchQuery::KnMatch { query, k, n } => validate_params(query, d, c, *k, *n, *n),
            BatchQuery::Frequent { query, k, n0, n1 } => validate_params(query, d, c, *k, *n0, *n1),
            BatchQuery::EpsMatch { query, eps, n } => {
                validate_params(query, d, c, 1, *n, *n)?;
                validate_eps(*eps)
            }
        }
    }

    /// Runs `query` against shard `s` with `k` clamped to the shard
    /// cardinality, rebasing answer pids to global. Validation passed
    /// globally and shard parameters only clamp `k`, so an `Err` here is a
    /// runtime failure (deadline, cancellation, a panic caught at the
    /// shard-task boundary) — it fails this query's slot, not the batch.
    fn run_shard(
        &self,
        query: &BatchQuery,
        s: usize,
        scratch: &mut Scratch,
    ) -> Result<(BatchAnswer, AdStats)> {
        let shard = self.cols.shard(s);
        let local = clamp_k(query, shard.cardinality());
        isolate_panic(|| {
            let mut view: &SortedColumns = shard;
            let (answer, stats) = execute_batch_query(&mut view, &local, scratch)?;
            Ok((
                offset_answer(answer, self.cols.shard_start(s) as PointId),
                stats,
            ))
        })
    }
}

impl BatchEngine for ShardedQueryEngine {
    type Outcome = ShardedOutcome;

    fn workers(&self) -> usize {
        self.workers
    }

    /// All `q × S` shard-tasks share one pool, so a single query and a
    /// large batch both keep every worker busy. Invalid queries yield
    /// their validation error without spawning shard work; a shard task
    /// that fails or panics fails only its own query (first failing
    /// shard, in shard order, wins) while the rest of the batch
    /// completes. Every shard task of every query shares the batch's
    /// deadline clock and cancel flag.
    fn run_with(&self, queries: &[BatchQuery], opts: &BatchOptions) -> Vec<Result<ShardedOutcome>> {
        let s_count = self.cols.shard_count();
        let validity: Vec<Result<()>> = queries.iter().map(|q| self.validate(q)).collect();
        let mut tasks = Vec::new();
        for (qi, v) in validity.iter().enumerate() {
            if v.is_ok() {
                tasks.extend((0..s_count).map(|s| (qi, s)));
            }
        }
        let control = opts.arm();
        let outs = run_batch(
            self.workers,
            tasks.len(),
            || control.scratch(),
            |scratch, t| {
                let (qi, s) = tasks[t];
                let out = self.run_shard(&queries[qi], s, scratch);
                note_outcome(&control, &out);
                out
            },
        );
        // Tasks were pushed query-major, so each valid query owns the next
        // `s_count` outputs in order.
        let mut outs = outs.into_iter();
        validity
            .into_iter()
            .enumerate()
            .map(|(qi, v)| {
                v.and_then(|()| {
                    let mut parts = Vec::with_capacity(s_count);
                    let mut first_err = None;
                    for part in outs.by_ref().take(s_count) {
                        match part {
                            Ok(x) => parts.push(x),
                            Err(e) => {
                                first_err.get_or_insert(e);
                            }
                        }
                    }
                    match first_err {
                        Some(e) => Err(e),
                        None => Ok(merge_shards(&queries[qi], parts)),
                    }
                })
            })
            .collect()
    }
}

/// `query` with its answer-set size clamped to the shard cardinality `c_s`
/// (a shard smaller than `k` ranks all of its points).
fn clamp_k(query: &BatchQuery, c_s: usize) -> BatchQuery {
    let mut q = query.clone();
    match &mut q {
        BatchQuery::KnMatch { k, .. } | BatchQuery::Frequent { k, .. } => *k = (*k).min(c_s),
        BatchQuery::EpsMatch { .. } => {}
    }
    q
}

/// Rebases every pid in `answer` from shard-local to global by adding the
/// shard's first global pid. Adding a constant preserves `(diff, pid)`
/// order, so rebased per-shard lists stay sorted.
fn offset_answer(answer: BatchAnswer, off: PointId) -> BatchAnswer {
    fn shift(r: &mut KnMatchResult, off: PointId) {
        for e in &mut r.entries {
            e.pid += off;
        }
    }
    match answer {
        BatchAnswer::KnMatch(mut r) => {
            shift(&mut r, off);
            BatchAnswer::KnMatch(r)
        }
        BatchAnswer::EpsMatch(mut r) => {
            shift(&mut r, off);
            BatchAnswer::EpsMatch(r)
        }
        BatchAnswer::Frequent(mut f) => {
            for lvl in &mut f.per_n {
                shift(lvl, off);
            }
            for e in &mut f.entries {
                e.pid += off;
            }
            BatchAnswer::Frequent(f)
        }
    }
}

/// Merges the per-shard outcomes of one query into the global answer plus
/// the cost split. Also used by the versioned index, whose sealed runs
/// merge exactly like shards (keys play the role of global pids).
pub(crate) fn merge_shards(
    query: &BatchQuery,
    parts: Vec<(BatchAnswer, AdStats)>,
) -> ShardedOutcome {
    let per_shard: Vec<AdStats> = parts.iter().map(|(_, s)| *s).collect();
    let mut stats = AdStats::default();
    for s in &per_shard {
        stats.accumulate(s);
    }
    let answers = parts.into_iter().map(|(a, _)| a);
    let answer = match query {
        BatchQuery::KnMatch { k, n, .. } => {
            let lists = answers.map(|a| match a {
                BatchAnswer::KnMatch(r) => r,
                other => unreachable!("shard returned {other:?} for a KnMatch query"),
            });
            BatchAnswer::KnMatch(merge_kn(lists, Some(*k), *n))
        }
        BatchQuery::EpsMatch { n, .. } => {
            let lists = answers.map(|a| match a {
                BatchAnswer::EpsMatch(r) => r,
                other => unreachable!("shard returned {other:?} for an EpsMatch query"),
            });
            BatchAnswer::EpsMatch(merge_kn(lists, None, *n))
        }
        BatchQuery::Frequent { k, n0, n1, .. } => {
            let lists = answers.map(|a| match a {
                BatchAnswer::Frequent(f) => f,
                other => unreachable!("shard returned {other:?} for a Frequent query"),
            });
            BatchAnswer::Frequent(merge_frequent(lists, *k, *n0, *n1))
        }
    };
    ShardedOutcome {
        answer,
        stats,
        per_shard,
    }
}

/// Concatenates per-shard entry lists and keeps the `k` smallest by the
/// canonical `(diff, pid)` key (all of them for ε queries, `k = None`).
fn merge_kn(
    lists: impl Iterator<Item = KnMatchResult>,
    k: Option<usize>,
    n: usize,
) -> KnMatchResult {
    let mut entries: Vec<MatchEntry> = lists.flat_map(|r| r.entries).collect();
    entries.sort_unstable_by(|a, b| a.diff.total_cmp(&b.diff).then(a.pid.cmp(&b.pid)));
    if let Some(k) = k {
        entries.truncate(k);
    }
    KnMatchResult { n, entries }
}

/// Merges per-shard frequent results: each per-n level merges as a
/// k-n-match, then frequencies are recounted over the merged `k`-sized
/// sets (Definition 4) and ranked with the shared [`rank_frequent`] —
/// exactly what the unsharded `frequent_core` computes.
fn merge_frequent(
    lists: impl Iterator<Item = FrequentResult>,
    k: usize,
    n0: usize,
    n1: usize,
) -> FrequentResult {
    let levels = n1 - n0 + 1;
    let mut by_level: Vec<Vec<KnMatchResult>> = (0..levels).map(|_| Vec::new()).collect();
    for f in lists {
        debug_assert_eq!(f.per_n.len(), levels);
        for (i, lvl) in f.per_n.into_iter().enumerate() {
            by_level[i].push(lvl);
        }
    }
    let per_n: Vec<KnMatchResult> = by_level
        .into_iter()
        .enumerate()
        .map(|(i, lvls)| merge_kn(lvls.into_iter(), Some(k), n0 + i))
        .collect();
    let mut counts: HashMap<PointId, u32> = HashMap::new();
    for lvl in &per_n {
        for e in &lvl.entries {
            *counts.entry(e.pid).or_insert(0) += 1;
        }
    }
    let mut pairs: Vec<(PointId, u32)> = counts.into_iter().collect();
    pairs.sort_unstable_by_key(|&(pid, _)| pid);
    FrequentResult {
        range: (n0, n1),
        entries: rank_frequent(&pairs, k),
        per_n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::QueryEngine;
    use crate::error::KnMatchError;

    fn fig3_sharded(shards: usize) -> ShardedQueryEngine {
        let ds = crate::paper::fig3_dataset();
        ShardedQueryEngine::with_workers(Arc::new(ShardedColumns::build(&ds, shards)), 2)
    }

    fn fig3_batch() -> Vec<BatchQuery> {
        vec![
            BatchQuery::KnMatch {
                query: vec![3.0, 7.0, 4.0],
                k: 2,
                n: 2,
            },
            BatchQuery::Frequent {
                query: vec![3.0, 7.0, 4.0],
                k: 2,
                n0: 1,
                n1: 3,
            },
            BatchQuery::EpsMatch {
                query: vec![3.0, 7.0, 4.0],
                eps: 1.6,
                n: 2,
            },
        ]
    }

    #[test]
    fn partition_is_contiguous_and_even() {
        let ds = crate::paper::fig3_dataset();
        for s in 1..=5 {
            let cols = ShardedColumns::build_with_workers(&ds, s, 1);
            assert_eq!(cols.shard_count(), s);
            assert_eq!(cols.shard_start(0), 0);
            let mut total = 0;
            for i in 0..s {
                assert_eq!(cols.shard_start(i), total);
                total += cols.shard(i).cardinality();
                // Even split: sizes differ by at most one.
                assert!(cols.shard(i).cardinality() >= 5 / s);
                assert!(cols.shard(i).cardinality() <= 5 / s + 1);
            }
            assert_eq!(total, cols.cardinality());
        }
    }

    #[test]
    fn shard_count_clamps_to_cardinality() {
        let ds = crate::paper::fig3_dataset();
        assert_eq!(ShardedColumns::build(&ds, 0).shard_count(), 1);
        assert_eq!(ShardedColumns::build(&ds, 99).shard_count(), 5);
    }

    #[test]
    fn shard_columns_match_direct_range_builds() {
        let ds = crate::paper::fig3_dataset();
        let cols = ShardedColumns::build_with_workers(&ds, 2, 3);
        for s in 0..2 {
            let lo = cols.shard_start(s);
            let hi = lo + cols.shard(s).cardinality();
            let direct = SortedColumns::build_range(&ds, lo, hi, 1);
            for dim in 0..ds.dims() {
                assert_eq!(
                    cols.shard(s).column(dim).to_vec(),
                    direct.column(dim).to_vec()
                );
            }
        }
    }

    #[test]
    fn fig3_answers_match_unsharded_engine() {
        let ds = crate::paper::fig3_dataset();
        let plain = QueryEngine::with_workers(Arc::new(SortedColumns::build(&ds)), 1);
        let want: Vec<_> = plain
            .run(&fig3_batch())
            .into_iter()
            .map(|r| r.unwrap().0)
            .collect();
        for shards in 1..=5 {
            let engine = fig3_sharded(shards);
            for (got, want) in engine.run(&fig3_batch()).iter().zip(&want) {
                let got = got.as_ref().unwrap();
                assert_eq!(&got.answer, want, "shards={shards}");
                assert_eq!(got.per_shard.len(), shards);
            }
        }
    }

    #[test]
    fn single_shard_stats_match_unsharded_engine() {
        let ds = crate::paper::fig3_dataset();
        let plain = QueryEngine::with_workers(Arc::new(SortedColumns::build(&ds)), 1);
        let engine = fig3_sharded(1);
        for (got, want) in engine
            .run(&fig3_batch())
            .iter()
            .zip(plain.run(&fig3_batch()))
        {
            let got = got.as_ref().unwrap();
            let (want_answer, want_stats) = want.unwrap();
            assert_eq!(got.answer, want_answer);
            assert_eq!(got.stats, want_stats);
            assert_eq!(got.per_shard, vec![want_stats]);
        }
    }

    #[test]
    fn invalid_queries_fail_individually() {
        let engine = fig3_sharded(2);
        let mut queries = fig3_batch();
        queries.push(BatchQuery::KnMatch {
            query: vec![1.0],
            k: 1,
            n: 1,
        });
        queries.push(BatchQuery::KnMatch {
            query: vec![0.0; 3],
            k: 9,
            n: 1,
        });
        queries.push(BatchQuery::EpsMatch {
            query: vec![0.0; 3],
            eps: -1.0,
            n: 1,
        });
        let results = engine.run(&queries);
        assert!(results[..3].iter().all(Result::is_ok));
        assert!(matches!(
            results[3],
            Err(KnMatchError::DimensionMismatch { .. })
        ));
        // k validates against the *global* cardinality (5), not a shard's.
        assert!(matches!(results[4], Err(KnMatchError::InvalidK { .. })));
        assert!(matches!(
            results[5],
            Err(KnMatchError::InvalidEpsilon { .. })
        ));
    }

    #[test]
    fn k_larger_than_a_shard_is_clamped_not_rejected() {
        // 5 points over 3 shards → shard sizes 2, 2, 1; k = 4 exceeds every
        // shard but must still merge to the global top 4.
        let ds = crate::paper::fig3_dataset();
        let engine = ShardedQueryEngine::with_workers(Arc::new(ShardedColumns::build(&ds, 3)), 1);
        let q = BatchQuery::KnMatch {
            query: vec![3.0, 7.0, 4.0],
            k: 4,
            n: 2,
        };
        let got = engine.execute(&q).unwrap();
        let mut plain = SortedColumns::build(&ds);
        let (want, _) = crate::ad::k_n_match_ad(&mut plain, &[3.0, 7.0, 4.0], 4, 2).unwrap();
        assert_eq!(got.answer, BatchAnswer::KnMatch(want));
    }

    #[test]
    fn accessors_and_empty_batch() {
        let engine = fig3_sharded(2);
        assert!(engine.run(&[]).is_empty());
        assert_eq!(engine.workers(), 2);
        assert_eq!(engine.columns().cardinality(), 5);
        assert_eq!(engine.columns().dims(), 3);
        assert!(ShardedQueryEngine::new(engine.columns().clone()).workers() >= 1);
        assert_eq!(
            ShardedQueryEngine::with_workers(engine.columns().clone(), 0).workers(),
            1
        );
    }

    #[test]
    fn deadlines_fail_queries_individually_and_generous_ones_change_nothing() {
        let engine = fig3_sharded(2);
        let opts = BatchOptions {
            deadline: Some(std::time::Duration::ZERO),
            ..BatchOptions::default()
        };
        for r in engine.run_with(&fig3_batch(), &opts) {
            assert_eq!(r, Err(KnMatchError::DeadlineExceeded));
        }
        let opts = BatchOptions {
            deadline: Some(std::time::Duration::from_secs(3600)),
            ..BatchOptions::default()
        };
        assert_eq!(
            engine.run_with(&fig3_batch(), &opts),
            engine.run(&fig3_batch())
        );
    }

    #[test]
    fn totals_sum_per_shard_stats() {
        let engine = fig3_sharded(3);
        let out = engine
            .execute(&BatchQuery::KnMatch {
                query: vec![3.0, 7.0, 4.0],
                k: 2,
                n: 2,
            })
            .unwrap();
        let mut sum = AdStats::default();
        for s in &out.per_shard {
            sum.accumulate(s);
        }
        assert_eq!(out.stats, sum);
        assert_eq!(out.stats.locate_probes, 9); // 3 dims × 3 shards
    }
}
