//! Naive full-scan algorithms for (frequent) k-n-match queries.
//!
//! These retrieve every attribute of every point (`c · d` accesses) and are
//! the reference implementations the paper's Section 3 opens with: compute
//! each point's n-match difference and keep the top k. They serve as the
//! correctness oracle for the AD algorithm and as the "scan" baseline in the
//! efficiency experiments.

use crate::ad::validate_params;
use crate::error::Result;
use crate::nmatch::sorted_differences_with_buf;
use crate::point::{Dataset, PointId};
use crate::result::{rank_frequent, FrequentResult, KnMatchResult};
use crate::topk::TopK;

/// Answers a k-n-match query by scanning every point.
///
/// Ties at the k-th difference break by ascending point id (any choice is
/// a correct answer per Definition 3).
///
/// # Errors
///
/// Validates the query shape and parameters; see
/// [`crate::KnMatchError`].
pub fn k_n_match_scan(ds: &Dataset, query: &[f64], k: usize, n: usize) -> Result<KnMatchResult> {
    validate_params(query, ds.dims(), ds.len(), k, n, n)?;
    let mut top = TopK::new(k);
    let mut buf = Vec::with_capacity(ds.dims());
    for (pid, p) in ds.iter() {
        // For a single n, O(d) selection beats the full sort.
        let diff = crate::nmatch::nmatch_difference_with_buf(p, query, n, &mut buf);
        top.offer(pid, diff);
    }
    Ok(top.into_result(n))
}

/// Answers a frequent k-n-match query by scanning every point, maintaining
/// one top-k answer set per `n ∈ [n0, n1]` (the paper's naive algorithm).
///
/// # Errors
///
/// Validates the query shape and parameters; see
/// [`crate::KnMatchError`].
pub fn frequent_k_n_match_scan(
    ds: &Dataset,
    query: &[f64],
    k: usize,
    n0: usize,
    n1: usize,
) -> Result<FrequentResult> {
    validate_params(query, ds.dims(), ds.len(), k, n0, n1)?;
    let mut tops: Vec<TopK> = (n0..=n1).map(|_| TopK::new(k)).collect();
    let mut buf = Vec::with_capacity(ds.dims());
    for (pid, p) in ds.iter() {
        // One sorted-difference pass serves every n in the range.
        sorted_differences_with_buf(p, query, &mut buf);
        for (i, top) in tops.iter_mut().enumerate() {
            top.offer(pid, buf[n0 + i - 1]);
        }
    }
    let per_n: Vec<KnMatchResult> = tops
        .into_iter()
        .enumerate()
        .map(|(i, t)| t.into_result(n0 + i))
        .collect();
    let mut counts: Vec<u32> = vec![0; ds.len()];
    for res in &per_n {
        for e in &res.entries {
            counts[e.pid as usize] += 1;
        }
    }
    let pairs: Vec<(PointId, u32)> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(pid, &c)| (pid as PointId, c))
        .collect();
    let entries = rank_frequent(&pairs, k);
    Ok(FrequentResult {
        range: (n0, n1),
        entries,
        per_n,
    })
}

/// The paper's "scan" efficiency baseline: like [`k_n_match_scan`] but also
/// reports the number of attributes it retrieved (always `c · d`).
///
/// # Errors
///
/// Same as [`k_n_match_scan`].
pub fn k_n_match_scan_counted(
    ds: &Dataset,
    query: &[f64],
    k: usize,
    n: usize,
) -> Result<(KnMatchResult, u64)> {
    let res = k_n_match_scan(ds, query, k, n)?;
    Ok((res, (ds.len() as u64) * (ds.dims() as u64)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::KnMatchError;

    /// The paper's Figure 1 database, query (1,…,1).
    fn fig1() -> (Dataset, Vec<f64>) {
        (crate::paper::fig1_dataset(), crate::paper::fig1_query())
    }

    #[test]
    fn fig1_nmatch_answers() {
        // "point 3 is the 6-match (ε=0), point 1 the 7-match (ε=0.2),
        //  point 2 the 8-match (ε=0.4)" — ids 0-based here.
        let (ds, q) = fig1();
        let m6 = k_n_match_scan(&ds, &q, 1, 6).unwrap();
        assert_eq!(m6.ids(), vec![2]);
        assert_eq!(m6.epsilon(), 0.0);
        let m7 = k_n_match_scan(&ds, &q, 1, 7).unwrap();
        assert_eq!(m7.ids(), vec![0]);
        assert!((m7.epsilon() - 0.2).abs() < 1e-9);
        let m8 = k_n_match_scan(&ds, &q, 1, 8).unwrap();
        assert_eq!(m8.ids(), vec![1]);
        assert!((m8.epsilon() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn fig1_two_6_match_with_flexible_eps() {
        // With ε = 0.2 (the 2nd-smallest 6-match difference), object 1 also
        // becomes a 6-match answer: the 2-6-match set is {3, 1} (1-based).
        let (ds, q) = fig1();
        let res = k_n_match_scan(&ds, &q, 2, 6).unwrap();
        assert_eq!(res.ids(), vec![2, 0]);
        assert!((res.epsilon() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn frequent_scan_counts_across_range() {
        let (ds, q) = fig1();
        let freq = frequent_k_n_match_scan(&ds, &q, 2, 1, 10).unwrap();
        assert_eq!(freq.per_n.len(), 10);
        // Objects 1–3 dominate the per-n sets; object 4 (all-20s) should
        // never beat them for any n (its every diff is 19).
        assert_eq!(freq.count_of(3), 0);
        // Top-2 must be drawn from {0, 1, 2}.
        for e in &freq.entries {
            assert!(e.pid <= 2);
        }
    }

    #[test]
    fn frequent_counts_match_per_n_membership() {
        let (ds, q) = fig1();
        let freq = frequent_k_n_match_scan(&ds, &q, 3, 2, 9).unwrap();
        for e in &freq.entries {
            let membership = freq.per_n.iter().filter(|r| r.contains(e.pid)).count() as u32;
            assert_eq!(e.count, membership);
        }
    }

    #[test]
    fn scan_matches_bruteforce_sorted_selection() {
        let (ds, q) = fig1();
        for n in 1..=10 {
            let res = k_n_match_scan(&ds, &q, 4, n).unwrap();
            let mut all: Vec<(f64, PointId)> = ds
                .iter()
                .map(|(pid, p)| (crate::nmatch::nmatch_difference(p, &q, n), pid))
                .collect();
            all.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let want: Vec<PointId> = all.iter().map(|&(_, pid)| pid).collect();
            assert_eq!(res.ids(), want, "n={n}");
        }
    }

    #[test]
    fn counted_scan_reports_full_cost() {
        let (ds, q) = fig1();
        let (_, cost) = k_n_match_scan_counted(&ds, &q, 1, 3).unwrap();
        assert_eq!(cost, 40);
    }

    #[test]
    fn validation_is_shared_with_ad() {
        let (ds, _) = fig1();
        assert!(matches!(
            k_n_match_scan(&ds, &[1.0; 10], 0, 1),
            Err(KnMatchError::InvalidK { .. })
        ));
        assert!(matches!(
            k_n_match_scan(&ds, &[1.0; 10], 1, 11),
            Err(KnMatchError::InvalidRange { .. })
        ));
        assert!(matches!(
            frequent_k_n_match_scan(&ds, &[1.0; 9], 1, 1, 10),
            Err(KnMatchError::DimensionMismatch { .. })
        ));
    }
}

/// Multi-threaded k-n-match scan: splits the dataset across `threads`
/// OS threads (std scoped threads — the algorithm is embarrassingly
/// parallel) and merges the per-shard top-k sets. Same answers as
/// [`k_n_match_scan`].
///
/// # Errors
///
/// Validates like [`k_n_match_scan`]; `threads == 0` is treated as 1.
pub fn k_n_match_scan_parallel(
    ds: &Dataset,
    query: &[f64],
    k: usize,
    n: usize,
    threads: usize,
) -> Result<KnMatchResult> {
    validate_params(query, ds.dims(), ds.len(), k, n, n)?;
    let threads = threads.max(1).min(ds.len());
    if threads == 1 {
        return k_n_match_scan(ds, query, k, n);
    }
    let chunk = ds.len().div_ceil(threads);
    let partials: Vec<Vec<crate::result::MatchEntry>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(ds.len());
            handles.push(scope.spawn(move || {
                let mut top = TopK::new(k.min(hi - lo));
                let mut buf = Vec::with_capacity(ds.dims());
                for pid in lo..hi {
                    let p = ds.point(pid as PointId);
                    let diff = crate::nmatch::nmatch_difference_with_buf(p, query, n, &mut buf);
                    top.offer(pid as PointId, diff);
                }
                top.into_result(n).entries
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("scan shard panicked"))
            .collect()
    });
    let mut top = TopK::new(k);
    for shard in partials {
        for e in shard {
            top.offer(e.pid, e.diff);
        }
    }
    Ok(top.into_result(n))
}

#[cfg(test)]
mod parallel_tests {
    use super::*;

    #[test]
    fn parallel_matches_serial() {
        let rows: Vec<Vec<f64>> = (0..5000)
            .map(|i| {
                vec![
                    (i as f64 * 0.37) % 1.0,
                    (i as f64 * 0.73) % 1.0,
                    (i as f64 * 0.11) % 1.0,
                ]
            })
            .collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let q = [0.3, 0.6, 0.9];
        for threads in [1usize, 2, 4, 7] {
            for n in [1usize, 2, 3] {
                let par = k_n_match_scan_parallel(&ds, &q, 25, n, threads).unwrap();
                let ser = k_n_match_scan(&ds, &q, 25, n).unwrap();
                assert_eq!(par.ids(), ser.ids(), "threads={threads} n={n}");
            }
        }
    }

    #[test]
    fn more_threads_than_points() {
        let ds = Dataset::from_rows(&[[0.1], [0.9], [0.5]]).unwrap();
        let res = k_n_match_scan_parallel(&ds, &[0.0], 2, 1, 64).unwrap();
        assert_eq!(res.ids(), vec![0, 2]);
    }

    #[test]
    fn zero_threads_means_one() {
        let ds = Dataset::from_rows(&[[0.1], [0.9]]).unwrap();
        let res = k_n_match_scan_parallel(&ds, &[1.0], 1, 1, 0).unwrap();
        assert_eq!(res.ids(), vec![1]);
    }
}
