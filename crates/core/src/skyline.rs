//! Query-relative skyline — the comparison query of Section 2.1.
//!
//! The paper contrasts k-n-match with the skyline operator: for Figure 2's
//! points, the skyline (of per-dimension closeness to `Q`) is `{A, B, C}`
//! while k-n-match answers depend on `k` and `n`. We implement a
//! block-nested-loop skyline over the per-dimension absolute differences to
//! the query: `P1` dominates `P2` iff it is at least as close in every
//! dimension and strictly closer in one.

use crate::error::Result;
use crate::point::{Dataset, PointId};

/// Dominance test on difference vectors: does `a` dominate `b`?
fn dominates(a: &[f64], b: &[f64]) -> bool {
    let mut strictly = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly = true;
        }
    }
    strictly
}

/// Returns the skyline of `ds` with respect to `query`: the ids of all
/// points not dominated (in per-dimension closeness to the query) by any
/// other point, in ascending id order.
///
/// # Errors
///
/// Propagates [`Dataset::validate_query`] errors; an empty dataset yields
/// [`crate::KnMatchError::EmptyDataset`].
pub fn skyline_wrt(ds: &Dataset, query: &[f64]) -> Result<Vec<PointId>> {
    if ds.is_empty() {
        return Err(crate::error::KnMatchError::EmptyDataset);
    }
    ds.validate_query(query)?;
    let diffs: Vec<Vec<f64>> = ds
        .iter()
        .map(|(_, p)| p.iter().zip(query).map(|(a, b)| (a - b).abs()).collect())
        .collect();
    // Block-nested-loop: keep a window of currently-undominated points.
    let mut window: Vec<PointId> = Vec::new();
    'cand: for (pid, _) in ds.iter() {
        let d = &diffs[pid as usize];
        let mut i = 0;
        while i < window.len() {
            let w = &diffs[window[i] as usize];
            if dominates(w, d) {
                continue 'cand; // candidate dominated → drop it
            }
            if dominates(d, w) {
                window.swap_remove(i); // candidate kills a window point
            } else {
                i += 1;
            }
        }
        window.push(pid);
    }
    window.sort_unstable();
    Ok(window)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Coordinates consistent with the paper's Figure 2: A is the 1-match
    /// (smallest single-dimension difference), B the 2-match, the skyline is
    /// {A, B, C}, {A, D, E} is the 3-1-match and {A, B} the 2-2-match.
    pub(crate) fn fig2() -> (Dataset, Vec<f64>) {
        // Q at origin of the difference space; coordinates chosen to honour
        // the figure's geometry (differences to Q in (x, y)):
        //   A: (0.2, 3.5)   — closest in x
        //   B: (1.2, 1.5)   — best two-dimensional box
        //   C: (4.0, 0.9)   — closest in y
        //   D: (0.6, 5.5)
        //   E: (0.85, 6.0)
        let q = vec![5.0, 5.0];
        let ds = Dataset::from_rows(&[
            vec![5.2, 8.5],   // A
            vec![6.2, 6.5],   // B
            vec![9.0, 5.9],   // C
            vec![5.6, 10.5],  // D
            vec![5.85, 11.0], // E
        ])
        .unwrap();
        (ds, q)
    }

    #[test]
    fn fig2_skyline_is_a_b_c() {
        let (ds, q) = fig2();
        assert_eq!(skyline_wrt(&ds, &q).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn fig2_nmatch_answers_differ_from_skyline() {
        let (ds, q) = fig2();
        // 1-match: A; 2-match: B (paper text).
        let m1 = crate::naive::k_n_match_scan(&ds, &q, 1, 1).unwrap();
        assert_eq!(m1.ids(), vec![0]);
        let m2 = crate::naive::k_n_match_scan(&ds, &q, 1, 2).unwrap();
        assert_eq!(m2.ids(), vec![1]);
        // 3-1-match: {A, D, E}; 2-2-match: {A, B}.
        let m31 = crate::naive::k_n_match_scan(&ds, &q, 3, 1).unwrap();
        let mut ids = m31.ids();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 3, 4]);
        let m22 = crate::naive::k_n_match_scan(&ds, &q, 2, 2).unwrap();
        let mut ids = m22.ids();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1]);
        // None of those equals the skyline {A, B, C}.
        assert_ne!(skyline_wrt(&ds, &q).unwrap(), m31.ids());
    }

    #[test]
    fn identical_points_are_both_kept() {
        let ds = Dataset::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]).unwrap();
        assert_eq!(skyline_wrt(&ds, &[0.0, 0.0]).unwrap(), vec![0, 1]);
    }

    #[test]
    fn single_dominator_wins() {
        let ds = Dataset::from_rows(&[vec![0.1, 0.1], vec![0.5, 0.5], vec![0.9, 0.2]]).unwrap();
        assert_eq!(skyline_wrt(&ds, &[0.0, 0.0]).unwrap(), vec![0]);
    }

    #[test]
    fn dominates_requires_strictness() {
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0]));
        assert!(dominates(&[1.0, 0.5], &[1.0, 1.0]));
        assert!(!dominates(&[1.0, 2.0], &[2.0, 1.0]));
    }

    #[test]
    fn empty_dataset_errors() {
        let ds = Dataset::new(2).unwrap();
        assert!(skyline_wrt(&ds, &[0.0, 0.0]).is_err());
    }
}
