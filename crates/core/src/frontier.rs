//! The AD algorithm's frontier `g[]` — the per-cursor candidate set from
//! which the globally smallest difference pops next — plus the shared
//! cursor-walking machinery.
//!
//! The paper maintains `g[]` as a plain array of `2d` triples and scans it
//! for the minimum on every pop (`smallest(g)`, Figure 4). That is O(d)
//! per pop; a binary heap makes it O(log d). Both are implemented behind
//! the [`Frontier`] trait — identical answers, different constant factors —
//! and benched against each other as an ablation (`frontier` bench).

use std::collections::BinaryHeap;

use crate::ad::AdStats;
use crate::point::PointId;
use crate::source::SortedAccessSource;

/// A frontier item: the paper's `(pid, pd, dif)` triple. `cid` identifies
/// the cursor (dimension × direction) that produced it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Triple {
    pub diff: f64,
    pub cid: u32,
    pub pid: PointId,
}

impl Eq for Triple {}

impl PartialOrd for Triple {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Triple {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Inverted so BinaryHeap (a max-heap) pops the smallest difference;
        // ties break on cursor id then pid for determinism.
        other
            .diff
            .total_cmp(&self.diff)
            .then_with(|| other.cid.cmp(&self.cid))
            .then_with(|| other.pid.cmp(&self.pid))
    }
}

/// Storage for the frontier: push one triple per live cursor, pop the one
/// with the globally smallest difference.
pub(crate) trait Frontier {
    /// Creates a frontier for `2d` cursors.
    fn with_cursors(cursors: usize) -> Self;

    /// Empties the frontier and re-sizes it for `cursors` cursors, keeping
    /// any allocation (so a reused walker allocates nothing per query).
    fn reset(&mut self, cursors: usize);

    /// Adds a triple (each cursor has at most one triple in flight).
    fn push(&mut self, t: Triple);

    /// Removes and returns the smallest-difference triple.
    fn pop(&mut self) -> Option<Triple>;

    /// The smallest-difference triple, without removing it.
    fn peek(&self) -> Option<Triple>;

    /// Swaps the smallest-difference triple for `t` in one restructuring
    /// (the walker's pop-then-refill fused into a single sift). The
    /// frontier must be non-empty. Observable behaviour is exactly
    /// `pop(); push(t)` — cursor ids make the order strict, so the pop
    /// sequence cannot depend on internal layout.
    fn replace(&mut self, t: Triple);
}

/// O(log d)-per-pop binary heap (this library's default).
#[derive(Debug)]
pub(crate) struct HeapFrontier {
    heap: BinaryHeap<Triple>,
}

impl Frontier for HeapFrontier {
    fn with_cursors(cursors: usize) -> Self {
        HeapFrontier {
            heap: BinaryHeap::with_capacity(cursors),
        }
    }

    fn reset(&mut self, cursors: usize) {
        self.heap.clear();
        if self.heap.capacity() < cursors {
            self.heap.reserve(cursors - self.heap.capacity());
        }
    }

    fn push(&mut self, t: Triple) {
        self.heap.push(t);
    }

    fn pop(&mut self) -> Option<Triple> {
        self.heap.pop()
    }

    fn peek(&self) -> Option<Triple> {
        self.heap.peek().copied()
    }

    fn replace(&mut self, t: Triple) {
        let mut root = self.heap.peek_mut().expect("replace on empty frontier");
        // Writing through PeekMut sifts down on drop: one O(log d)
        // restructure instead of pop's sift plus push's sift.
        *root = t;
    }
}

/// The paper's `g[]`: one slot per cursor, linear scan for the minimum
/// (O(d) per pop). Kept for the ablation bench and as a fidelity witness.
#[derive(Debug)]
pub(crate) struct LinearFrontier {
    slots: Vec<Option<Triple>>,
}

impl Frontier for LinearFrontier {
    fn with_cursors(cursors: usize) -> Self {
        LinearFrontier {
            slots: vec![None; cursors],
        }
    }

    fn reset(&mut self, cursors: usize) {
        self.slots.clear();
        self.slots.resize(cursors, None);
    }

    fn push(&mut self, t: Triple) {
        debug_assert!(
            self.slots[t.cid as usize].is_none(),
            "one triple per cursor"
        );
        self.slots[t.cid as usize] = Some(t);
    }

    fn pop(&mut self) -> Option<Triple> {
        let best = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|t| (i, t)))
            .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))?;
        self.slots[best.0] = None;
        Some(best.1)
    }

    fn peek(&self) -> Option<Triple> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|t| (i, t)))
            .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
            .map(|(_, t)| t)
    }

    fn replace(&mut self, t: Triple) {
        self.pop().expect("replace on empty frontier");
        self.push(t);
    }
}

/// One directional cursor: the rank it last read in its dimension.
#[derive(Debug, Clone, Copy)]
struct Cursor {
    last: usize,
}

/// The cursor-walking core of the AD algorithm: seeds `2d` cursors around
/// the query and serves `(pid, diff)` pops in ascending difference order,
/// refilling the popped cursor from the source. Generic over the frontier
/// representation and the sorted-access source.
#[derive(Debug)]
pub(crate) struct AdWalker<F: Frontier> {
    query: Vec<f64>,
    frontier: F,
    cursors: Vec<Cursor>,
    cardinality: usize,
    pub(crate) stats: AdStats,
}

impl<F: Frontier> Default for AdWalker<F> {
    fn default() -> Self {
        Self::new_empty()
    }
}

impl<F: Frontier> AdWalker<F> {
    /// An unseeded walker holding no state; [`reseed`](Self::reseed) it
    /// before walking. Exists so a walker can live in reusable scratch.
    pub(crate) fn new_empty() -> Self {
        AdWalker {
            query: Vec::new(),
            frontier: F::with_cursors(0),
            cursors: Vec::new(),
            cardinality: 0,
            stats: AdStats::default(),
        }
    }

    /// Re-points the walker at a new (source, query) pair, reusing every
    /// buffer: binary-search each dimension, push the closest attribute in
    /// each direction. Stats restart from zero.
    pub(crate) fn reseed<S: SortedAccessSource>(&mut self, src: &mut S, query: &[f64]) {
        let d = src.dims();
        let c = src.cardinality();
        self.query.clear();
        self.query.extend_from_slice(query);
        self.frontier.reset(2 * d);
        self.cursors.clear();
        self.cursors.resize(2 * d, Cursor { last: 0 });
        self.cardinality = c;
        self.stats = AdStats::default();
        for (dim, &qv) in query.iter().enumerate() {
            let pos = src.locate(dim, qv);
            self.stats.locate_probes += 1;
            if pos > 0 {
                self.read_into_frontier(src, dim, pos - 1, (2 * dim) as u32);
            }
            if pos < c {
                self.read_into_frontier(src, dim, pos, (2 * dim + 1) as u32);
            }
        }
    }

    /// Seeds a fresh walker: binary-search each dimension, push the closest
    /// attribute in each direction.
    pub(crate) fn seed<S: SortedAccessSource>(src: &mut S, query: &[f64]) -> Self {
        let mut walker = Self::new_empty();
        walker.reseed(src, query);
        walker
    }

    /// Retrieves `(dim, rank)` for cursor `cid`, counting the sorted
    /// access and advancing the cursor.
    fn retrieve<S: SortedAccessSource>(
        &mut self,
        src: &mut S,
        dim: usize,
        rank: usize,
        cid: u32,
    ) -> Triple {
        let e = src.entry(dim, rank);
        self.stats.attributes_retrieved += 1;
        self.cursors[cid as usize].last = rank;
        Triple {
            diff: (e.value - self.query[dim]).abs(),
            cid,
            pid: e.pid,
        }
    }

    fn read_into_frontier<S: SortedAccessSource>(
        &mut self,
        src: &mut S,
        dim: usize,
        rank: usize,
        cid: u32,
    ) {
        let t = self.retrieve(src, dim, rank, cid);
        self.frontier.push(t);
    }

    /// The difference the next [`next_pop`](Self::next_pop) would return,
    /// without advancing anything. `None` once the frontier is exhausted.
    /// The canonical tie drain in `frequent_core` peeks this to decide
    /// whether boundary-tied attributes remain.
    pub(crate) fn peek_diff(&self) -> Option<f64> {
        self.frontier.peek().map(|t| t.diff)
    }

    /// Pops the next `(pid, diff)` in ascending difference order and
    /// refills the popped cursor. `None` once all `c·d` attributes have
    /// been consumed. Pop and refill are fused into one
    /// [`Frontier::replace`] when the cursor has attributes left.
    pub(crate) fn next_pop<S: SortedAccessSource>(
        &mut self,
        src: &mut S,
    ) -> Option<(PointId, f64)> {
        let item = self.frontier.peek()?;
        self.stats.heap_pops += 1;
        let cid = item.cid as usize;
        let dim = cid / 2;
        let last = self.cursors[cid].last;
        let refill = if cid % 2 == 0 {
            // Towards smaller values.
            last.checked_sub(1)
        } else if last + 1 < self.cardinality {
            // Towards larger values.
            Some(last + 1)
        } else {
            None
        };
        if let Some(rank) = refill {
            let t = self.retrieve(src, dim, rank, item.cid);
            self.frontier.replace(t);
        } else {
            self.frontier.pop();
        }
        Some((item.pid, item.diff))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columns::SortedColumns;

    fn pops<F: Frontier>() -> Vec<(PointId, f64)> {
        let ds = crate::paper::fig3_dataset();
        let mut cols = SortedColumns::build(&ds);
        let mut w: AdWalker<F> = AdWalker::seed(&mut cols, &[3.0, 7.0, 4.0]);
        let mut out = Vec::new();
        while let Some(p) = w.next_pop(&mut cols) {
            out.push(p);
        }
        out
    }

    #[test]
    fn walker_emits_all_attributes_in_ascending_order() {
        let seq = pops::<HeapFrontier>();
        assert_eq!(seq.len(), 15); // c·d = 5 × 3
        assert!(seq.windows(2).all(|w| w[0].1 <= w[1].1));
        // First pops match the paper's walk: point 2 (diff 0.2) then
        // point 5 (diff 0.5), 0-based pids 1 and 4.
        assert_eq!(seq[0].0, 1);
        assert!((seq[0].1 - 0.2).abs() < 1e-12);
        assert_eq!(seq[1].0, 4);
        assert!((seq[1].1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn linear_frontier_equals_heap_frontier() {
        assert_eq!(pops::<HeapFrontier>(), pops::<LinearFrontier>());
    }

    #[test]
    fn reseeded_walker_equals_fresh_walker() {
        let ds = crate::paper::fig3_dataset();
        let mut cols = SortedColumns::build(&ds);
        let mut reused: AdWalker<HeapFrontier> = AdWalker::new_empty();
        for q in [[3.0, 7.0, 4.0], [0.0, 0.0, 0.0], [9.0, 1.0, 5.0]] {
            reused.reseed(&mut cols, &q);
            let mut fresh: AdWalker<HeapFrontier> = AdWalker::seed(&mut cols, &q);
            loop {
                let a = reused.next_pop(&mut cols);
                let b = fresh.next_pop(&mut cols);
                assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
            assert_eq!(reused.stats, fresh.stats);
        }
    }

    #[test]
    fn linear_frontier_pop_order() {
        let mut f = LinearFrontier::with_cursors(4);
        f.push(Triple {
            diff: 0.5,
            cid: 0,
            pid: 1,
        });
        f.push(Triple {
            diff: 0.1,
            cid: 2,
            pid: 2,
        });
        f.push(Triple {
            diff: 0.5,
            cid: 1,
            pid: 3,
        });
        assert_eq!(f.pop().unwrap().pid, 2);
        // Ties: smaller cid first, matching the heap's determinism.
        assert_eq!(f.pop().unwrap().cid, 0);
        assert_eq!(f.pop().unwrap().cid, 1);
        assert!(f.pop().is_none());
    }
}
