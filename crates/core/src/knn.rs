//! k-nearest-neighbour scan — the traditional similarity-search baseline
//! the paper argues against (Section 1) and compares with in Tables 2/3.

use crate::error::{KnMatchError, Result};
use crate::metrics::Metric;
use crate::point::{Dataset, PointId};
use crate::topk::TopK;

/// One nearest neighbour: point id and its distance to the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbour {
    /// The neighbouring point.
    pub pid: PointId,
    /// Its distance to the query under the metric used.
    pub dist: f64,
}

/// Returns the `k` nearest neighbours of `query` under `metric`, sorted by
/// ascending `(distance, pid)`. Ties at the k-th distance break by
/// ascending point id.
///
/// # Errors
///
/// - [`KnMatchError::DimensionMismatch`] / [`KnMatchError::NonFiniteValue`]
///   for a malformed query;
/// - [`KnMatchError::InvalidK`] when `k` is 0 or exceeds the cardinality;
/// - [`KnMatchError::EmptyDataset`] when the dataset is empty.
///
/// # Examples
///
/// ```
/// use knmatch_core::{k_nearest, Dataset, Euclidean};
///
/// let ds = Dataset::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0], vec![5.0, 5.0]]).unwrap();
/// let nn = k_nearest(&ds, &[0.9, 0.9], 2, &Euclidean).unwrap();
/// assert_eq!(nn[0].pid, 1);
/// assert_eq!(nn[1].pid, 0);
/// ```
pub fn k_nearest<M: Metric + ?Sized>(
    ds: &Dataset,
    query: &[f64],
    k: usize,
    metric: &M,
) -> Result<Vec<Neighbour>> {
    if ds.is_empty() {
        return Err(KnMatchError::EmptyDataset);
    }
    ds.validate_query(query)?;
    if k == 0 || k > ds.len() {
        return Err(KnMatchError::InvalidK {
            k,
            cardinality: ds.len(),
        });
    }
    let mut top = TopK::new(k);
    for (pid, p) in ds.iter() {
        top.offer(pid, metric.dist(p, query));
    }
    Ok(top
        .into_sorted()
        .into_iter()
        .map(|(pid, dist)| Neighbour { pid, dist })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Chebyshev, Euclidean, Manhattan};

    #[test]
    fn paper_fig1_knn_prefers_uniformly_off_point() {
        // Section 1: Euclidean NN of (1,…,1) is object 4 (all 20s), even
        // though objects 1–3 match in 9 of 10 dimensions.
        let ds = crate::paper::fig1_dataset();
        let nn = k_nearest(&ds, &crate::paper::fig1_query(), 1, &Euclidean).unwrap();
        assert_eq!(nn[0].pid, 3, "the all-20s object wins under Euclidean");
    }

    #[test]
    fn sorted_ascending_and_exact_k() {
        let ds = Dataset::from_rows(&[[3.0], [1.0], [2.0], [5.0]]).unwrap();
        let nn = k_nearest(&ds, &[0.0], 3, &Manhattan).unwrap();
        let ids: Vec<PointId> = nn.iter().map(|n| n.pid).collect();
        assert_eq!(ids, vec![1, 2, 0]);
        assert!(nn.windows(2).all(|w| w[0].dist <= w[1].dist));
    }

    #[test]
    fn ties_break_by_pid() {
        let ds = Dataset::from_rows(&[[1.0], [-1.0], [1.0]]).unwrap();
        let nn = k_nearest(&ds, &[0.0], 2, &Euclidean).unwrap();
        let ids: Vec<PointId> = nn.iter().map(|n| n.pid).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn works_with_all_metrics() {
        let ds = Dataset::from_rows(&[vec![0.0, 0.0], vec![0.5, 0.9]]).unwrap();
        for m in [&Euclidean as &dyn Metric, &Manhattan, &Chebyshev] {
            let nn = k_nearest(&ds, &[0.4, 0.8], 1, m).unwrap();
            assert_eq!(nn[0].pid, 1, "metric {}", m.name());
        }
    }

    #[test]
    fn validation() {
        let ds = Dataset::from_rows(&[[0.0], [1.0]]).unwrap();
        assert!(matches!(
            k_nearest(&ds, &[0.0], 0, &Euclidean),
            Err(KnMatchError::InvalidK { .. })
        ));
        assert!(matches!(
            k_nearest(&ds, &[0.0], 3, &Euclidean),
            Err(KnMatchError::InvalidK { .. })
        ));
        assert!(matches!(
            k_nearest(&ds, &[0.0, 1.0], 1, &Euclidean),
            Err(KnMatchError::DimensionMismatch { .. })
        ));
    }
}
