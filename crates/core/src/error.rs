//! Error types shared by all k-n-match query operations.

use std::fmt;

/// Errors raised when validating or executing a (frequent) k-n-match query.
#[derive(Debug, Clone, PartialEq)]
pub enum KnMatchError {
    /// The query point's dimensionality differs from the dataset's.
    DimensionMismatch {
        /// Dimensionality of the dataset.
        expected: usize,
        /// Dimensionality of the offending point.
        actual: usize,
    },
    /// `k` was zero or exceeded the dataset cardinality.
    InvalidK {
        /// The requested `k`.
        k: usize,
        /// The dataset cardinality.
        cardinality: usize,
    },
    /// `n` was zero or exceeded the dimensionality.
    InvalidN {
        /// The requested `n`.
        n: usize,
        /// The dataset dimensionality.
        dims: usize,
    },
    /// A frequent k-n-match range `[n0, n1]` was empty or out of `[1, d]`.
    InvalidRange {
        /// Lower end of the requested range.
        n0: usize,
        /// Upper end of the requested range.
        n1: usize,
        /// The dataset dimensionality.
        dims: usize,
    },
    /// The dataset holds no points, so no query can be answered.
    EmptyDataset,
    /// A coordinate was NaN or infinite; the matching model requires finite
    /// values (differences must totally order).
    NonFiniteValue {
        /// Dimension of the offending coordinate.
        dim: usize,
    },
    /// A point with zero dimensions was supplied.
    ZeroDimensions,
    /// An ε-n-match threshold was negative, NaN, or infinite.
    InvalidEpsilon {
        /// The offending threshold.
        eps: f64,
    },
    /// The query ran past its cooperative deadline (see
    /// [`QueryControl`](crate::QueryControl)) and was abandoned.
    DeadlineExceeded,
    /// The query was cancelled before completing (a fail-fast batch
    /// aborts its remaining queries once one fails).
    Cancelled,
    /// A storage-layer failure (I/O error, checksum mismatch) surfaced
    /// while the query was reading pages. The message is the rendered
    /// storage error; the query's result slot is the only casualty.
    Storage {
        /// Rendered storage-layer error.
        message: String,
    },
    /// The query panicked; the panic was caught at the query boundary
    /// and isolated to this result slot.
    Panicked {
        /// Rendered panic payload.
        message: String,
    },
    /// A versioned-index write referenced a key that holds no live point
    /// (see [`VersionWriter`](crate::VersionWriter)).
    KeyNotFound {
        /// The missing key.
        key: crate::point::PointId,
    },
}

impl fmt::Display for KnMatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KnMatchError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "dimension mismatch: dataset has {expected} dims, point has {actual}"
                )
            }
            KnMatchError::InvalidK { k, cardinality } => {
                write!(
                    f,
                    "invalid k={k}: must satisfy 1 <= k <= cardinality ({cardinality})"
                )
            }
            KnMatchError::InvalidN { n, dims } => {
                write!(
                    f,
                    "invalid n={n}: must satisfy 1 <= n <= dimensionality ({dims})"
                )
            }
            KnMatchError::InvalidRange { n0, n1, dims } => {
                write!(
                    f,
                    "invalid range [{n0}, {n1}]: must satisfy 1 <= n0 <= n1 <= d ({dims})"
                )
            }
            KnMatchError::EmptyDataset => write!(f, "dataset is empty"),
            KnMatchError::NonFiniteValue { dim } => {
                write!(f, "non-finite coordinate in dimension {dim}")
            }
            KnMatchError::ZeroDimensions => write!(f, "points must have at least one dimension"),
            KnMatchError::InvalidEpsilon { eps } => {
                write!(f, "invalid epsilon {eps}: must be finite and non-negative")
            }
            KnMatchError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            KnMatchError::Cancelled => write!(f, "query cancelled (batch fail-fast)"),
            KnMatchError::Storage { message } => write!(f, "storage failure: {message}"),
            KnMatchError::Panicked { message } => write!(f, "query panicked: {message}"),
            KnMatchError::KeyNotFound { key } => {
                write!(f, "key {key} holds no live point")
            }
        }
    }
}

impl std::error::Error for KnMatchError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, KnMatchError>;

/// Renders a caught panic payload (as produced by
/// `std::panic::catch_unwind`) into a human-readable message. `panic!`
/// with a format string yields a `String`, a literal yields `&str`;
/// anything else (a `panic_any` payload a caller did not recognise) gets
/// a generic label.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_parameters() {
        let e = KnMatchError::DimensionMismatch {
            expected: 4,
            actual: 3,
        };
        assert!(e.to_string().contains('4') && e.to_string().contains('3'));
        let e = KnMatchError::InvalidK {
            k: 9,
            cardinality: 5,
        };
        assert!(e.to_string().contains("k=9"));
        let e = KnMatchError::InvalidN { n: 7, dims: 4 };
        assert!(e.to_string().contains("n=7"));
        let e = KnMatchError::InvalidRange {
            n0: 3,
            n1: 2,
            dims: 4,
        };
        assert!(e.to_string().contains("[3, 2]"));
        assert_eq!(KnMatchError::EmptyDataset.to_string(), "dataset is empty");
        let e = KnMatchError::NonFiniteValue { dim: 2 };
        assert!(e.to_string().contains("dimension 2"));
        let e = KnMatchError::InvalidEpsilon { eps: -0.5 };
        assert!(e.to_string().contains("-0.5") && e.to_string().contains("epsilon"));
        let e = KnMatchError::KeyNotFound { key: 42 };
        assert!(e.to_string().contains("42"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&KnMatchError::EmptyDataset);
    }
}
