//! Property-based tests: the AD algorithm must agree with the naive
//! full-scan oracle on every random instance, and the paper's structural
//! invariants must hold.
//!
//! Tie discipline: when two per-dimension differences are exactly equal,
//! Definition 3 allows several correct answer sets (the *multiset of
//! differences* is unique, the ids are not). Properties that compare ids
//! therefore assume globally distinct differences — which random `f64`
//! coordinates give almost surely — via `prop_assume`.

use knmatch_core::{
    frequent_k_n_match_ad, frequent_k_n_match_scan, k_n_match_ad, k_n_match_scan,
    nmatch_difference, sorted_differences, Dataset, SortedColumns,
};
use proptest::prelude::*;

/// Strategy: a (rows, query) pair with 1..=6 dims and 1..=24 points,
/// coordinates in [0, 1).
fn db_and_query() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    (1usize..=6, 1usize..=24).prop_flat_map(|(d, c)| {
        (
            proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, d), c),
            proptest::collection::vec(0.0f64..1.0, d),
        )
    })
}

/// True iff all `c · d` per-dimension differences to the query are distinct
/// (then every per-n ranking is strict and answer sets are unique).
fn all_diffs_distinct(rows: &[Vec<f64>], query: &[f64]) -> bool {
    let mut diffs: Vec<f64> = rows
        .iter()
        .flat_map(|p| p.iter().zip(query).map(|(a, b)| (a - b).abs()))
        .collect();
    diffs.sort_unstable_by(f64::total_cmp);
    diffs.windows(2).all(|w| w[0] < w[1])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Theorem 3.1 (correctness): AD's answer ids and differences equal the
    /// naive oracle's for every k and n (under distinct differences).
    #[test]
    fn ad_matches_naive_oracle((rows, query) in db_and_query()) {
        prop_assume!(all_diffs_distinct(&rows, &query));
        let ds = Dataset::from_rows(&rows).unwrap();
        let mut cols = SortedColumns::build(&ds);
        let c = rows.len();
        let d = query.len();
        for n in 1..=d {
            for k in [1, (c + 1) / 2, c] {
                let naive = k_n_match_scan(&ds, &query, k, n).unwrap();
                let (ad, _) = k_n_match_ad(&mut cols, &query, k, n).unwrap();
                prop_assert_eq!(naive.ids(), ad.ids(), "k={} n={}", k, n);
                let nd = naive.diffs();
                let ad_d = ad.diffs();
                for (a, b) in nd.iter().zip(&ad_d) {
                    prop_assert!((a - b).abs() < 1e-12);
                }
            }
        }
    }

    /// Even with ties, the multiset of answer differences is unique: compare
    /// sorted diffs without assuming distinctness.
    #[test]
    fn ad_diff_multiset_matches_naive_even_with_ties(
        (rows, query) in db_and_query(),
        k_sel in 0usize..3,
        n_sel in 0usize..3,
    ) {
        let ds = Dataset::from_rows(&rows).unwrap();
        let mut cols = SortedColumns::build(&ds);
        let c = rows.len();
        let d = query.len();
        let k = [1, (c + 1) / 2, c][k_sel].max(1);
        let n = ([1, (d + 1) / 2, d][n_sel]).max(1);
        let naive = k_n_match_scan(&ds, &query, k, n).unwrap();
        let (ad, _) = k_n_match_ad(&mut cols, &query, k, n).unwrap();
        let nd = naive.diffs();
        let ad_d = ad.diffs();
        prop_assert_eq!(nd.len(), ad_d.len());
        for (a, b) in nd.iter().zip(&ad_d) {
            prop_assert!((a - b).abs() < 1e-12, "naive {:?} vs ad {:?}", nd, ad_d);
        }
    }

    /// FKNMatchAD equals the naive frequent oracle: same per-n answer sets,
    /// same appearance counts, same ranked ids.
    #[test]
    fn frequent_ad_matches_naive((rows, query) in db_and_query()) {
        prop_assume!(all_diffs_distinct(&rows, &query));
        let ds = Dataset::from_rows(&rows).unwrap();
        let mut cols = SortedColumns::build(&ds);
        let c = rows.len();
        let d = query.len();
        let k = ((c + 1) / 2).max(1);
        let n0 = 1;
        let n1 = d;
        let naive = frequent_k_n_match_scan(&ds, &query, k, n0, n1).unwrap();
        let (ad, _) = frequent_k_n_match_ad(&mut cols, &query, k, n0, n1).unwrap();
        prop_assert_eq!(naive.per_n.len(), ad.per_n.len());
        for (a, b) in naive.per_n.iter().zip(&ad.per_n) {
            prop_assert_eq!(a.n, b.n);
            prop_assert_eq!(a.ids(), b.ids(), "per-n sets differ at n={}", a.n);
        }
        prop_assert_eq!(naive.ids(), ad.ids());
        for (a, b) in naive.entries.iter().zip(&ad.entries) {
            prop_assert_eq!(a.count, b.count);
        }
    }

    /// The n-match difference is monotone non-decreasing in n and symmetric.
    #[test]
    fn nmatch_difference_monotone_and_symmetric(
        p in proptest::collection::vec(0.0f64..1.0, 1..8),
        q_seed in proptest::collection::vec(0.0f64..1.0, 1..8),
    ) {
        let d = p.len().min(q_seed.len());
        let p = &p[..d];
        let q = &q_seed[..d];
        let mut prev = f64::NEG_INFINITY;
        for n in 1..=d {
            let v = nmatch_difference(p, q, n);
            prop_assert!(v >= prev);
            prop_assert_eq!(v, nmatch_difference(q, p, n));
            prev = v;
        }
        // And it equals the sorted-differences entry.
        let all = sorted_differences(p, q);
        for n in 1..=d {
            prop_assert_eq!(all[n - 1], nmatch_difference(p, q, n));
        }
    }

    /// Cost sanity: AD never retrieves more than all c·d attributes, and the
    /// frequent variant costs exactly as much as a plain k-n1-match
    /// (Theorem 3.3).
    #[test]
    fn ad_cost_bounds((rows, query) in db_and_query()) {
        let ds = Dataset::from_rows(&rows).unwrap();
        let mut cols = SortedColumns::build(&ds);
        let c = rows.len() as u64;
        let d = query.len();
        let k = ((rows.len() + 1) / 2).max(1);
        let n1 = d;
        let (_, plain) = k_n_match_ad(&mut cols, &query, k, n1).unwrap();
        prop_assert!(plain.attributes_retrieved <= c * d as u64);
        let (_, freq) = frequent_k_n_match_ad(&mut cols, &query, k, 1, n1).unwrap();
        prop_assert_eq!(freq.attributes_retrieved, plain.attributes_retrieved);
        prop_assert_eq!(freq.heap_pops, plain.heap_pops);
    }

    /// Every answer's diff is a true n-match difference of that point, and
    /// no non-answer point has a diff strictly below ε (soundness +
    /// completeness at the threshold).
    #[test]
    fn answers_are_sound_and_complete((rows, query) in db_and_query()) {
        let ds = Dataset::from_rows(&rows).unwrap();
        let mut cols = SortedColumns::build(&ds);
        let d = query.len();
        let k = ((rows.len() + 1) / 2).max(1);
        for n in [1, d] {
            let (res, _) = k_n_match_ad(&mut cols, &query, k, n).unwrap();
            let eps = res.epsilon();
            for e in &res.entries {
                let true_diff = nmatch_difference(&rows[e.pid as usize], &query, n);
                prop_assert!((true_diff - e.diff).abs() < 1e-12);
            }
            for (pid, row) in rows.iter().enumerate() {
                if !res.contains(pid as u32) {
                    prop_assert!(nmatch_difference(row, &query, n) >= eps);
                }
            }
        }
    }

    /// The 1-match answer's point must agree with the query in at least one
    /// dimension within ε, and with n = d the answer is the Chebyshev NN.
    #[test]
    fn boundary_n_semantics((rows, query) in db_and_query()) {
        prop_assume!(all_diffs_distinct(&rows, &query));
        let ds = Dataset::from_rows(&rows).unwrap();
        let mut cols = SortedColumns::build(&ds);
        let d = query.len();
        let (m1, _) = k_n_match_ad(&mut cols, &query, 1, 1).unwrap();
        let best_single = rows
            .iter()
            .map(|p| {
                p.iter()
                    .zip(&query)
                    .map(|(a, b)| (a - b).abs())
                    .fold(f64::INFINITY, f64::min)
            })
            .fold(f64::INFINITY, f64::min);
        prop_assert!((m1.epsilon() - best_single).abs() < 1e-12);
        let (md, _) = k_n_match_ad(&mut cols, &query, 1, d).unwrap();
        let best_linf = rows
            .iter()
            .map(|p| {
                p.iter().zip(&query).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max)
            })
            .fold(f64::INFINITY, f64::min);
        prop_assert!((md.epsilon() - best_linf).abs() < 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The streaming iterator's first-k prefix equals the batch k-n-match
    /// answer (same diffs; same ids under distinct differences).
    #[test]
    fn stream_prefix_equals_batch((rows, query) in db_and_query()) {
        prop_assume!(all_diffs_distinct(&rows, &query));
        let ds = Dataset::from_rows(&rows).unwrap();
        let mut a = SortedColumns::build(&ds);
        let mut b = SortedColumns::build(&ds);
        let d = query.len();
        let c = rows.len();
        let n = (d + 1) / 2;
        let k = ((c + 1) / 2).max(1);
        let mut prefix: Vec<knmatch_core::MatchEntry> =
            knmatch_core::NMatchStream::new(&mut a, &query, n).unwrap().take(k).collect();
        prefix.sort_by(|x, y| x.diff.total_cmp(&y.diff).then(x.pid.cmp(&y.pid)));
        let (batch, _) = k_n_match_ad(&mut b, &query, k, n).unwrap();
        prop_assert_eq!(prefix, batch.entries);
    }

    /// The linear-frontier (paper-literal g[]) variant is identical to the
    /// heap variant in answers AND cost counters.
    #[test]
    fn linear_frontier_identical((rows, query) in db_and_query()) {
        let ds = Dataset::from_rows(&rows).unwrap();
        let mut cols = SortedColumns::build(&ds);
        let d = query.len();
        let c = rows.len();
        let k = ((c + 1) / 2).max(1);
        let (a, sa) = frequent_k_n_match_ad(&mut cols, &query, k, 1, d).unwrap();
        let (b, sb) =
            knmatch_core::frequent_k_n_match_ad_linear(&mut cols, &query, k, 1, d).unwrap();
        prop_assert_eq!(a.ids(), b.ids());
        prop_assert_eq!(sa, sb);
        for (x, y) in a.per_n.iter().zip(&b.per_n) {
            prop_assert_eq!(x.ids(), y.ids());
        }
    }

    /// eps-n-match returns exactly the points whose n-match difference is
    /// within the threshold.
    #[test]
    fn eps_match_equals_filter(
        (rows, query) in db_and_query(),
        eps in 0.0f64..1.0,
    ) {
        prop_assume!(all_diffs_distinct(&rows, &query));
        let ds = Dataset::from_rows(&rows).unwrap();
        let mut cols = SortedColumns::build(&ds);
        let d = query.len();
        let n = (d + 1) / 2;
        let (res, _) = knmatch_core::eps_n_match_ad(&mut cols, &query, eps, n).unwrap();
        let mut want: Vec<u32> = rows
            .iter()
            .enumerate()
            .filter(|(_, p)| nmatch_difference(p, &query, n) <= eps)
            .map(|(pid, _)| pid as u32)
            .collect();
        want.sort_unstable();
        let mut got = res.ids();
        got.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// An all-numeric hybrid schema reproduces the plain model, and a
    /// weighted schema equals the plain model on pre-scaled data.
    #[test]
    fn hybrid_consistency((rows, query) in db_and_query()) {
        prop_assume!(all_diffs_distinct(&rows, &query));
        let ds = Dataset::from_rows(&rows).unwrap();
        let d = query.len();
        let c = rows.len();
        let k = ((c + 1) / 2).max(1);
        let schema = knmatch_core::HybridSchema::all_numeric(d).unwrap();
        let cols = knmatch_core::HybridColumns::build(&ds, schema).unwrap();
        let mut plain = SortedColumns::build(&ds);
        for n in [1, d] {
            let (h, _) = knmatch_core::k_n_match_hybrid(&cols, &query, k, n).unwrap();
            let (p, _) = k_n_match_ad(&mut plain, &query, k, n).unwrap();
            prop_assert_eq!(h.ids(), p.ids(), "n={}", n);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// FA and TA agree with brute force (and each other) on random grade
    /// tables, for both canonical monotone aggregates.
    #[test]
    fn fagin_fa_ta_match_bruteforce((rows, _q) in db_and_query()) {
        use knmatch_core::{GradedLists, MinAggregate, MonotoneAggregate, WeightedSum};
        let ds = Dataset::from_rows(&rows).unwrap();
        let lists = GradedLists::build(&ds);
        let k = ((rows.len() + 1) / 2).max(1);
        let sum = WeightedSum { weights: vec![1.0; ds.dims()] };
        let check = |t: &dyn MonotoneAggregate, got: Vec<(u32, f64)>| {
            let mut want: Vec<(u32, f64)> =
                ds.iter().map(|(pid, p)| (pid, t.combine(p))).collect();
            want.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            want.truncate(k);
            // Scores must match exactly (ids may differ only on score ties).
            for (g, w) in got.iter().zip(&want) {
                assert!((g.1 - w.1).abs() < 1e-12, "{got:?} vs {want:?}");
            }
        };
        let (fa, _) = lists.fa(&MinAggregate, k).unwrap();
        check(&MinAggregate, fa);
        let (ta, _) = lists.ta(&MinAggregate, k).unwrap();
        check(&MinAggregate, ta);
        let (fa, _) = lists.fa(&sum, k).unwrap();
        check(&sum, fa);
        let (ta, _) = lists.ta(&sum, k).unwrap();
        check(&sum, ta);
    }

    /// MEDRANK terminates, emits each point at most once, and its rounds
    /// are non-decreasing, for every quorum.
    #[test]
    fn medrank_structural_invariants((rows, query) in db_and_query()) {
        let ds = Dataset::from_rows(&rows).unwrap();
        let mut cols = SortedColumns::build(&ds);
        let d = query.len();
        for quorum in [1, (d + 1) / 2, d] {
            let k = rows.len();
            let (res, stats) =
                knmatch_core::medrank(&mut cols, &query, k, Some(quorum.max(1))).unwrap();
            let mut ids = res.ids();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), res.entries.len(), "no duplicates");
            let rounds = res.diffs();
            prop_assert!(rounds.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(stats.attributes_retrieved <= (2 * rows.len() * d) as u64);
        }
    }
}
