//! Randomized tests: the AD algorithm must agree with the naive
//! full-scan oracle on every random instance, and the paper's structural
//! invariants must hold. Instances are drawn from a seeded in-file
//! generator so every run exercises the same cases (no external
//! property-testing crate: the offline build cannot fetch one).
//!
//! Tie discipline: when two per-dimension differences are exactly equal,
//! Definition 3 allows several correct answer sets (the *multiset of
//! differences* is unique, the ids are not). AD and the naive scan both
//! resolve such ties canonically — smallest `(diff, pid)` key wins — so
//! they are compared id-for-id even on tie-heavy instances
//! (`ad_matches_naive_oracle_even_with_ties`). Properties comparing
//! *other* implementations (whose tie choices are their own) still skip
//! instances with duplicated differences — which random `f64` coordinates
//! almost never produce.

use knmatch_core::{
    frequent_k_n_match_ad, frequent_k_n_match_scan, k_n_match_ad, k_n_match_scan,
    nmatch_difference, sorted_differences, Dataset, SortedColumns,
};

/// A tiny SplitMix64 — kept local so `knmatch-core`'s tests need no
/// dev-dependency on `knmatch-data` (which depends back on this crate).
struct TestRng(u64);

impl TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// A random (rows, query) pair with 1..=6 dims and 1..=24 points,
    /// coordinates in [0, 1) — the former proptest strategy.
    fn db_and_query(&mut self) -> (Vec<Vec<f64>>, Vec<f64>) {
        let d = 1 + self.below(6);
        let c = 1 + self.below(24);
        let rows = (0..c)
            .map(|_| (0..d).map(|_| self.f64()).collect())
            .collect();
        let query = (0..d).map(|_| self.f64()).collect();
        (rows, query)
    }
}

/// True iff all `c · d` per-dimension differences to the query are distinct
/// (then every per-n ranking is strict and answer sets are unique).
fn all_diffs_distinct(rows: &[Vec<f64>], query: &[f64]) -> bool {
    let mut diffs: Vec<f64> = rows
        .iter()
        .flat_map(|p| p.iter().zip(query).map(|(a, b)| (a - b).abs()))
        .collect();
    diffs.sort_unstable_by(f64::total_cmp);
    diffs.windows(2).all(|w| w[0] < w[1])
}

/// Theorem 3.1 (correctness): AD's answer ids and differences equal the
/// naive oracle's for every k and n (under distinct differences).
#[test]
fn ad_matches_naive_oracle() {
    let mut rng = TestRng(0xAD01);
    for _ in 0..192 {
        let (rows, query) = rng.db_and_query();
        if !all_diffs_distinct(&rows, &query) {
            continue;
        }
        let ds = Dataset::from_rows(&rows).unwrap();
        let mut cols = SortedColumns::build(&ds);
        let c = rows.len();
        let d = query.len();
        for n in 1..=d {
            for k in [1, c.div_ceil(2), c] {
                let naive = k_n_match_scan(&ds, &query, k, n).unwrap();
                let (ad, _) = k_n_match_ad(&mut cols, &query, k, n).unwrap();
                assert_eq!(naive.ids(), ad.ids(), "k={k} n={n}");
                for (a, b) in naive.diffs().iter().zip(&ad.diffs()) {
                    assert!((a - b).abs() < 1e-12);
                }
            }
        }
    }
}

/// Even with ties, the multiset of answer differences is unique: compare
/// sorted diffs without assuming distinctness.
#[test]
fn ad_diff_multiset_matches_naive_even_with_ties() {
    let mut rng = TestRng(0xAD02);
    for _ in 0..192 {
        let (rows, query) = rng.db_and_query();
        let ds = Dataset::from_rows(&rows).unwrap();
        let mut cols = SortedColumns::build(&ds);
        let c = rows.len();
        let d = query.len();
        let k = [1, c.div_ceil(2), c][rng.below(3)].max(1);
        let n = [1, d.div_ceil(2), d][rng.below(3)].max(1);
        let naive = k_n_match_scan(&ds, &query, k, n).unwrap();
        let (ad, _) = k_n_match_ad(&mut cols, &query, k, n).unwrap();
        let nd = naive.diffs();
        let ad_d = ad.diffs();
        assert_eq!(nd.len(), ad_d.len());
        for (a, b) in nd.iter().zip(&ad_d) {
            assert!((a - b).abs() < 1e-12, "naive {nd:?} vs ad {ad_d:?}");
        }
    }
}

/// AD's canonical (diff, pid) tie-break matches the naive oracle's
/// id-for-id even when differences collide: coordinates drawn from a
/// 5-value grid make nearly every boundary a tie.
#[test]
fn ad_matches_naive_oracle_even_with_ties() {
    let mut rng = TestRng(0xAD07);
    for _ in 0..192 {
        let d = 1 + rng.below(5);
        let c = 1 + rng.below(20);
        let rows: Vec<Vec<f64>> = (0..c)
            .map(|_| (0..d).map(|_| rng.below(5) as f64 * 0.25).collect())
            .collect();
        let query: Vec<f64> = (0..d).map(|_| rng.below(5) as f64 * 0.25).collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let mut cols = SortedColumns::build(&ds);
        for n in 1..=d {
            for k in [1, c.div_ceil(2), c] {
                let naive = k_n_match_scan(&ds, &query, k, n).unwrap();
                let (ad, _) = k_n_match_ad(&mut cols, &query, k, n).unwrap();
                assert_eq!(
                    naive.ids(),
                    ad.ids(),
                    "k={k} n={n} rows={rows:?} q={query:?}"
                );
            }
        }
    }
}

/// FKNMatchAD equals the naive frequent oracle: same per-n answer sets,
/// same appearance counts, same ranked ids.
#[test]
fn frequent_ad_matches_naive() {
    let mut rng = TestRng(0xAD03);
    for _ in 0..192 {
        let (rows, query) = rng.db_and_query();
        if !all_diffs_distinct(&rows, &query) {
            continue;
        }
        let ds = Dataset::from_rows(&rows).unwrap();
        let mut cols = SortedColumns::build(&ds);
        let c = rows.len();
        let d = query.len();
        let k = c.div_ceil(2).max(1);
        let (n0, n1) = (1, d);
        let naive = frequent_k_n_match_scan(&ds, &query, k, n0, n1).unwrap();
        let (ad, _) = frequent_k_n_match_ad(&mut cols, &query, k, n0, n1).unwrap();
        assert_eq!(naive.per_n.len(), ad.per_n.len());
        for (a, b) in naive.per_n.iter().zip(&ad.per_n) {
            assert_eq!(a.n, b.n);
            assert_eq!(a.ids(), b.ids(), "per-n sets differ at n={}", a.n);
        }
        assert_eq!(naive.ids(), ad.ids());
        for (a, b) in naive.entries.iter().zip(&ad.entries) {
            assert_eq!(a.count, b.count);
        }
    }
}

/// The n-match difference is monotone non-decreasing in n and symmetric.
#[test]
fn nmatch_difference_monotone_and_symmetric() {
    let mut rng = TestRng(0xAD04);
    for _ in 0..256 {
        let d = 1 + rng.below(7);
        let p: Vec<f64> = (0..d).map(|_| rng.f64()).collect();
        let q: Vec<f64> = (0..d).map(|_| rng.f64()).collect();
        let mut prev = f64::NEG_INFINITY;
        for n in 1..=d {
            let v = nmatch_difference(&p, &q, n);
            assert!(v >= prev);
            assert_eq!(v, nmatch_difference(&q, &p, n));
            prev = v;
        }
        // And it equals the sorted-differences entry.
        let all = sorted_differences(&p, &q);
        for n in 1..=d {
            assert_eq!(all[n - 1], nmatch_difference(&p, &q, n));
        }
    }
}

/// Cost sanity: AD never retrieves more than all c·d attributes, and the
/// frequent variant costs exactly as much as a plain k-n1-match
/// (Theorem 3.3).
#[test]
fn ad_cost_bounds() {
    let mut rng = TestRng(0xAD05);
    for _ in 0..192 {
        let (rows, query) = rng.db_and_query();
        let ds = Dataset::from_rows(&rows).unwrap();
        let mut cols = SortedColumns::build(&ds);
        let c = rows.len() as u64;
        let d = query.len();
        let k = rows.len().div_ceil(2).max(1);
        let n1 = d;
        let (_, plain) = k_n_match_ad(&mut cols, &query, k, n1).unwrap();
        assert!(plain.attributes_retrieved <= c * d as u64);
        let (_, freq) = frequent_k_n_match_ad(&mut cols, &query, k, 1, n1).unwrap();
        assert_eq!(freq.attributes_retrieved, plain.attributes_retrieved);
        assert_eq!(freq.heap_pops, plain.heap_pops);
    }
}

/// Every answer's diff is a true n-match difference of that point, and
/// no non-answer point has a diff strictly below ε (soundness +
/// completeness at the threshold).
#[test]
fn answers_are_sound_and_complete() {
    let mut rng = TestRng(0xAD06);
    for _ in 0..192 {
        let (rows, query) = rng.db_and_query();
        let ds = Dataset::from_rows(&rows).unwrap();
        let mut cols = SortedColumns::build(&ds);
        let d = query.len();
        let k = rows.len().div_ceil(2).max(1);
        for n in [1, d] {
            let (res, _) = k_n_match_ad(&mut cols, &query, k, n).unwrap();
            let eps = res.epsilon();
            for e in &res.entries {
                let true_diff = nmatch_difference(&rows[e.pid as usize], &query, n);
                assert!((true_diff - e.diff).abs() < 1e-12);
            }
            for (pid, row) in rows.iter().enumerate() {
                if !res.contains(pid as u32) {
                    assert!(nmatch_difference(row, &query, n) >= eps);
                }
            }
        }
    }
}

/// The 1-match answer's point must agree with the query in at least one
/// dimension within ε, and with n = d the answer is the Chebyshev NN.
#[test]
fn boundary_n_semantics() {
    let mut rng = TestRng(0xAD07);
    for _ in 0..192 {
        let (rows, query) = rng.db_and_query();
        if !all_diffs_distinct(&rows, &query) {
            continue;
        }
        let ds = Dataset::from_rows(&rows).unwrap();
        let mut cols = SortedColumns::build(&ds);
        let d = query.len();
        let (m1, _) = k_n_match_ad(&mut cols, &query, 1, 1).unwrap();
        let best_single = rows
            .iter()
            .map(|p| {
                p.iter()
                    .zip(&query)
                    .map(|(a, b)| (a - b).abs())
                    .fold(f64::INFINITY, f64::min)
            })
            .fold(f64::INFINITY, f64::min);
        assert!((m1.epsilon() - best_single).abs() < 1e-12);
        let (md, _) = k_n_match_ad(&mut cols, &query, 1, d).unwrap();
        let best_linf = rows
            .iter()
            .map(|p| {
                p.iter()
                    .zip(&query)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max)
            })
            .fold(f64::INFINITY, f64::min);
        assert!((md.epsilon() - best_linf).abs() < 1e-12);
    }
}

/// The streaming iterator's first-k prefix equals the batch k-n-match
/// answer (same diffs; same ids under distinct differences).
#[test]
fn stream_prefix_equals_batch() {
    let mut rng = TestRng(0xAD08);
    for _ in 0..128 {
        let (rows, query) = rng.db_and_query();
        if !all_diffs_distinct(&rows, &query) {
            continue;
        }
        let ds = Dataset::from_rows(&rows).unwrap();
        let mut a = SortedColumns::build(&ds);
        let mut b = SortedColumns::build(&ds);
        let d = query.len();
        let c = rows.len();
        let n = d.div_ceil(2);
        let k = c.div_ceil(2).max(1);
        let mut prefix: Vec<knmatch_core::MatchEntry> =
            knmatch_core::NMatchStream::new(&mut a, &query, n)
                .unwrap()
                .take(k)
                .collect();
        prefix.sort_by(|x, y| x.diff.total_cmp(&y.diff).then(x.pid.cmp(&y.pid)));
        let (batch, _) = k_n_match_ad(&mut b, &query, k, n).unwrap();
        assert_eq!(prefix, batch.entries);
    }
}

/// The linear-frontier (paper-literal g[]) variant is identical to the
/// heap variant in answers AND cost counters.
#[test]
fn linear_frontier_identical() {
    let mut rng = TestRng(0xAD09);
    for _ in 0..128 {
        let (rows, query) = rng.db_and_query();
        let ds = Dataset::from_rows(&rows).unwrap();
        let mut cols = SortedColumns::build(&ds);
        let d = query.len();
        let c = rows.len();
        let k = c.div_ceil(2).max(1);
        let (a, sa) = frequent_k_n_match_ad(&mut cols, &query, k, 1, d).unwrap();
        let (b, sb) =
            knmatch_core::frequent_k_n_match_ad_linear(&mut cols, &query, k, 1, d).unwrap();
        assert_eq!(a.ids(), b.ids());
        assert_eq!(sa, sb);
        for (x, y) in a.per_n.iter().zip(&b.per_n) {
            assert_eq!(x.ids(), y.ids());
        }
    }
}

/// eps-n-match returns exactly the points whose n-match difference is
/// within the threshold.
#[test]
fn eps_match_equals_filter() {
    let mut rng = TestRng(0xAD0A);
    for _ in 0..128 {
        let (rows, query) = rng.db_and_query();
        let eps = rng.f64();
        if !all_diffs_distinct(&rows, &query) {
            continue;
        }
        let ds = Dataset::from_rows(&rows).unwrap();
        let mut cols = SortedColumns::build(&ds);
        let d = query.len();
        let n = d.div_ceil(2);
        let (res, _) = knmatch_core::eps_n_match_ad(&mut cols, &query, eps, n).unwrap();
        let mut want: Vec<u32> = rows
            .iter()
            .enumerate()
            .filter(|(_, p)| nmatch_difference(p, &query, n) <= eps)
            .map(|(pid, _)| pid as u32)
            .collect();
        want.sort_unstable();
        let mut got = res.ids();
        got.sort_unstable();
        assert_eq!(got, want);
    }
}

/// An all-numeric hybrid schema reproduces the plain model, and a
/// weighted schema equals the plain model on pre-scaled data.
#[test]
fn hybrid_consistency() {
    let mut rng = TestRng(0xAD0B);
    for _ in 0..128 {
        let (rows, query) = rng.db_and_query();
        if !all_diffs_distinct(&rows, &query) {
            continue;
        }
        let ds = Dataset::from_rows(&rows).unwrap();
        let d = query.len();
        let c = rows.len();
        let k = c.div_ceil(2).max(1);
        let schema = knmatch_core::HybridSchema::all_numeric(d).unwrap();
        let cols = knmatch_core::HybridColumns::build(&ds, schema).unwrap();
        let mut plain = SortedColumns::build(&ds);
        for n in [1, d] {
            let (h, _) = knmatch_core::k_n_match_hybrid(&cols, &query, k, n).unwrap();
            let (p, _) = k_n_match_ad(&mut plain, &query, k, n).unwrap();
            assert_eq!(h.ids(), p.ids(), "n={n}");
        }
    }
}

/// FA and TA agree with brute force (and each other) on random grade
/// tables, for both canonical monotone aggregates.
#[test]
fn fagin_fa_ta_match_bruteforce() {
    use knmatch_core::{GradedLists, MinAggregate, MonotoneAggregate, WeightedSum};
    let mut rng = TestRng(0xAD0C);
    for _ in 0..128 {
        let (rows, _q) = rng.db_and_query();
        let ds = Dataset::from_rows(&rows).unwrap();
        let lists = GradedLists::build(&ds);
        let k = rows.len().div_ceil(2).max(1);
        let sum = WeightedSum {
            weights: vec![1.0; ds.dims()],
        };
        let check = |t: &dyn MonotoneAggregate, got: Vec<(u32, f64)>| {
            let mut want: Vec<(u32, f64)> = ds.iter().map(|(pid, p)| (pid, t.combine(p))).collect();
            want.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            want.truncate(k);
            // Scores must match exactly (ids may differ only on score ties).
            for (g, w) in got.iter().zip(&want) {
                assert!((g.1 - w.1).abs() < 1e-12, "{got:?} vs {want:?}");
            }
        };
        let (fa, _) = lists.fa(&MinAggregate, k).unwrap();
        check(&MinAggregate, fa);
        let (ta, _) = lists.ta(&MinAggregate, k).unwrap();
        check(&MinAggregate, ta);
        let (fa, _) = lists.fa(&sum, k).unwrap();
        check(&sum, fa);
        let (ta, _) = lists.ta(&sum, k).unwrap();
        check(&sum, ta);
    }
}

/// MEDRANK terminates, emits each point at most once, and its rounds
/// are non-decreasing, for every quorum.
#[test]
fn medrank_structural_invariants() {
    let mut rng = TestRng(0xAD0D);
    for _ in 0..128 {
        let (rows, query) = rng.db_and_query();
        let ds = Dataset::from_rows(&rows).unwrap();
        let mut cols = SortedColumns::build(&ds);
        let d = query.len();
        for quorum in [1, d.div_ceil(2), d] {
            let k = rows.len();
            let (res, stats) =
                knmatch_core::medrank(&mut cols, &query, k, Some(quorum.max(1))).unwrap();
            let mut ids = res.ids();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), res.entries.len(), "no duplicates");
            let rounds = res.diffs();
            assert!(rounds.windows(2).all(|w| w[0] <= w[1]));
            assert!(stats.attributes_retrieved <= (2 * rows.len() * d) as u64);
        }
    }
}
