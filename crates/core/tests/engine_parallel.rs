//! Cross-check: the parallel batch engine must return entry-for-entry
//! identical answers AND identical `AdStats` to the sequential
//! single-query functions, across a grid of dataset shapes, query
//! parameters, and worker counts — including when one `Scratch` is
//! reused across many queries. This is the determinism contract of the
//! batch engine.

use std::sync::Arc;

use knmatch_core::{
    eps_n_match_ad, frequent_k_n_match_ad, k_n_match_ad, AdStats, BatchAnswer, BatchEngine,
    BatchQuery, KnMatchError, QueryEngine, Scratch, SortedColumns,
};

/// SplitMix64, kept local (knmatch-core has no dev-dependencies).
struct TestRng(u64);

impl TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn rows(rng: &mut TestRng, c: usize, d: usize) -> Vec<Vec<f64>> {
    (0..c)
        .map(|_| (0..d).map(|_| rng.f64()).collect())
        .collect()
}

/// A mixed workload touching every query kind and the full parameter grid.
fn workload(rng: &mut TestRng, c: usize, d: usize) -> Vec<BatchQuery> {
    let mut out = Vec::new();
    for k in [1, c.div_ceil(2), c] {
        for n0 in [1, d.div_ceil(2)] {
            for n1 in [n0, d] {
                let query: Vec<f64> = (0..d).map(|_| rng.f64()).collect();
                out.push(BatchQuery::Frequent {
                    query: query.clone(),
                    k,
                    n0,
                    n1,
                });
                out.push(BatchQuery::KnMatch {
                    query: query.clone(),
                    k,
                    n: n1,
                });
                out.push(BatchQuery::EpsMatch {
                    query,
                    eps: rng.f64(),
                    n: n0,
                });
            }
        }
    }
    out
}

/// The sequential reference: fresh allocations per query, the code path
/// that predates the engine.
fn sequential(
    cols: &SortedColumns,
    queries: &[BatchQuery],
) -> Vec<Result<(BatchAnswer, AdStats), KnMatchError>> {
    let mut cols = cols.clone();
    queries
        .iter()
        .map(|q| match q {
            BatchQuery::KnMatch { query, k, n } => {
                k_n_match_ad(&mut cols, query, *k, *n).map(|(r, s)| (BatchAnswer::KnMatch(r), s))
            }
            BatchQuery::Frequent { query, k, n0, n1 } => {
                frequent_k_n_match_ad(&mut cols, query, *k, *n0, *n1)
                    .map(|(r, s)| (BatchAnswer::Frequent(r), s))
            }
            BatchQuery::EpsMatch { query, eps, n } => eps_n_match_ad(&mut cols, query, *eps, *n)
                .map(|(r, s)| (BatchAnswer::EpsMatch(r), s)),
        })
        .collect()
}

fn worker_grid() -> Vec<usize> {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut ws = vec![1, 2, cpus, cpus + 3];
    ws.dedup();
    ws
}

#[test]
fn batch_engine_matches_sequential_everywhere() {
    let mut rng = TestRng(0xE46E_0001);
    for (c, d) in [(1, 1), (7, 2), (24, 4), (61, 3), (120, 6)] {
        let cols = SortedColumns::from_rows(&rows(&mut rng, c, d)).unwrap();
        let queries = workload(&mut rng, c, d);
        let want = sequential(&cols, &queries);
        let shared = Arc::new(cols);
        for workers in worker_grid() {
            let got = QueryEngine::with_workers(shared.clone(), workers).run(&queries);
            assert_eq!(got.len(), want.len());
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(
                    g, w,
                    "c={c} d={d} workers={workers} query #{i}: {:?}",
                    queries[i]
                );
            }
        }
    }
}

#[test]
fn one_scratch_survives_a_long_mixed_workload() {
    // Repeated reuse of a single Scratch across sources of different
    // cardinalities: the epoch trick must never leak state between
    // queries (this is exactly what engine workers do, distilled).
    let mut rng = TestRng(0xE46E_0002);
    let mut scratch = Scratch::new();
    for (c, d) in [(40, 3), (5, 2), (90, 5), (2, 1), (40, 3)] {
        let cols = SortedColumns::from_rows(&rows(&mut rng, c, d)).unwrap();
        let queries = workload(&mut rng, c, d);
        let want = sequential(&cols, &queries);
        let engine = QueryEngine::with_workers(Arc::new(cols), 1);
        for (q, w) in queries.iter().zip(&want) {
            assert_eq!(&engine.execute(q, &mut scratch), w);
        }
    }
}

#[test]
fn errors_surface_identically_in_batch_and_sequential() {
    let mut rng = TestRng(0xE46E_0003);
    let cols = SortedColumns::from_rows(&rows(&mut rng, 10, 3)).unwrap();
    let queries = vec![
        BatchQuery::KnMatch {
            query: vec![0.5; 3],
            k: 0,
            n: 1,
        },
        BatchQuery::KnMatch {
            query: vec![0.5; 2],
            k: 1,
            n: 1,
        },
        BatchQuery::Frequent {
            query: vec![0.5; 3],
            k: 1,
            n0: 2,
            n1: 1,
        },
        BatchQuery::EpsMatch {
            query: vec![0.5; 3],
            eps: -0.25,
            n: 1,
        },
        BatchQuery::KnMatch {
            query: vec![0.5; 3],
            k: 3,
            n: 2,
        },
    ];
    let want = sequential(&cols, &queries);
    for workers in worker_grid() {
        let got = QueryEngine::with_workers(Arc::new(cols.clone()), workers).run(&queries);
        assert_eq!(got, want);
    }
    assert!(matches!(want[0], Err(KnMatchError::InvalidK { .. })));
    assert!(matches!(
        want[3],
        Err(KnMatchError::InvalidEpsilon { eps: -0.25 })
    ));
    assert!(want[4].is_ok());

    // NaN thresholds also surface as InvalidEpsilon (they are not
    // comparable by eq, hence checked by pattern).
    let nan = QueryEngine::with_workers(Arc::new(cols), 2).run(&[BatchQuery::EpsMatch {
        query: vec![0.5; 3],
        eps: f64::NAN,
        n: 1,
    }]);
    assert!(matches!(nan[0], Err(KnMatchError::InvalidEpsilon { eps }) if eps.is_nan()));
}
