//! Cross-check: a pinned [`EpochSnapshot`] must answer every query kind
//! bit-identically to a from-scratch [`SortedColumns`] rebuild over the
//! snapshot's live rows at that epoch — across random interleavings of
//! inserts, removes, updates, seals and compactions, for every worker
//! count and merge timing, and while a writer thread is mutating the
//! index concurrently. Also asserts the MVCC liveness property: readers
//! make progress while a writer is continuously publishing new epochs
//! (readers never block on writers).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use knmatch_core::{
    eps_n_match_ad, frequent_k_n_match_ad, k_n_match_ad, BatchAnswer, BatchEngine, BatchQuery,
    EpochSnapshot, PointId, SortedColumns, VersionWriter, VersionedEngine, VersionedIndex,
};

/// SplitMix64, kept local (knmatch-core has no dev-dependencies).
struct TestRng(u64);

impl TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// A value from a tiny grid — exact duplicates everywhere, so answer
    /// boundaries are decided purely by the `(diff, key)` tie-break.
    fn gridval(&mut self) -> f64 {
        (self.next_u64() % 7) as f64 * 0.25
    }
}

/// The model: what the live key space must hold. `BTreeMap` keeps rows
/// in key order, matching `EpochSnapshot::live_rows`.
type Model = BTreeMap<PointId, Vec<f64>>;

fn random_point(rng: &mut TestRng, d: usize) -> Vec<f64> {
    (0..d).map(|_| rng.gridval()).collect()
}

/// Every query kind over the model's current (k, n) grid.
fn workload(rng: &mut TestRng, live: usize, d: usize) -> Vec<BatchQuery> {
    let mut out = Vec::new();
    for k in [1, live.div_ceil(2), live] {
        let query = random_point(rng, d);
        let n0 = 1 + rng.below(d as u64) as usize;
        let n1 = n0 + rng.below((d - n0 + 1) as u64) as usize;
        out.push(BatchQuery::KnMatch {
            query: query.clone(),
            k,
            n: n1,
        });
        out.push(BatchQuery::Frequent {
            query: query.clone(),
            k,
            n0,
            n1,
        });
        out.push(BatchQuery::EpsMatch {
            query,
            eps: 0.25 * rng.below(4) as f64,
            n: n0,
        });
    }
    out
}

/// Runs `queries` through the oracle — a fresh [`SortedColumns`] over the
/// model's rows, dense pids mapped back through the key list — and
/// asserts the snapshot's answers are bit-identical (`==` on every entry,
/// per-n set, count and stat-free answer field).
fn assert_snapshot_matches_oracle(
    snap: &EpochSnapshot,
    model: &Model,
    queries: &[BatchQuery],
    ctx: &str,
) {
    let rows: Vec<(PointId, Vec<f64>)> = model.iter().map(|(&k, v)| (k, v.clone())).collect();
    assert_eq!(snap.live_rows(), rows, "{ctx}: live rows diverged");
    let keys: Vec<PointId> = rows.iter().map(|&(k, _)| k).collect();
    let data: Vec<Vec<f64>> = rows.into_iter().map(|(_, r)| r).collect();
    let mut cols = SortedColumns::from_rows(&data).unwrap();
    let outs = snap.run(queries);
    for (qi, (q, out)) in queries.iter().zip(outs).enumerate() {
        let got = out.unwrap_or_else(|e| panic!("{ctx} query #{qi} failed: {e}"));
        let want = match q {
            BatchQuery::KnMatch { query, k, n } => {
                BatchAnswer::KnMatch(k_n_match_ad(&mut cols, query, *k, *n).unwrap().0)
            }
            BatchQuery::Frequent { query, k, n0, n1 } => BatchAnswer::Frequent(
                frequent_k_n_match_ad(&mut cols, query, *k, *n0, *n1)
                    .unwrap()
                    .0,
            ),
            BatchQuery::EpsMatch { query, eps, n } => {
                BatchAnswer::EpsMatch(eps_n_match_ad(&mut cols, query, *eps, *n).unwrap().0)
            }
        };
        assert_eq!(got.answer, remap(want, &keys), "{ctx} query #{qi}: {q:?}");
    }
}

/// Maps the oracle's dense pids onto keys. The key list ascends, so the
/// map is monotone and the canonical `(diff, pid)` order is untouched.
fn remap(a: BatchAnswer, keys: &[PointId]) -> BatchAnswer {
    let map = |entries: &mut Vec<knmatch_core::MatchEntry>| {
        for e in entries.iter_mut() {
            e.pid = keys[e.pid as usize];
        }
    };
    match a {
        BatchAnswer::KnMatch(mut r) => {
            map(&mut r.entries);
            BatchAnswer::KnMatch(r)
        }
        BatchAnswer::EpsMatch(mut r) => {
            map(&mut r.entries);
            BatchAnswer::EpsMatch(r)
        }
        BatchAnswer::Frequent(mut f) => {
            for lvl in &mut f.per_n {
                map(&mut lvl.entries);
            }
            for e in &mut f.entries {
                e.pid = keys[e.pid as usize];
            }
            BatchAnswer::Frequent(f)
        }
    }
}

/// One random mutation against both the index and the model.
fn mutate(rng: &mut TestRng, idx: &VersionedIndex, model: &mut Model, d: usize) {
    match rng.below(10) {
        // Remove a live key (when any exist).
        0 | 1 if !model.is_empty() => {
            let keys: Vec<PointId> = model.keys().copied().collect();
            let key = keys[rng.below(keys.len() as u64) as usize];
            idx.remove(key).unwrap();
            model.remove(&key);
        }
        // Update a live key in place.
        2 if !model.is_empty() => {
            let keys: Vec<PointId> = model.keys().copied().collect();
            let key = keys[rng.below(keys.len() as u64) as usize];
            let row = random_point(rng, d);
            idx.insert(key, &row).unwrap();
            model.insert(key, row);
        }
        // Explicit seal / compaction at random times.
        3 => {
            idx.seal().unwrap();
        }
        4 => {
            idx.maintain().unwrap();
        }
        // Insert a fresh key (sparse key space exercises the remap).
        _ => {
            let key = rng.below(500) as PointId;
            let row = random_point(rng, d);
            idx.insert(key, &row).unwrap();
            model.insert(key, row);
        }
    }
}

#[test]
fn interleaved_ops_match_rebuild_oracle_at_every_pinned_epoch() {
    for seed in [0xE90C_0001u64, 0xE90C_0002, 0xE90C_0003] {
        // Merge timings: seal on every insert, mid-size runs, delta-only.
        for threshold in [1usize, 8, 10_000] {
            for workers in [1usize, 2, 4] {
                let mut rng = TestRng(seed ^ (threshold as u64) ^ ((workers as u64) << 32));
                let d = 3;
                let idx = VersionedIndex::new(d, workers, threshold).unwrap();
                let mut model = Model::new();
                let mut pinned: Vec<(EpochSnapshot, Model, Vec<BatchQuery>)> = Vec::new();
                for step in 0..120 {
                    mutate(&mut rng, &idx, &mut model, d);
                    let ctx = format!(
                        "seed={seed:#x} threshold={threshold} workers={workers} step={step}"
                    );
                    if step % 15 == 7 && !model.is_empty() {
                        // Check the *current* epoch right away…
                        let snap = idx.snapshot();
                        let queries = workload(&mut rng, model.len(), d);
                        assert_snapshot_matches_oracle(&snap, &model, &queries, &ctx);
                        // …and pin it for re-checking after more writes.
                        pinned.push((snap, model.clone(), queries));
                    }
                }
                // Every pinned epoch must still answer exactly as it did
                // when pinned, no matter what happened afterwards.
                idx.seal().unwrap();
                while idx.needs_maintenance() {
                    idx.maintain().unwrap();
                }
                for (i, (snap, at_pin, queries)) in pinned.iter().enumerate() {
                    let ctx = format!(
                        "seed={seed:#x} threshold={threshold} workers={workers} pinned #{i}"
                    );
                    assert_snapshot_matches_oracle(snap, at_pin, queries, &ctx);
                }
            }
        }
    }
}

#[test]
fn compaction_layout_does_not_change_answers_at_an_epoch() {
    // The same epoch served from different physical layouts (many runs
    // with tombstones vs one compacted run) must be bit-identical.
    let mut rng = TestRng(0xE90C_0010);
    let d = 4;
    let idx = VersionedIndex::new(d, 2, 4).unwrap();
    let mut model = Model::new();
    for _ in 0..60 {
        mutate(&mut rng, &idx, &mut model, d);
    }
    if model.is_empty() {
        let row = random_point(&mut rng, d);
        idx.insert(7, &row).unwrap();
        model.insert(7, row);
    }
    let before = idx.snapshot();
    idx.seal().unwrap();
    let sealed = idx.snapshot();
    // Force a full compaction regardless of the maintenance heuristic.
    let queries = workload(&mut rng, model.len(), d);
    assert_eq!(before.epoch(), sealed.epoch());
    assert_snapshot_matches_oracle(&before, &model, &queries, "pre-seal");
    assert_snapshot_matches_oracle(&sealed, &model, &queries, "post-seal");
    while idx.needs_maintenance() {
        assert!(idx.maintain().unwrap());
    }
    let compacted = idx.snapshot();
    assert_eq!(compacted.epoch(), before.epoch());
    assert_snapshot_matches_oracle(&compacted, &model, &queries, "post-compaction");
}

/// The liveness half of the acceptance criterion: while one thread
/// writes continuously (forcing seals and compactions), reader threads
/// pin snapshots and complete query batches the whole time. If readers
/// blocked on writers, no read could finish until the writer stopped.
#[test]
fn readers_make_progress_while_a_writer_streams_mutations() {
    let d = 3;
    let idx = Arc::new(VersionedIndex::new(d, 2, 16).unwrap());
    {
        let mut rng = TestRng(0xE90C_0020);
        for key in 0..64u32 {
            idx.insert(key, &random_point(&mut rng, d)).unwrap();
        }
    }
    let writer_done = Arc::new(AtomicBool::new(false));
    let reads_before_writer_finished = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        let widx = Arc::clone(&idx);
        let wdone = Arc::clone(&writer_done);
        s.spawn(move || {
            let mut rng = TestRng(0xE90C_0021);
            for i in 0..2_000u32 {
                let key = rng.below(256) as PointId;
                if i % 5 == 4 {
                    // Absent keys are expected; only they may fail.
                    let _ = widx.remove(key);
                } else {
                    widx.insert(key, &random_point(&mut rng, d)).unwrap();
                }
                if i % 64 == 63 && widx.needs_maintenance() {
                    widx.maintain().unwrap();
                }
            }
            wdone.store(true, Ordering::SeqCst);
        });

        for r in 0..2 {
            let ridx = Arc::clone(&idx);
            let rdone = Arc::clone(&writer_done);
            let rcount = Arc::clone(&reads_before_writer_finished);
            s.spawn(move || {
                let mut rng = TestRng(0xE90C_0030 + r);
                while !rdone.load(Ordering::SeqCst) {
                    let snap = ridx.snapshot();
                    let live = snap.live();
                    if live == 0 {
                        continue;
                    }
                    let queries = workload(&mut rng, live, d);
                    let epoch = snap.epoch();
                    for out in snap.run(&queries) {
                        out.unwrap();
                    }
                    // The pinned view never moved underneath the batch.
                    assert_eq!(snap.epoch(), epoch);
                    assert_eq!(snap.live(), live);
                    if !rdone.load(Ordering::SeqCst) {
                        rcount.fetch_add(1, Ordering::SeqCst);
                    }
                }
            });
        }
    });

    assert!(
        reads_before_writer_finished.load(Ordering::SeqCst) > 0,
        "no reader batch completed while the writer was running — readers blocked on writers"
    );
    // Post-quiescence sanity: final state still matches a rebuild oracle.
    let snap = idx.snapshot();
    let rows = snap.live_rows();
    assert_eq!(rows.len(), snap.live());
    let stats = idx.version_stats();
    assert!(stats.seals > 0, "threshold 16 over 2000 writes must seal");
    assert_eq!(stats.epoch, snap.epoch());
}
