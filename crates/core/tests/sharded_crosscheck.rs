//! Cross-check: the sharded engine's merged answers must be bit-identical
//! to the unsharded `QueryEngine` for every query kind, shard count, and
//! worker count — including on datasets stuffed with duplicate values,
//! where answer-set boundaries are decided purely by the canonical
//! `(diff, pid)` tie-break. Per-shard `AdStats` must be bit-identical to
//! sequential AD runs over that shard's points alone, and `shards = 1`
//! must reproduce the unsharded stats exactly.

use std::sync::Arc;

use knmatch_core::{
    execute_batch_query, AdStats, BatchAnswer, BatchEngine, BatchQuery, KnMatchError, QueryEngine,
    Scratch, ShardedColumns, ShardedQueryEngine, SortedColumns,
};

/// SplitMix64, kept local (knmatch-core has no dev-dependencies).
struct TestRng(u64);

impl TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A value from a tiny grid — exact duplicates everywhere, so answer
    /// boundaries are almost always tied.
    fn gridval(&mut self) -> f64 {
        (self.next_u64() % 5) as f64 * 0.25
    }
}

fn rows(rng: &mut TestRng, c: usize, d: usize, duplicate_heavy: bool) -> Vec<Vec<f64>> {
    (0..c)
        .map(|_| {
            (0..d)
                .map(|_| {
                    if duplicate_heavy {
                        rng.gridval()
                    } else {
                        rng.f64()
                    }
                })
                .collect()
        })
        .collect()
}

/// Every query kind over the (k, n-range) grid; on duplicate-heavy data
/// the query points come from the same grid so differences tie exactly,
/// and ε thresholds land exactly on attainable differences.
fn workload(rng: &mut TestRng, c: usize, d: usize, duplicate_heavy: bool) -> Vec<BatchQuery> {
    let point = |rng: &mut TestRng| -> Vec<f64> {
        (0..d)
            .map(|_| {
                if duplicate_heavy {
                    rng.gridval()
                } else {
                    rng.f64()
                }
            })
            .collect()
    };
    let mut out = Vec::new();
    for k in [1, c.div_ceil(2), c] {
        for n0 in [1, d.div_ceil(2)] {
            for n1 in [n0, d] {
                let query = point(rng);
                out.push(BatchQuery::Frequent {
                    query: query.clone(),
                    k,
                    n0,
                    n1,
                });
                out.push(BatchQuery::KnMatch {
                    query: query.clone(),
                    k,
                    n: n1,
                });
                out.push(BatchQuery::EpsMatch {
                    query,
                    eps: if duplicate_heavy { 0.25 } else { rng.f64() },
                    n: n0,
                });
            }
        }
    }
    out
}

/// `query` with its answer-set size clamped to `c_s` — the shard-local
/// query the engine is specified to run.
fn clamp_k(query: &BatchQuery, c_s: usize) -> BatchQuery {
    let mut q = query.clone();
    match &mut q {
        BatchQuery::KnMatch { k, .. } | BatchQuery::Frequent { k, .. } => *k = (*k).min(c_s),
        BatchQuery::EpsMatch { .. } => {}
    }
    q
}

#[test]
fn sharded_answers_match_unsharded_for_all_shards_workers_and_kinds() {
    let mut rng = TestRng(0x5AAD_0001);
    for duplicate_heavy in [false, true] {
        for (c, d) in [(1, 1), (9, 2), (26, 4), (40, 3)] {
            let data = rows(&mut rng, c, d, duplicate_heavy);
            let queries = workload(&mut rng, c, d, duplicate_heavy);
            let plain =
                QueryEngine::with_workers(Arc::new(SortedColumns::from_rows(&data).unwrap()), 1);
            let want: Vec<_> = plain
                .run(&queries)
                .into_iter()
                .map(|r| r.unwrap())
                .collect();
            let ds = knmatch_core::Dataset::from_rows(&data).unwrap();
            for shards in [1, 2, 3, 7] {
                let cols = Arc::new(ShardedColumns::build_with_workers(&ds, shards, 1));
                for workers in [1, 4] {
                    let engine = ShardedQueryEngine::with_workers(cols.clone(), workers);
                    let got = engine.run(&queries);
                    assert_eq!(got.len(), want.len());
                    for (i, (g, (want_answer, want_stats))) in got.iter().zip(&want).enumerate() {
                        let g = g.as_ref().unwrap();
                        assert_eq!(
                            &g.answer, want_answer,
                            "dup={duplicate_heavy} c={c} d={d} shards={shards} \
                             workers={workers} query #{i}: {:?}",
                            queries[i]
                        );
                        if cols.shard_count() == 1 {
                            // One shard is the unsharded engine, stats and
                            // all.
                            assert_eq!(&g.stats, want_stats);
                            assert_eq!(g.per_shard, vec![*want_stats]);
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn per_shard_stats_match_sequential_runs_on_each_shard() {
    let mut rng = TestRng(0x5AAD_0002);
    for duplicate_heavy in [false, true] {
        let (c, d) = (23, 3);
        let data = rows(&mut rng, c, d, duplicate_heavy);
        let queries = workload(&mut rng, c, d, duplicate_heavy);
        let ds = knmatch_core::Dataset::from_rows(&data).unwrap();
        for shards in [2, 3, 7] {
            let cols = Arc::new(ShardedColumns::build_with_workers(&ds, shards, 1));
            let engine = ShardedQueryEngine::with_workers(cols.clone(), 4);
            let got = engine.run(&queries);
            for (qi, g) in got.iter().enumerate() {
                let g = g.as_ref().unwrap();
                let mut total = AdStats::default();
                for s in 0..cols.shard_count() {
                    // The reference: a fresh sequential run over columns
                    // built directly from the shard's rows.
                    let start = cols.shard_start(s);
                    let c_s = cols.shard(s).cardinality();
                    let mut shard_cols =
                        SortedColumns::from_rows(&data[start..start + c_s]).unwrap();
                    let local = clamp_k(&queries[qi], c_s);
                    let (_, want_stats) =
                        execute_batch_query(&mut shard_cols, &local, &mut Scratch::new()).unwrap();
                    assert_eq!(
                        g.per_shard[s], want_stats,
                        "dup={duplicate_heavy} shards={shards} query #{qi} shard {s}"
                    );
                    total.accumulate(&want_stats);
                }
                assert_eq!(g.stats, total);
            }
        }
    }
}

#[test]
fn merged_eps_answers_enumerate_every_shard_hit() {
    // ε-n-match has no k truncation: the merged answer must be the exact
    // union of the shard answers, sorted by (diff, pid) — checked against
    // a brute-force filter.
    let mut rng = TestRng(0x5AAD_0003);
    let (c, d) = (31, 3);
    let data = rows(&mut rng, c, d, true);
    let ds = knmatch_core::Dataset::from_rows(&data).unwrap();
    let query: Vec<f64> = (0..d).map(|_| rng.gridval()).collect();
    let q = BatchQuery::EpsMatch {
        query: query.clone(),
        eps: 0.5,
        n: 2,
    };
    let engine = ShardedQueryEngine::with_workers(Arc::new(ShardedColumns::build(&ds, 3)), 2);
    let out = engine.execute(&q).unwrap();
    let BatchAnswer::EpsMatch(res) = &out.answer else {
        panic!("wrong variant")
    };
    let mut want: Vec<u32> = (0..c as u32)
        .filter(|&pid| {
            let mut diffs: Vec<f64> = data[pid as usize]
                .iter()
                .zip(&query)
                .map(|(a, b)| (a - b).abs())
                .collect();
            diffs.sort_unstable_by(f64::total_cmp);
            diffs[1] <= 0.5
        })
        .collect();
    want.sort_unstable();
    let mut got = res.ids();
    got.sort_unstable();
    assert_eq!(got, want);
    assert!(res
        .entries
        .windows(2)
        .all(|w| (w[0].diff, w[0].pid) < (w[1].diff, w[1].pid)
            || (w[0].diff == w[1].diff && w[0].pid < w[1].pid)));
}

#[test]
fn sharded_errors_match_unsharded_validation() {
    let mut rng = TestRng(0x5AAD_0004);
    let data = rows(&mut rng, 10, 3, false);
    let ds = knmatch_core::Dataset::from_rows(&data).unwrap();
    let engine = ShardedQueryEngine::with_workers(Arc::new(ShardedColumns::build(&ds, 4)), 2);
    let bad = vec![
        BatchQuery::KnMatch {
            query: vec![0.5; 2],
            k: 1,
            n: 1,
        },
        BatchQuery::KnMatch {
            query: vec![0.5; 3],
            k: 11,
            n: 1,
        },
        BatchQuery::Frequent {
            query: vec![0.5; 3],
            k: 1,
            n0: 2,
            n1: 1,
        },
        BatchQuery::EpsMatch {
            query: vec![0.5; 3],
            eps: f64::NAN,
            n: 1,
        },
    ];
    let results = engine.run(&bad);
    assert!(matches!(
        results[0],
        Err(KnMatchError::DimensionMismatch { .. })
    ));
    assert!(matches!(results[1], Err(KnMatchError::InvalidK { .. })));
    assert!(matches!(results[2], Err(KnMatchError::InvalidRange { .. })));
    assert!(matches!(
        results[3],
        Err(KnMatchError::InvalidEpsilon { .. })
    ));
}
