//! Uniform interface over the similarity-search methods the paper
//! compares, so the class-stripping protocol and the sweeps treat them
//! interchangeably.

use knmatch_core::{
    frequent_k_n_match_scan, k_n_match_scan, k_nearest, Dataset, Euclidean, PointId, Result,
};
use knmatch_igrid::IGridIndex;

/// A similarity-search method: rank the `k` objects of `ds` most similar
/// to `query`.
pub trait SimilarityMethod {
    /// Display name for reports.
    fn name(&self) -> String;

    /// The `k` most similar point ids, best first.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation of the underlying algorithm.
    fn top_k(&self, ds: &Dataset, query: &[f64], k: usize) -> Result<Vec<PointId>>;
}

/// Traditional kNN under Euclidean distance.
#[derive(Debug, Clone, Copy, Default)]
pub struct KnnMethod;

impl SimilarityMethod for KnnMethod {
    fn name(&self) -> String {
        "kNN (L2)".into()
    }

    fn top_k(&self, ds: &Dataset, query: &[f64], k: usize) -> Result<Vec<PointId>> {
        Ok(k_nearest(ds, query, k, &Euclidean)?
            .into_iter()
            .map(|n| n.pid)
            .collect())
    }
}

/// The k-n-match query at a fixed `n`.
#[derive(Debug, Clone, Copy)]
pub struct KnMatchMethod {
    /// The number of dimensions to match.
    pub n: usize,
}

impl SimilarityMethod for KnMatchMethod {
    fn name(&self) -> String {
        format!("k-{}-match", self.n)
    }

    fn top_k(&self, ds: &Dataset, query: &[f64], k: usize) -> Result<Vec<PointId>> {
        Ok(k_n_match_scan(ds, query, k, self.n)?.ids())
    }
}

/// The frequent k-n-match query over `[n0, n1]`.
#[derive(Debug, Clone, Copy)]
pub struct FrequentKnMatchMethod {
    /// Lower end of the n range.
    pub n0: usize,
    /// Upper end of the n range.
    pub n1: usize,
}

impl SimilarityMethod for FrequentKnMatchMethod {
    fn name(&self) -> String {
        format!("freq. k-n-match [{}, {}]", self.n0, self.n1)
    }

    fn top_k(&self, ds: &Dataset, query: &[f64], k: usize) -> Result<Vec<PointId>> {
        Ok(frequent_k_n_match_scan(ds, query, k, self.n0, self.n1)?.ids())
    }
}

/// MEDRANK (Fagin et al., SIGMOD'03): approximate NN by median rank
/// aggregation over the sorted dimensions — the related-work method the
/// paper contrasts with exact matching-based search.
#[derive(Debug, Clone, Copy, Default)]
pub struct MedrankMethod;

impl SimilarityMethod for MedrankMethod {
    fn name(&self) -> String {
        "MEDRANK".into()
    }

    fn top_k(&self, ds: &Dataset, query: &[f64], k: usize) -> Result<Vec<PointId>> {
        let mut cols = knmatch_core::SortedColumns::build(ds);
        Ok(knmatch_core::medrank(&mut cols, query, k, None)?.0.ids())
    }
}

/// IGrid with the paper-default parameters, rebuilt per dataset (the index
/// is cached by the experiment drivers, not here).
#[derive(Debug, Clone, Copy, Default)]
pub struct IGridMethod;

impl SimilarityMethod for IGridMethod {
    fn name(&self) -> String {
        "IGrid".into()
    }

    fn top_k(&self, ds: &Dataset, query: &[f64], k: usize) -> Result<Vec<PointId>> {
        let idx = IGridIndex::build(ds);
        Ok(idx.query(query, k)?.into_iter().map(|a| a.pid).collect())
    }
}

/// A prebuilt IGrid index as a method (avoids rebuilding per query).
#[derive(Debug, Clone)]
pub struct PrebuiltIGrid {
    index: IGridIndex,
}

impl PrebuiltIGrid {
    /// Builds the index once for `ds`.
    pub fn new(ds: &Dataset) -> Self {
        PrebuiltIGrid {
            index: IGridIndex::build(ds),
        }
    }
}

impl SimilarityMethod for PrebuiltIGrid {
    fn name(&self) -> String {
        "IGrid".into()
    }

    fn top_k(&self, _ds: &Dataset, query: &[f64], k: usize) -> Result<Vec<PointId>> {
        Ok(self
            .index
            .query(query, k)?
            .into_iter()
            .map(|a| a.pid)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> Dataset {
        knmatch_core::paper::fig1_dataset()
    }

    #[test]
    fn knn_method_matches_direct_call() {
        let ds = ds();
        let q = knmatch_core::paper::fig1_query();
        let got = KnnMethod.top_k(&ds, &q, 2).unwrap();
        // Euclidean NN is the all-20s object; the runner-up is object 1,
        // whose single 100-dim overshoot is the smallest among objects 1–3.
        assert_eq!(got, vec![3, 0]);
        assert_eq!(KnnMethod.name(), "kNN (L2)");
    }

    #[test]
    fn knmatch_method_fixed_n() {
        let ds = ds();
        let q = knmatch_core::paper::fig1_query();
        let m = KnMatchMethod { n: 6 };
        assert_eq!(m.top_k(&ds, &q, 1).unwrap(), vec![2]);
        assert_eq!(m.name(), "k-6-match");
    }

    #[test]
    fn frequent_method_ranges() {
        let ds = ds();
        let q = knmatch_core::paper::fig1_query();
        let m = FrequentKnMatchMethod { n0: 1, n1: 10 };
        let ids = m.top_k(&ds, &q, 3).unwrap();
        assert!(!ids.contains(&3), "all-20s object is never frequent");
    }

    #[test]
    fn igrid_methods_agree() {
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![(i as f64 * 0.618) % 1.0, (i as f64 * 0.17) % 1.0])
            .collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let q = ds.point(5).to_vec();
        let a = IGridMethod.top_k(&ds, &q, 5).unwrap();
        let b = PrebuiltIGrid::new(&ds).top_k(&ds, &q, 5).unwrap();
        assert_eq!(a, b);
        assert_eq!(a[0], 5);
    }
}
