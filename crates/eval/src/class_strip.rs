//! The class-stripping effectiveness protocol (Section 5.1.2, following
//! Aggarwal & Yu's methodology).
//!
//! Class labels are stripped from a labelled dataset; a similarity method
//! answers top-k queries for query points sampled from the data; an answer
//! is *correct* when it belongs to the query's class. Accuracy is the
//! fraction of correct answers over all `queries × k` answers —
//! statistically, a better similarity notion retrieves more same-class
//! objects.

use knmatch_core::PointId;
use knmatch_data::rng::seeded;
use knmatch_data::LabelledDataset;

use crate::methods::SimilarityMethod;

/// Protocol parameters. The paper uses 100 queries and `k = 20`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassStripConfig {
    /// Number of query points sampled (without replacement when possible).
    pub queries: usize,
    /// Answers requested per query.
    pub k: usize,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for ClassStripConfig {
    fn default() -> Self {
        ClassStripConfig {
            queries: 100,
            k: 20,
            seed: 0xC1A55,
        }
    }
}

/// Samples the query point ids for a run (shared across methods so every
/// method answers the same queries).
pub fn sample_queries(lds: &LabelledDataset, cfg: &ClassStripConfig) -> Vec<PointId> {
    let mut ids: Vec<PointId> = (0..lds.data.len() as PointId).collect();
    let mut rng = seeded(cfg.seed);
    rng.shuffle(&mut ids);
    ids.truncate(cfg.queries.min(lds.data.len()));
    ids
}

/// Runs the protocol for one method, returning its accuracy in `[0, 1]`.
///
/// The query point itself is excluded from the answers (it trivially has
/// the right class): the method is asked for `k + 1` answers and the query
/// id is dropped.
///
/// # Panics
///
/// Panics when the dataset is too small to answer `k + 1` (protocol
/// misconfiguration, not data dependent).
pub fn accuracy<M: SimilarityMethod + ?Sized>(
    lds: &LabelledDataset,
    method: &M,
    cfg: &ClassStripConfig,
) -> f64 {
    let queries = sample_queries(lds, cfg);
    accuracy_for_queries(lds, method, cfg.k, &queries)
}

/// [`accuracy`] over a caller-fixed query set.
///
/// # Panics
///
/// Panics when the dataset cannot answer `k + 1` queries.
pub fn accuracy_for_queries<M: SimilarityMethod + ?Sized>(
    lds: &LabelledDataset,
    method: &M,
    k: usize,
    queries: &[PointId],
) -> f64 {
    assert!(
        k < lds.data.len(),
        "class stripping needs k + 1 <= cardinality ({} vs {})",
        k + 1,
        lds.data.len()
    );
    let mut correct = 0usize;
    let mut total = 0usize;
    for &qid in queries {
        let query = lds.data.point(qid).to_vec();
        let answers = method
            .top_k(&lds.data, &query, k + 1)
            .expect("protocol parameters were validated");
        let mut taken = 0usize;
        for pid in answers {
            if pid == qid {
                continue;
            }
            if taken == k {
                break;
            }
            taken += 1;
            total += 1;
            if lds.labels[pid as usize] == lds.labels[qid as usize] {
                correct += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::{FrequentKnMatchMethod, KnnMethod};
    use knmatch_core::{Dataset, PointId, Result};
    use knmatch_data::{labelled_clusters, ClusterSpec};

    #[test]
    fn perfect_separation_gives_perfect_accuracy() {
        // Two far-apart noiseless clusters: every neighbour shares the class.
        let spec = ClusterSpec {
            cardinality: 40,
            dims: 6,
            classes: 2,
            cluster_std: 0.01,
            noise_prob: 0.0,
            seed: 3,
        };
        let lds = labelled_clusters(&spec);
        let cfg = ClassStripConfig {
            queries: 10,
            k: 5,
            seed: 1,
        };
        let acc = accuracy(&lds, &KnnMethod, &cfg);
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn random_labels_give_chance_accuracy() {
        // Uniform points with labels assigned round-robin: accuracy ≈ 1/classes.
        let data = knmatch_data::uniform(300, 5, 7);
        let labels: Vec<u16> = (0..300).map(|i| (i % 3) as u16).collect();
        let lds = LabelledDataset { data, labels };
        let cfg = ClassStripConfig {
            queries: 40,
            k: 10,
            seed: 2,
        };
        let acc = accuracy(&lds, &KnnMethod, &cfg);
        assert!(
            (acc - 1.0 / 3.0).abs() < 0.12,
            "accuracy {acc} should hover near 1/3"
        );
    }

    #[test]
    fn query_point_is_excluded() {
        // A method that always returns the query first: its self-answer
        // must not count.
        struct Echo;
        impl SimilarityMethod for Echo {
            fn name(&self) -> String {
                "echo".into()
            }
            fn top_k(&self, ds: &Dataset, query: &[f64], k: usize) -> Result<Vec<PointId>> {
                // Return the query's own id (found by coordinates) then
                // arbitrary other ids.
                let qid = ds
                    .iter()
                    .find(|(_, p)| *p == query)
                    .map(|(pid, _)| pid)
                    .expect("query sampled from dataset");
                let mut out = vec![qid];
                out.extend((0..ds.len() as PointId).filter(|&p| p != qid).take(k - 1));
                Ok(out)
            }
        }
        let spec = ClusterSpec {
            cardinality: 30,
            dims: 4,
            classes: 2,
            cluster_std: 0.01,
            noise_prob: 0.0,
            seed: 5,
        };
        let lds = labelled_clusters(&spec);
        let cfg = ClassStripConfig {
            queries: 6,
            k: 4,
            seed: 8,
        };
        let acc = accuracy(&lds, &Echo, &cfg);
        assert!(acc < 1.0, "self-answers must be excluded; got {acc}");
    }

    #[test]
    fn queries_are_deterministic_and_shared() {
        let lds = labelled_clusters(&ClusterSpec::new(50, 4, 2, 1));
        let cfg = ClassStripConfig {
            queries: 10,
            k: 3,
            seed: 42,
        };
        assert_eq!(sample_queries(&lds, &cfg), sample_queries(&lds, &cfg));
        let other = ClassStripConfig { seed: 43, ..cfg };
        assert_ne!(sample_queries(&lds, &cfg), sample_queries(&lds, &other));
    }

    #[test]
    fn frequent_knmatch_beats_knn_under_noise() {
        // The Table 4 mechanism: with noisy dimensions injected, the
        // frequent k-n-match query classifies better than Euclidean kNN.
        let spec = ClusterSpec {
            cardinality: 240,
            dims: 16,
            classes: 3,
            cluster_std: 0.05,
            noise_prob: 0.15,
            seed: 11,
        };
        let lds = labelled_clusters(&spec);
        let cfg = ClassStripConfig {
            queries: 40,
            k: 10,
            seed: 4,
        };
        let knn = accuracy(&lds, &KnnMethod, &cfg);
        let freq = accuracy(&lds, &FrequentKnMatchMethod { n0: 1, n1: 16 }, &cfg);
        assert!(
            freq >= knn,
            "frequent k-n-match ({freq}) should not lose to kNN ({knn}) on noisy clusters"
        );
    }
}
