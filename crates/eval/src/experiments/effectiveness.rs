//! Effectiveness experiments: Tables 2–4 and Figures 8–9 of the paper.

use knmatch_core::{
    frequent_k_n_match_ad, k_n_match_scan, k_nearest, Euclidean, PointId, SortedColumns,
};
use knmatch_data::{coil_like, uci_standins, LabelledDataset, COIL_QUERY_ID};

use crate::class_strip::{accuracy_for_queries, sample_queries, ClassStripConfig};
use crate::methods::{FrequentKnMatchMethod, PrebuiltIGrid};
use crate::report::{pct, render_figure, Series, Table};

/// Converts 0-based point ids to the paper's 1-based image numbers.
fn image_ids(ids: &[PointId]) -> Vec<u32> {
    let mut v: Vec<u32> = ids.iter().map(|&p| p + 1).collect();
    v.sort_unstable();
    v
}

/// Table 2: k-n-match on the COIL-like features, `k = 4`, `n = 5..=50`
/// step 5, query image 42.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2 {
    /// `(n, images returned)` rows, image ids 1-based like the paper.
    pub rows: Vec<(usize, Vec<u32>)>,
}

/// Runs Table 2.
pub fn table2(seed: u64) -> Table2 {
    let ds = coil_like(seed);
    let q = ds.point(COIL_QUERY_ID).to_vec();
    let rows = (1..=10)
        .map(|i| {
            let n = 5 * i;
            let res = k_n_match_scan(&ds, &q, 4, n).expect("valid parameters");
            (n, image_ids(&res.ids()))
        })
        .collect();
    Table2 { rows }
}

impl std::fmt::Display for Table2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(
            "Table 2: k-n-match results, k = 4, query image 42 (COIL-like stand-in)",
            &["n", "images returned"],
        );
        for (n, ids) in &self.rows {
            t.push(vec![n.to_string(), format!("{ids:?}")]);
        }
        write!(f, "{t}")
    }
}

/// Table 3: kNN on the COIL-like features, `k = 10`.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3 {
    /// The 10 nearest images (1-based ids, ascending).
    pub images: Vec<u32>,
}

/// Runs Table 3.
pub fn table3(seed: u64) -> Table3 {
    let ds = coil_like(seed);
    let q = ds.point(COIL_QUERY_ID).to_vec();
    let nn = k_nearest(&ds, &q, 10, &Euclidean).expect("valid parameters");
    let ids: Vec<PointId> = nn.iter().map(|n| n.pid).collect();
    Table3 {
        images: image_ids(&ids),
    }
}

impl std::fmt::Display for Table3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(
            "Table 3: kNN results, k = 10, query image 42 (COIL-like stand-in)",
            &["k", "images returned"],
        );
        t.push(vec!["10".into(), format!("{:?}", self.images)]);
        write!(f, "{t}")
    }
}

/// One Table 4 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// Dataset name.
    pub dataset: String,
    /// Dimensionality.
    pub dims: usize,
    /// IGrid accuracy.
    pub igrid: f64,
    /// HCINN accuracy, where the paper quotes one (its code was never
    /// available; the paper itself copies these two numbers from \[4\]).
    pub hcinn: Option<f64>,
    /// Frequent k-n-match accuracy, `[n0, n1] = [1, d]`.
    pub frequent: f64,
}

/// Table 4: class-stripping accuracy of IGrid / HCINN / frequent
/// k-n-match on the five UCI stand-ins.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4 {
    /// One row per dataset.
    pub rows: Vec<Table4Row>,
}

/// HCINN accuracies the paper quotes from reference \[4\].
pub const HCINN_QUOTED: [(&str, f64); 2] = [("ionosphere", 0.86), ("segmentation", 0.83)];

/// Runs Table 4 with the paper's protocol (100 queries, k = 20) at
/// `queries` queries (pass 100 for the paper scale).
pub fn table4(seed: u64, queries: usize) -> Table4 {
    let cfg = ClassStripConfig {
        queries,
        k: 20,
        seed,
    };
    let rows = uci_standins()
        .iter()
        .map(|standin| {
            let lds = standin.generate(seed ^ standin.dims as u64);
            let qids = sample_queries(&lds, &cfg);
            let igrid = PrebuiltIGrid::new(&lds.data);
            let freq = FrequentKnMatchMethod {
                n0: 1,
                n1: standin.dims,
            };
            Table4Row {
                dataset: standin.name.to_string(),
                dims: standin.dims,
                igrid: accuracy_for_queries(&lds, &igrid, cfg.k, &qids),
                hcinn: HCINN_QUOTED
                    .iter()
                    .find(|(n, _)| *n == standin.name)
                    .map(|&(_, a)| a),
                frequent: accuracy_for_queries(&lds, &freq, cfg.k, &qids),
            }
        })
        .collect();
    Table4 { rows }
}

impl std::fmt::Display for Table4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(
            "Table 4: Accuracy of different techniques (class stripping, k = 20)",
            &["data set (d)", "IGrid", "HCINN", "Freq. k-n-match"],
        );
        for r in &self.rows {
            t.push(vec![
                format!("{} ({})", r.dataset, r.dims),
                pct(r.igrid),
                r.hcinn.map_or("N.A.".into(), pct),
                pct(r.frequent),
            ]);
        }
        write!(f, "{t}")
    }
}

/// The three datasets Figures 8–9 sweep (ionosphere, segmentation, wdbc).
pub fn fig8_datasets(seed: u64) -> Vec<(&'static str, LabelledDataset)> {
    uci_standins()
        .iter()
        .filter(|s| matches!(s.name, "ionosphere" | "segmentation" | "wdbc"))
        .map(|s| (s.name, s.generate(seed ^ s.dims as u64)))
        .collect()
}

/// A generic accuracy sweep result: one series per dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracySweep {
    /// Figure caption.
    pub title: String,
    /// x-axis label.
    pub x_label: String,
    /// One accuracy curve per dataset.
    pub series: Vec<Series>,
}

impl std::fmt::Display for AccuracySweep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}",
            render_figure(&self.title, &self.x_label, &self.series)
        )
    }
}

/// Figure 8(a): accuracy as a function of `n0` with `n1 = d`.
pub fn fig8a(seed: u64, queries: usize) -> AccuracySweep {
    let cfg = ClassStripConfig {
        queries,
        k: 20,
        seed,
    };
    let series = fig8_datasets(seed)
        .into_iter()
        .map(|(name, lds)| {
            let d = lds.data.dims();
            let qids = sample_queries(&lds, &cfg);
            let points = n0_grid(d)
                .into_iter()
                .map(|n0| {
                    let m = FrequentKnMatchMethod { n0, n1: d };
                    (n0 as f64, accuracy_for_queries(&lds, &m, cfg.k, &qids))
                })
                .collect();
            Series::new(name, points)
        })
        .collect();
    AccuracySweep {
        title: "Figure 8(a): Accuracy vs n0 (n1 = d)".into(),
        x_label: "n0".into(),
        series,
    }
}

/// Figure 8(b): accuracy as a function of `n1` with `n0 = 4`.
pub fn fig8b(seed: u64, queries: usize) -> AccuracySweep {
    let cfg = ClassStripConfig {
        queries,
        k: 20,
        seed,
    };
    let series = fig8_datasets(seed)
        .into_iter()
        .map(|(name, lds)| {
            let d = lds.data.dims();
            let qids = sample_queries(&lds, &cfg);
            let points = n1_grid(d)
                .into_iter()
                .map(|n1| {
                    let m = FrequentKnMatchMethod { n0: 4.min(n1), n1 };
                    (n1 as f64, accuracy_for_queries(&lds, &m, cfg.k, &qids))
                })
                .collect();
            Series::new(name, points)
        })
        .collect();
    AccuracySweep {
        title: "Figure 8(b): Accuracy vs n1 (n0 = 4)".into(),
        x_label: "n1".into(),
        series,
    }
}

/// Figure 9(a): percentage of attributes retrieved by the AD algorithm as
/// a function of `n1` (`n0 = 4`, k = 20).
pub fn fig9a(seed: u64, queries: usize) -> AccuracySweep {
    let cfg = ClassStripConfig {
        queries,
        k: 20,
        seed,
    };
    let series = fig8_datasets(seed)
        .into_iter()
        .map(|(name, lds)| {
            let d = lds.data.dims();
            let qids = sample_queries(&lds, &cfg);
            let mut cols = SortedColumns::build(&lds.data);
            let points = n1_grid(d)
                .into_iter()
                .map(|n1| {
                    (
                        n1 as f64,
                        100.0 * mean_retrieved(&mut cols, &lds, &qids, cfg.k, n1),
                    )
                })
                .collect();
            Series::new(name, points)
        })
        .collect();
    AccuracySweep {
        title: "Figure 9(a): Retrieved attributes (%) vs n1 (n0 = 4)".into(),
        x_label: "n1".into(),
        series,
    }
}

/// Figure 9(b): the accuracy/performance trade-off on the ionosphere
/// stand-in — accuracy as a function of retrieved attributes (%), with the
/// IGrid accuracy and accessed-fraction reference point.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9b {
    /// `(retrieved %, accuracy)` for the AD algorithm across the n1 grid.
    pub ad_curve: Vec<(f64, f64)>,
    /// IGrid's `(accessed %, accuracy)` reference point.
    pub igrid_point: (f64, f64),
}

/// Runs Figure 9(b).
pub fn fig9b(seed: u64, queries: usize) -> Fig9b {
    let cfg = ClassStripConfig {
        queries,
        k: 20,
        seed,
    };
    let (_, lds) = fig8_datasets(seed)
        .into_iter()
        .find(|(n, _)| *n == "ionosphere")
        .expect("ionosphere stand-in exists");
    let d = lds.data.dims();
    let qids = sample_queries(&lds, &cfg);
    let mut cols = SortedColumns::build(&lds.data);
    let ad_curve = n1_grid(d)
        .into_iter()
        .map(|n1| {
            let retrieved = 100.0 * mean_retrieved(&mut cols, &lds, &qids, cfg.k, n1);
            let m = FrequentKnMatchMethod { n0: 4.min(n1), n1 };
            (retrieved, accuracy_for_queries(&lds, &m, cfg.k, &qids))
        })
        .collect();
    // IGrid touches one of kd equi-depth lists per dimension; measure the
    // exact accessed fraction over the same query set.
    let igrid = PrebuiltIGrid::new(&lds.data);
    let igrid_acc = accuracy_for_queries(&lds, &igrid, cfg.k, &qids);
    let idx = knmatch_igrid::IGridIndex::build(&lds.data);
    let total = (lds.data.len() * d) as f64;
    let mut touched = 0u64;
    for &qid in &qids {
        let (_, t) = idx
            .query_with_stats(lds.data.point(qid), cfg.k)
            .expect("protocol parameters were validated");
        touched += t;
    }
    let accessed = 100.0 * touched as f64 / (qids.len() as f64 * total);
    Fig9b {
        ad_curve,
        igrid_point: (accessed, igrid_acc),
    }
}

impl std::fmt::Display for Fig9b {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(
            "Figure 9(b): Accuracy vs retrieved attributes (ionosphere)",
            &["retrieved %", "AD accuracy"],
        );
        for &(x, y) in &self.ad_curve {
            t.push(vec![format!("{x:.1}"), pct(y)]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "IGrid reference: {:.1}% attributes accessed, accuracy {}",
            self.igrid_point.0,
            pct(self.igrid_point.1)
        )
    }
}

/// Mean retrieved-attribute fraction of FKNMatchAD over the query ids.
fn mean_retrieved(
    cols: &mut SortedColumns,
    lds: &LabelledDataset,
    qids: &[PointId],
    k: usize,
    n1: usize,
) -> f64 {
    let c = lds.data.len();
    let d = lds.data.dims();
    let mut total = 0.0;
    for &qid in qids {
        let q = lds.data.point(qid).to_vec();
        let (_, stats) =
            frequent_k_n_match_ad(cols, &q, k.min(c), 4.min(n1), n1).expect("valid parameters");
        total += stats.retrieved_fraction(c, d);
    }
    total / qids.len() as f64
}

/// The n0 sweep grid: 1, 2, 4, 6, … up to d.
fn n0_grid(d: usize) -> Vec<usize> {
    let mut v = vec![1];
    let mut x = 2;
    while x < d {
        v.push(x);
        x += if x < 8 { 2 } else { 4 };
    }
    v.push(d);
    v.dedup();
    v
}

/// The n1 sweep grid: 4, 6, 8, … up to d (n0 is fixed at 4).
fn n1_grid(d: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut x = 4.min(d);
    while x < d {
        v.push(x);
        x += if x < 8 { 2 } else { 4 };
    }
    v.push(d);
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_finds_the_boat_for_mid_n() {
        let t = table2(42);
        assert_eq!(t.rows.len(), 10);
        // Image 78 appears for the ns inside its matched blocks.
        let with_boat = t
            .rows
            .iter()
            .filter(|(n, ids)| (20..=36).contains(n) && ids.contains(&78))
            .count();
        assert!(with_boat >= 3, "boat should appear for several n: {t}");
        // Query image 42 is in every answer set.
        assert!(t.rows.iter().all(|(_, ids)| ids.contains(&42)));
    }

    #[test]
    fn table3_matches_paper_membership() {
        let t = table3(42);
        assert_eq!(t.images, vec![13, 35, 36, 40, 42, 64, 85, 88, 94, 96]);
        assert!(!t.images.contains(&78));
    }

    #[test]
    fn table4_ranking_matches_paper() {
        let t = table4(7, 30);
        assert_eq!(t.rows.len(), 5);
        for r in &t.rows {
            // The paper's ranking: frequent k-n-match wins on every dataset.
            // On the low-dimensional stand-ins (glass 9-d, iris 4-d) the two
            // methods are close (the paper reports 0.7–9.2 point margins);
            // allow protocol noise there but require a clear non-loss on
            // the high-dimensional sets.
            let slack = if r.dims >= 15 { 0.0 } else { 0.05 };
            assert!(
                r.frequent + slack >= r.igrid,
                "{}: frequent ({}) must not lose to IGrid ({})",
                r.dataset,
                r.frequent,
                r.igrid
            );
            assert!(
                r.frequent > 0.5,
                "{}: accuracy {} too low",
                r.dataset,
                r.frequent
            );
        }
        assert_eq!(t.rows[0].hcinn, Some(0.86));
        assert_eq!(t.rows[2].hcinn, None);
        let rendered = t.to_string();
        assert!(rendered.contains("ionosphere"));
        assert!(rendered.contains("N.A."));
    }

    #[test]
    fn fig8a_has_three_series_over_full_grid() {
        let s = fig8a(3, 10);
        assert_eq!(s.series.len(), 3);
        for ser in &s.series {
            assert!(ser.points.len() >= 4);
            assert!(ser.points.iter().all(|&(_, y)| (0.0..=1.0).contains(&y)));
            // First x is n0 = 1, last is d.
            assert_eq!(ser.points[0].0, 1.0);
        }
    }

    #[test]
    fn fig8b_accuracy_degrades_for_small_n1() {
        let s = fig8b(3, 15);
        for ser in &s.series {
            let first = ser.points.first().expect("non-empty").1;
            let last = ser.points.last().expect("non-empty").1;
            // A tiny range [4, 4] cannot beat the full range by much; allow
            // noise but catch inversions of the paper's trend.
            assert!(last >= first - 0.15, "{}: {} -> {}", ser.label, first, last);
        }
    }

    #[test]
    fn fig9a_retrieval_grows_with_n1() {
        let s = fig9a(3, 8);
        for ser in &s.series {
            let ys: Vec<f64> = ser.points.iter().map(|p| p.1).collect();
            assert!(
                ys.windows(2).all(|w| w[1] >= w[0] - 1e-9),
                "{}: retrieval must not shrink as n1 grows: {ys:?}",
                ser.label
            );
            assert!(*ys.last().expect("non-empty") <= 100.0);
        }
    }

    #[test]
    fn fig9b_has_monotone_x_and_reference_point() {
        let r = fig9b(3, 8);
        assert!(r.ad_curve.len() >= 4);
        assert!(r.igrid_point.0 > 0.0 && r.igrid_point.0 <= 100.0);
        assert!(r.to_string().contains("IGrid reference"));
    }

    #[test]
    fn grids_are_sane() {
        assert_eq!(n0_grid(8), vec![1, 2, 4, 6, 8]);
        assert!(n1_grid(34).ends_with(&[34]));
        assert!(n1_grid(4).contains(&4));
        assert_eq!(n1_grid(4), vec![4]);
    }
}
