//! Efficiency experiments: Figures 10–15 of the paper, run over the disk
//! substrate with deterministic cost counters (page accesses, attributes
//! retrieved) and the modelled response time of
//! [`knmatch_storage::CostModel`].

use knmatch_data::{synthetic, uniform};

use crate::efficiency::{sample_query_points, Cost, DiskBench};
use crate::report::{render_figure, Series};

/// Built competitor structures for the two Section 5.2.2 datasets plus
/// their shared query workloads.
#[derive(Debug)]
pub struct EffContext {
    /// Bench over the uniform dataset.
    pub uniform: DiskBench,
    /// Bench over the skewed Texture stand-in.
    pub texture: DiskBench,
    /// Queries against the uniform dataset.
    pub uq: Vec<Vec<f64>>,
    /// Queries against the texture dataset.
    pub tq: Vec<Vec<f64>>,
}

/// Builds the context. Paper scale: `uniform_card = 100_000`,
/// `texture_card = 68_040`, both 16-dimensional.
pub fn eff_context(
    uniform_card: usize,
    texture_card: usize,
    queries: usize,
    seed: u64,
) -> EffContext {
    let u = uniform(uniform_card, 16, seed);
    let t = synthetic::skewed(texture_card, 16, seed ^ 0x7E87);
    let uq = sample_query_points(&u, queries, seed + 1);
    let tq = sample_query_points(&t, queries, seed + 2);
    EffContext {
        uniform: DiskBench::build(&u),
        texture: DiskBench::build(&t),
        uq,
        tq,
    }
}

/// The default frequent range the paper settles on for efficiency runs
/// (`n0 = 4`, `n1 ≈ 8`; Section 5.2.1).
pub const DEFAULT_RANGE: (usize, usize) = (4, 8);

/// Figure 10: the VA-file adaptation — points refined (a) and response
/// time vs the sequential scan (b), as functions of `k`.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10 {
    /// Panel (a): points refined per query.
    pub refined: Vec<Series>,
    /// Panel (b): modelled response time (ms).
    pub time: Vec<Series>,
}

/// Runs Figure 10.
pub fn fig10(ctx: &mut EffContext, ks: &[usize]) -> Fig10 {
    let (n0, n1) = DEFAULT_RANGE;
    let mut refined = Vec::new();
    let mut time = Vec::new();
    for (name, bench, queries) in [
        ("uniform", &mut ctx.uniform, &ctx.uq),
        ("texture", &mut ctx.texture, &ctx.tq),
    ] {
        let va: Vec<(usize, Cost)> = ks
            .iter()
            .map(|&k| (k, bench.va_frequent(queries, k, n0, n1)))
            .collect();
        let scan: Vec<(usize, Cost)> = ks
            .iter()
            .map(|&k| (k, bench.scan_frequent(queries, k, n0, n1)))
            .collect();
        refined.push(Series::new(
            name,
            va.iter().map(|&(k, c)| (k as f64, c.refined)).collect(),
        ));
        time.push(Series::new(
            format!("VA-file, {name}"),
            va.iter().map(|&(k, c)| (k as f64, c.time_ms)).collect(),
        ));
        time.push(Series::new(
            format!("scan, {name}"),
            scan.iter().map(|&(k, c)| (k as f64, c.time_ms)).collect(),
        ));
    }
    Fig10 { refined, time }
}

impl std::fmt::Display for Fig10 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}",
            render_figure(
                "Figure 10(a): VA-file — points refined vs k",
                "k",
                &self.refined
            )
        )?;
        write!(
            f,
            "{}",
            render_figure(
                "Figure 10(b): VA-file vs scan — response time (ms) vs k",
                "k",
                &self.time
            )
        )
    }
}

/// Figure 11: disk AD — page accesses (a) and response time (b) vs `k`,
/// against the sequential scan.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11 {
    /// Panel (a): page accesses.
    pub pages: Vec<Series>,
    /// Panel (b): modelled response time (ms).
    pub time: Vec<Series>,
}

/// Runs Figure 11.
pub fn fig11(ctx: &mut EffContext, ks: &[usize]) -> Fig11 {
    let (n0, n1) = DEFAULT_RANGE;
    let mut pages = Vec::new();
    let mut time = Vec::new();
    for (name, bench, queries) in [
        ("uniform", &mut ctx.uniform, &ctx.uq),
        ("texture", &mut ctx.texture, &ctx.tq),
    ] {
        let ad: Vec<(usize, Cost)> = ks
            .iter()
            .map(|&k| (k, bench.ad_frequent(queries, k, n0, n1)))
            .collect();
        let scan: Vec<(usize, Cost)> = ks
            .iter()
            .map(|&k| (k, bench.scan_frequent(queries, k, n0, n1)))
            .collect();
        pages.push(Series::new(
            format!("AD, {name}"),
            ad.iter().map(|&(k, c)| (k as f64, c.pages)).collect(),
        ));
        pages.push(Series::new(
            format!("scan, {name}"),
            scan.iter().map(|&(k, c)| (k as f64, c.pages)).collect(),
        ));
        time.push(Series::new(
            format!("AD, {name}"),
            ad.iter().map(|&(k, c)| (k as f64, c.time_ms)).collect(),
        ));
        time.push(Series::new(
            format!("scan, {name}"),
            scan.iter().map(|&(k, c)| (k as f64, c.time_ms)).collect(),
        ));
    }
    Fig11 { pages, time }
}

impl std::fmt::Display for Fig11 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}",
            render_figure("Figure 11(a): AD — page accesses vs k", "k", &self.pages)
        )?;
        write!(
            f,
            "{}",
            render_figure(
                "Figure 11(b): AD — response time (ms) vs k",
                "k",
                &self.time
            )
        )
    }
}

/// Figure 12: disk AD — page accesses (a) and response time (b) vs `n1`
/// (`k = 20`, `n0 = 4`), against the scan.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12 {
    /// Panel (a): page accesses.
    pub pages: Vec<Series>,
    /// Panel (b): modelled response time (ms).
    pub time: Vec<Series>,
}

/// Runs Figure 12.
pub fn fig12(ctx: &mut EffContext, n1s: &[usize], k: usize) -> Fig12 {
    let n0 = DEFAULT_RANGE.0;
    let mut pages = Vec::new();
    let mut time = Vec::new();
    for (name, bench, queries) in [
        ("uniform", &mut ctx.uniform, &ctx.uq),
        ("texture", &mut ctx.texture, &ctx.tq),
    ] {
        let ad: Vec<(usize, Cost)> = n1s
            .iter()
            .map(|&n1| (n1, bench.ad_frequent(queries, k, n0, n1)))
            .collect();
        let scan: Vec<(usize, Cost)> = n1s
            .iter()
            .map(|&n1| (n1, bench.scan_frequent(queries, k, n0, n1)))
            .collect();
        pages.push(Series::new(
            format!("AD, {name}"),
            ad.iter().map(|&(n1, c)| (n1 as f64, c.pages)).collect(),
        ));
        pages.push(Series::new(
            format!("scan, {name}"),
            scan.iter().map(|&(n1, c)| (n1 as f64, c.pages)).collect(),
        ));
        time.push(Series::new(
            format!("AD, {name}"),
            ad.iter().map(|&(n1, c)| (n1 as f64, c.time_ms)).collect(),
        ));
        time.push(Series::new(
            format!("scan, {name}"),
            scan.iter().map(|&(n1, c)| (n1 as f64, c.time_ms)).collect(),
        ));
    }
    Fig12 { pages, time }
}

impl std::fmt::Display for Fig12 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}",
            render_figure("Figure 12(a): AD — page accesses vs n1", "n1", &self.pages)
        )?;
        write!(
            f,
            "{}",
            render_figure(
                "Figure 12(b): AD — response time (ms) vs n1",
                "n1",
                &self.time
            )
        )
    }
}

/// Figure 13: AD vs IGrid vs scan on uniform 16-d data — response time vs
/// `k` (a) and vs cardinality (b).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13 {
    /// Panel (a): time vs k at the base cardinality.
    pub vs_k: Vec<Series>,
    /// Panel (b): time vs cardinality at k = 20.
    pub vs_size: Vec<Series>,
}

/// Runs Figure 13. `sizes` are cardinalities (paper: 50k–300k); the first
/// entry doubles as panel (a)'s dataset size… the paper uses 100k there, so
/// pass `base_size` explicitly.
pub fn fig13(base_size: usize, sizes: &[usize], ks: &[usize], queries: usize, seed: u64) -> Fig13 {
    let (n0, n1) = DEFAULT_RANGE;
    // Panel (a): sweep k on the base-size dataset.
    let ds = uniform(base_size, 16, seed);
    let q = sample_query_points(&ds, queries, seed + 1);
    let mut bench = DiskBench::build(&ds);
    let mut scan_a = Vec::new();
    let mut ad_a = Vec::new();
    let mut ig_a = Vec::new();
    for &k in ks {
        scan_a.push((k as f64, bench.scan_frequent(&q, k, n0, n1).time_ms));
        ad_a.push((k as f64, bench.ad_frequent(&q, k, n0, n1).time_ms));
        ig_a.push((k as f64, bench.igrid_query(&q, k).time_ms));
    }
    // Panel (b): sweep cardinality at k = 20.
    let mut scan_b = Vec::new();
    let mut ad_b = Vec::new();
    let mut ig_b = Vec::new();
    for &size in sizes {
        let ds = uniform(size, 16, seed ^ size as u64);
        let q = sample_query_points(&ds, queries, seed + 2);
        let mut bench = DiskBench::build(&ds);
        let x = size as f64 / 1000.0;
        scan_b.push((x, bench.scan_frequent(&q, 20, n0, n1).time_ms));
        ad_b.push((x, bench.ad_frequent(&q, 20, n0, n1).time_ms));
        ig_b.push((x, bench.igrid_query(&q, 20).time_ms));
    }
    Fig13 {
        vs_k: vec![
            Series::new("scan", scan_a),
            Series::new("AD", ad_a),
            Series::new("IGrid", ig_a),
        ],
        vs_size: vec![
            Series::new("scan", scan_b),
            Series::new("AD", ad_b),
            Series::new("IGrid", ig_b),
        ],
    }
}

impl std::fmt::Display for Fig13 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}",
            render_figure(
                "Figure 13(a): response time (ms) vs k (uniform, 16-d)",
                "k",
                &self.vs_k
            )
        )?;
        write!(
            f,
            "{}",
            render_figure(
                "Figure 13(b): response time (ms) vs data set size (thousand)",
                "size",
                &self.vs_size
            )
        )
    }
}

/// Figure 14: response time vs dimensionality (uniform data, k = 20).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig14 {
    /// Time curves for scan / AD / IGrid.
    pub series: Vec<Series>,
}

/// Runs Figure 14 over `dims` (paper: 8–48) at `card` points each.
pub fn fig14(card: usize, dims: &[usize], queries: usize, seed: u64) -> Fig14 {
    let (n0, n1) = DEFAULT_RANGE;
    let mut scan = Vec::new();
    let mut ad = Vec::new();
    let mut ig = Vec::new();
    for &d in dims {
        let ds = uniform(card, d, seed ^ d as u64);
        let q = sample_query_points(&ds, queries, seed + 3);
        let mut bench = DiskBench::build(&ds);
        let x = d as f64;
        scan.push((x, bench.scan_frequent(&q, 20, n0, n1.min(d)).time_ms));
        ad.push((x, bench.ad_frequent(&q, 20, n0, n1.min(d)).time_ms));
        ig.push((x, bench.igrid_query(&q, 20).time_ms));
    }
    Fig14 {
        series: vec![
            Series::new("scan", scan),
            Series::new("AD", ad),
            Series::new("IGrid", ig),
        ],
    }
}

impl std::fmt::Display for Fig14 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}",
            render_figure(
                "Figure 14: response time (ms) vs dimensionality (uniform, k = 20)",
                "d",
                &self.series
            )
        )
    }
}

/// Figure 15: the Texture stand-in — response time vs `n1` against scan and
/// IGrid (a), and AD's retrieved-attribute percentage vs `n1` (b).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig15 {
    /// Panel (a): time curves (scan and IGrid are n1-independent and
    /// rendered flat).
    pub time: Vec<Series>,
    /// Panel (b): `(n1, retrieved %)` for AD.
    pub retrieved: Series,
}

/// Runs Figure 15.
pub fn fig15(ctx: &mut EffContext, n1s: &[usize], k: usize) -> Fig15 {
    let n0 = DEFAULT_RANGE.0;
    let scan_cost = ctx.texture.scan_frequent(&ctx.tq, k, n0, n1s[0]);
    let ig_cost = ctx.texture.igrid_query(&ctx.tq, k);
    let mut ad_time = Vec::new();
    let mut ad_attr = Vec::new();
    let total_attrs = (ctx.texture.len() * ctx.texture.dims()) as f64;
    for &n1 in n1s {
        let c = ctx.texture.ad_frequent(&ctx.tq, k, n0.min(n1), n1);
        ad_time.push((n1 as f64, c.time_ms));
        ad_attr.push((n1 as f64, 100.0 * c.attributes / total_attrs));
    }
    let xs: Vec<f64> = n1s.iter().map(|&n| n as f64).collect();
    Fig15 {
        time: vec![
            Series::new("scan", xs.iter().map(|&x| (x, scan_cost.time_ms)).collect()),
            Series::new("AD", ad_time),
            Series::new("IGrid", xs.iter().map(|&x| (x, ig_cost.time_ms)).collect()),
        ],
        retrieved: Series::new("AD", ad_attr),
    }
}

impl std::fmt::Display for Fig15 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}",
            render_figure(
                "Figure 15(a): response time (ms) vs n1 (texture)",
                "n1",
                &self.time
            )
        )?;
        write!(
            f,
            "{}",
            render_figure(
                "Figure 15(b): retrieved attributes (%) vs n1 (texture)",
                "n1",
                std::slice::from_ref(&self.retrieved)
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small but realistic scale: page-granularity effects need tens of
    /// thousands of points before the methods separate as in the paper.
    fn tiny_ctx() -> EffContext {
        eff_context(24_000, 16_000, 2, 5)
    }

    #[test]
    fn fig10_va_slower_than_scan_and_refines_fraction() {
        let mut ctx = tiny_ctx();
        let fig = fig10(&mut ctx, &[10, 20]);
        assert_eq!(fig.refined.len(), 2);
        assert_eq!(fig.time.len(), 4);
        for s in &fig.refined {
            for &(_, r) in &s.points {
                assert!(r >= 10.0, "{}: refined {r}", s.label);
                assert!(r < 24_000.0);
            }
        }
        // The paper's conclusion: the VA-file adaptation provides no real
        // benefit over the scan (it measured ~2x slower). Our n-match
        // bounds prune tighter than the original's, so on uniform data VA
        // can land near (occasionally just below) the scan; on the
        // correlated texture data the refinement burden makes it clearly
        // slower. Assert the scale-stable version of the claim.
        let t_va = fig
            .time
            .iter()
            .find(|s| s.label == "VA-file, texture")
            .unwrap();
        let t_scan = fig
            .time
            .iter()
            .find(|s| s.label == "scan, texture")
            .unwrap();
        for (a, b) in t_va.points.iter().zip(&t_scan.points) {
            assert!(a.1 > b.1, "texture: VA {} !> scan {}", a.1, b.1);
        }
        let u_va = fig
            .time
            .iter()
            .find(|s| s.label == "VA-file, uniform")
            .unwrap();
        let u_scan = fig
            .time
            .iter()
            .find(|s| s.label == "scan, uniform")
            .unwrap();
        for (a, b) in u_va.points.iter().zip(&u_scan.points) {
            assert!(
                a.1 > 0.3 * b.1,
                "uniform: VA {} should not be far below scan {}",
                a.1,
                b.1
            );
        }
        assert!(fig.to_string().contains("Figure 10(a)"));
    }

    #[test]
    fn fig11_ad_beats_scan() {
        let mut ctx = tiny_ctx();
        let fig = fig11(&mut ctx, &[10, 20]);
        for name in ["uniform", "texture"] {
            let ad = fig
                .pages
                .iter()
                .find(|s| s.label == format!("AD, {name}"))
                .unwrap();
            let scan = fig
                .pages
                .iter()
                .find(|s| s.label == format!("scan, {name}"))
                .unwrap();
            for (a, b) in ad.points.iter().zip(&scan.points) {
                assert!(a.1 < b.1, "{name}: AD pages {} !< scan {}", a.1, b.1);
            }
        }
        // Page accesses grow (weakly) with k.
        for s in &fig.pages {
            assert!(s.points[1].1 >= s.points[0].1 - 1e-9, "{}", s.label);
        }
    }

    #[test]
    fn fig12_ad_grows_with_n1() {
        let mut ctx = tiny_ctx();
        let fig = fig12(&mut ctx, &[8, 12, 16], 10);
        let ad = fig.pages.iter().find(|s| s.label == "AD, uniform").unwrap();
        let ys: Vec<f64> = ad.points.iter().map(|p| p.1).collect();
        assert!(ys.windows(2).all(|w| w[1] >= w[0] - 1e-9), "{ys:?}");
        let scan = fig
            .pages
            .iter()
            .find(|s| s.label == "scan, uniform")
            .unwrap();
        assert!(scan
            .points
            .iter()
            .all(|p| (p.1 - scan.points[0].1).abs() < 1e-9));
    }

    #[test]
    fn fig13_ordering_and_scaling() {
        let fig = fig13(20_000, &[12_000, 24_000], &[10, 20], 2, 9);
        for panel in [&fig.vs_k, &fig.vs_size] {
            let scan = panel.iter().find(|s| s.label == "scan").unwrap();
            let ad = panel.iter().find(|s| s.label == "AD").unwrap();
            let ig = panel.iter().find(|s| s.label == "IGrid").unwrap();
            for i in 0..scan.points.len() {
                assert!(ad.points[i].1 < scan.points[i].1, "AD must beat scan");
                assert!(scan.points[i].1 < ig.points[i].1, "IGrid must trail scan");
            }
        }
        // Panel (b): all methods scale up with cardinality.
        for s in &fig.vs_size {
            assert!(
                s.points[1].1 > s.points[0].1,
                "{} should grow with size",
                s.label
            );
        }
    }

    #[test]
    fn fig14_scan_grows_with_dims() {
        let fig = fig14(16_000, &[8, 16], 2, 11);
        let scan = fig.series.iter().find(|s| s.label == "scan").unwrap();
        assert!(scan.points[1].1 > scan.points[0].1);
        let ad = fig.series.iter().find(|s| s.label == "AD").unwrap();
        for i in 0..2 {
            assert!(ad.points[i].1 < scan.points[i].1);
        }
        assert!(fig.to_string().contains("Figure 14"));
    }

    #[test]
    fn fig15_texture_ad_beats_both_even_at_full_n1() {
        let mut ctx = tiny_ctx();
        let fig = fig15(&mut ctx, &[6, 8, 12, 16], 10);
        let scan = fig.time.iter().find(|s| s.label == "scan").unwrap();
        let ad = fig.time.iter().find(|s| s.label == "AD").unwrap();
        // The paper's headline: on the skewed texture data AD beats scan
        // even when n1 equals the dimensionality.
        for i in 0..ad.points.len() {
            assert!(
                ad.points[i].1 < scan.points[i].1,
                "AD {} !< scan {} at n1={}",
                ad.points[i].1,
                scan.points[i].1,
                ad.points[i].0
            );
        }
        // Retrieved attributes stay a modest fraction thanks to the skew.
        let last = fig.retrieved.points.last().unwrap();
        assert!(last.1 < 60.0, "retrieved {}% at n1=d", last.1);
        assert!(fig
            .retrieved
            .points
            .windows(2)
            .all(|w| w[1].1 >= w[0].1 - 1e-9));
    }
}
