//! Extension experiments beyond the paper's figures — the ablations
//! DESIGN.md calls out. Each backs one claim the paper makes in prose:
//!
//! * **Ext-1 (dimensionality curse)** — Section 6: "R-tree-like structures
//!   all suffer from the dimensionality curse". We measure the fraction of
//!   R-tree leaves (and of VA-file candidates) a kNN query must touch as
//!   dimensionality grows.
//! * **Ext-2 (cost-model sensitivity)** — the reproduction's response
//!   times use a seek:stream cost ratio; this sweep shows AD is fastest at
//!   *every* ratio, while the scan-vs-IGrid ordering the paper measured
//!   appears once seeks cost a few times a streamed page (IGrid touches
//!   less data but fragments it — exactly the paper's argument, now with
//!   its validity region made explicit).
//! * **Ext-3 (VA-file resolution)** — bits-per-dimension ablation for the
//!   Section 4.2 competitor: coarser cells refine more points.

use knmatch_core::k_nearest;
use knmatch_core::Euclidean;
use knmatch_data::uniform;
use knmatch_rtree::{RTree, SsTree};
use knmatch_storage::{BufferPool, CostModel, HeapFile, MemStore};
use knmatch_vafile::{k_nearest_va, VaFile};

use crate::efficiency::{sample_query_points, DiskBench};
use crate::report::{render_figure, Series};

/// Ext-1: the dimensionality curse, quantified.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtCurse {
    /// `(d, fraction)` series: R-tree leaves visited, VA-file points
    /// refined, scan (always 1.0) — each as a fraction of the total.
    pub series: Vec<Series>,
}

/// Runs Ext-1 over `dims` at `card` points, kNN with `k = 10`.
pub fn ext_curse(card: usize, dims: &[usize], queries: usize, seed: u64) -> ExtCurse {
    let mut rtree_frac = Vec::new();
    let mut sstree_frac = Vec::new();
    let mut va_frac = Vec::new();
    let mut scan_frac = Vec::new();
    for &d in dims {
        let ds = uniform(card, d, seed ^ d as u64);
        let qs = sample_query_points(&ds, queries, seed + 7);
        let tree = RTree::bulk_load(&ds).expect("non-empty dataset");
        let stree = SsTree::bulk_load(&ds).expect("non-empty dataset");
        let mut store = MemStore::new();
        let heap = HeapFile::build(&mut store, &ds);
        let va = VaFile::build(&mut store, &ds, 8);
        let mut pool = BufferPool::new(store, 512);

        let mut leaf_f = 0.0;
        let mut ss_leaf_f = 0.0;
        let mut refine_f = 0.0;
        for q in &qs {
            let (tree_ans, stats) = tree.k_nearest(&ds, q, 10).expect("valid query");
            leaf_f += stats.leaf_fraction(tree.leaf_count());
            let (_, ss_stats) = stree.k_nearest(&ds, q, 10).expect("valid query");
            ss_leaf_f += ss_stats.leaf_fraction(stree.leaf_count());
            let va_out = k_nearest_va(&va, &heap, &mut pool, q, 10).expect("valid query");
            refine_f += va_out.refined as f64 / card as f64;
            // All three must agree with the exact scan.
            let exact = k_nearest(&ds, q, 10, &Euclidean).expect("valid query");
            let t: Vec<u32> = tree_ans.iter().map(|n| n.pid).collect();
            let e: Vec<u32> = exact.iter().map(|n| n.pid).collect();
            assert_eq!(t, e, "R-tree kNN must be exact");
        }
        let nq = qs.len() as f64;
        rtree_frac.push((d as f64, leaf_f / nq));
        sstree_frac.push((d as f64, ss_leaf_f / nq));
        va_frac.push((d as f64, refine_f / nq));
        scan_frac.push((d as f64, 1.0));
    }
    ExtCurse {
        series: vec![
            Series::new("R-tree leaves", rtree_frac),
            Series::new("SS-tree leaves", sstree_frac),
            Series::new("VA-file refined", va_frac),
            Series::new("scan", scan_frac),
        ],
    }
}

impl std::fmt::Display for ExtCurse {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}",
            render_figure(
                "Ext-1: fraction of structure touched by kNN vs dimensionality",
                "d",
                &self.series
            )
        )
    }
}

/// Ext-2: method ordering across seek:stream cost ratios.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtCostModel {
    /// `(ratio, time ms)` per method.
    pub series: Vec<Series>,
}

/// Runs Ext-2 on one uniform dataset (frequent k-n-match, k = 20,
/// `[n0, n1] = [4, 8]`); the page mixes are measured once and re-priced
/// under each ratio.
pub fn ext_cost_model(card: usize, ratios: &[f64], queries: usize, seed: u64) -> ExtCostModel {
    let ds = uniform(card, 16, seed);
    let qs = sample_query_points(&ds, queries, seed + 1);
    let mut bench = DiskBench::build(&ds);
    let ad = bench.ad_frequent(&qs, 20, 4, 8);
    let scan = bench.scan_frequent(&qs, 20, 4, 8);
    let igrid = bench.igrid_query(&qs, 20);

    let price = |seq: f64, rand: f64, ratio: f64| {
        let model = CostModel {
            sequential_ms: 0.1,
            random_ms: 0.1 * ratio,
        };
        seq * model.sequential_ms + rand * model.random_ms
    };
    let series = vec![
        Series::new(
            "AD",
            ratios
                .iter()
                .map(|&r| (r, price(ad.seq_pages, ad.rand_pages, r)))
                .collect(),
        ),
        Series::new(
            "scan",
            ratios
                .iter()
                .map(|&r| (r, price(scan.seq_pages, scan.rand_pages, r)))
                .collect(),
        ),
        Series::new(
            "IGrid",
            ratios
                .iter()
                .map(|&r| (r, price(igrid.seq_pages, igrid.rand_pages, r)))
                .collect(),
        ),
    ];
    ExtCostModel { series }
}

impl std::fmt::Display for ExtCostModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}",
            render_figure(
                "Ext-2: modelled response time (ms) vs seek:stream cost ratio",
                "ratio",
                &self.series
            )
        )
    }
}

/// Ext-3: VA-file resolution ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtVaBits {
    /// `(bits, points refined)` for the frequent k-n-match filter.
    pub refined: Series,
    /// `(bits, approximation size as % of the data)` — the space cost.
    pub size_pct: Series,
}

/// Runs Ext-3: bits ∈ `bits`, frequent k-n-match k = 20, `[4, 8]`.
pub fn ext_va_bits(card: usize, bits: &[u8], queries: usize, seed: u64) -> ExtVaBits {
    let ds = uniform(card, 16, seed);
    let qs = sample_query_points(&ds, queries, seed + 3);
    let mut refined = Vec::new();
    let mut size = Vec::new();
    for &b in bits {
        let mut store = MemStore::new();
        let heap = HeapFile::build(&mut store, &ds);
        let va = VaFile::build(&mut store, &ds, b);
        let mut pool = BufferPool::new(store, 512);
        let mut total = 0usize;
        for q in &qs {
            let out = knmatch_vafile::frequent_k_n_match_va(&va, &heap, &mut pool, q, 20, 4, 8)
                .expect("valid query");
            total += out.refined;
        }
        refined.push((b as f64, total as f64 / qs.len() as f64));
        size.push((
            b as f64,
            100.0 * va.total_pages() as f64 / heap.total_pages() as f64,
        ));
    }
    ExtVaBits {
        refined: Series::new("refined", refined),
        size_pct: Series::new("size %", size),
    }
}

impl std::fmt::Display for ExtVaBits {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}",
            render_figure(
                "Ext-3: VA-file points refined vs bits per dimension",
                "bits",
                std::slice::from_ref(&self.refined)
            )
        )?;
        write!(
            f,
            "{}",
            render_figure(
                "Ext-3: VA-file size (% of heap) vs bits per dimension",
                "bits",
                std::slice::from_ref(&self.size_pct)
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curse_fractions_rise_with_d() {
        let e = ext_curse(4000, &[2, 16], 2, 5);
        let rt = &e.series[0];
        assert!(
            rt.points[1].1 > rt.points[0].1,
            "R-tree curse: {:?}",
            rt.points
        );
        assert!(rt.points[1].1 > 0.5, "high-d kNN should touch most leaves");
        let va = &e.series[1];
        assert!(va.points[0].1 <= 1.0 && va.points[0].1 > 0.0);
        assert!(e.to_string().contains("Ext-1"));
    }

    #[test]
    fn cost_model_ordering() {
        let e = ext_cost_model(20_000, &[1.0, 5.0, 20.0], 2, 5);
        let get = |name: &str| e.series.iter().find(|s| s.label == name).unwrap();
        for i in 0..3 {
            let ratio = get("AD").points[i].0;
            let ad = get("AD").points[i].1;
            let scan = get("scan").points[i].1;
            let ig = get("IGrid").points[i].1;
            // AD wins at every ratio.
            assert!(ad < scan, "ratio {ratio}: AD {ad} !< scan {scan}");
            assert!(ad < ig, "ratio {ratio}: AD {ad} !< IGrid {ig}");
            // The paper's scan < IGrid ordering needs seeks to actually
            // cost something; it must hold from ratio 5 up.
            if ratio >= 5.0 {
                assert!(scan < ig, "ratio {ratio}: scan {scan} !< IGrid {ig}");
            }
        }
        // At ratio 1 (seeks free) IGrid's smaller accessed volume wins over
        // the scan — the crossover Ext-2 exists to expose.
        let scan1 = get("scan").points[0].1;
        let ig1 = get("IGrid").points[0].1;
        assert!(
            ig1 < scan1,
            "free seeks should favour IGrid: {ig1} vs {scan1}"
        );
    }

    #[test]
    fn va_bits_tradeoff() {
        let e = ext_va_bits(4000, &[2, 4, 8], 2, 5);
        let r: Vec<f64> = e.refined.points.iter().map(|p| p.1).collect();
        assert!(
            r[0] >= r[1] && r[1] >= r[2],
            "coarser bits refine more: {r:?}"
        );
        let s: Vec<f64> = e.size_pct.points.iter().map(|p| p.1).collect();
        assert!(
            s[0] <= s[1] && s[1] <= s[2],
            "finer bits cost more space: {s:?}"
        );
    }
}

/// Ext-4: related-work head-to-head — class-stripping accuracy of kNN,
/// MEDRANK (rank aggregation, \[12\]), IGrid and the frequent k-n-match on
/// the five UCI stand-ins.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtMethods {
    /// `(dataset, d, knn, medrank, igrid, frequent)` rows.
    pub rows: Vec<(String, usize, f64, f64, f64, f64)>,
}

/// Runs Ext-4 with the Table 4 protocol at `queries` queries.
pub fn ext_methods(seed: u64, queries: usize) -> ExtMethods {
    use crate::class_strip::{accuracy_for_queries, sample_queries, ClassStripConfig};
    use crate::methods::{FrequentKnMatchMethod, KnnMethod, MedrankMethod, PrebuiltIGrid};
    let cfg = ClassStripConfig {
        queries,
        k: 20,
        seed,
    };
    let rows = knmatch_data::uci_standins()
        .iter()
        .map(|standin| {
            let lds = standin.generate(seed ^ standin.dims as u64);
            let qids = sample_queries(&lds, &cfg);
            let igrid = PrebuiltIGrid::new(&lds.data);
            (
                standin.name.to_string(),
                standin.dims,
                accuracy_for_queries(&lds, &KnnMethod, cfg.k, &qids),
                accuracy_for_queries(&lds, &MedrankMethod, cfg.k, &qids),
                accuracy_for_queries(&lds, &igrid, cfg.k, &qids),
                accuracy_for_queries(
                    &lds,
                    &FrequentKnMatchMethod {
                        n0: 1,
                        n1: standin.dims,
                    },
                    cfg.k,
                    &qids,
                ),
            )
        })
        .collect();
    ExtMethods { rows }
}

impl std::fmt::Display for ExtMethods {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = crate::report::Table::new(
            "Ext-4: class-stripping accuracy — kNN / MEDRANK / IGrid / freq. k-n-match",
            &["data set (d)", "kNN", "MEDRANK", "IGrid", "Freq. k-n-match"],
        );
        for (name, d, knn, mr, ig, fq) in &self.rows {
            t.push(vec![
                format!("{name} ({d})"),
                crate::report::pct(*knn),
                crate::report::pct(*mr),
                crate::report::pct(*ig),
                crate::report::pct(*fq),
            ]);
        }
        write!(f, "{t}")
    }
}

/// Ext-5: how densely must the frequent range be sampled? Counting
/// appearances over every s-th n in `[1, d]` (stride s) leaves the AD cost
/// unchanged (Theorem 3.3 depends only on n1); this sweep shows the
/// accuracy is stride-robust — evidence for the paper's claim that the
/// frequent query "is not sensitive to the choice of n".
#[derive(Debug, Clone, PartialEq)]
pub struct ExtStride {
    /// One accuracy curve per dataset over the stride grid.
    pub series: Vec<Series>,
}

/// Runs Ext-5 over `strides` with the Table 4 protocol.
pub fn ext_stride(seed: u64, queries: usize, strides: &[usize]) -> ExtStride {
    use crate::class_strip::{accuracy_for_queries, sample_queries, ClassStripConfig};
    use crate::methods::SimilarityMethod;

    /// Frequent k-n-match counting only every `stride`-th n.
    struct Strided {
        stride: usize,
    }
    impl SimilarityMethod for Strided {
        fn name(&self) -> String {
            format!("stride {}", self.stride)
        }
        fn top_k(
            &self,
            ds: &knmatch_core::Dataset,
            query: &[f64],
            k: usize,
        ) -> knmatch_core::Result<Vec<knmatch_core::PointId>> {
            let d = ds.dims();
            let full = knmatch_core::frequent_k_n_match_scan(ds, query, k, 1, d)?;
            let mut counts: std::collections::HashMap<knmatch_core::PointId, u32> =
                std::collections::HashMap::new();
            for res in full.per_n.iter().filter(|r| (r.n - 1) % self.stride == 0) {
                for e in &res.entries {
                    *counts.entry(e.pid).or_insert(0) += 1;
                }
            }
            let pairs: Vec<(knmatch_core::PointId, u32)> = counts.into_iter().collect();
            Ok(knmatch_core::result::rank_frequent(&pairs, k)
                .into_iter()
                .map(|e| e.pid)
                .collect())
        }
    }

    let cfg = ClassStripConfig {
        queries,
        k: 20,
        seed,
    };
    let series = knmatch_data::uci_standins()
        .iter()
        .filter(|s| matches!(s.name, "ionosphere" | "segmentation" | "wdbc"))
        .map(|standin| {
            let lds = standin.generate(seed ^ standin.dims as u64);
            let qids = sample_queries(&lds, &cfg);
            let points = strides
                .iter()
                .map(|&s| {
                    (
                        s as f64,
                        accuracy_for_queries(&lds, &Strided { stride: s }, cfg.k, &qids),
                    )
                })
                .collect();
            Series::new(standin.name, points)
        })
        .collect();
    ExtStride { series }
}

impl std::fmt::Display for ExtStride {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}",
            render_figure(
                "Ext-5: accuracy vs frequent-range sampling stride (n in [1, d])",
                "stride",
                &self.series
            )
        )
    }
}

#[cfg(test)]
mod ext45_tests {
    use super::*;

    #[test]
    fn methods_comparison_shape() {
        let e = ext_methods(3, 15);
        assert_eq!(e.rows.len(), 5);
        for (name, d, knn, mr, ig, fq) in &e.rows {
            for v in [knn, mr, ig, fq] {
                assert!((0.0..=1.0).contains(v), "{name}: {v}");
            }
            // The exact matching-based method should not lose badly to the
            // rank-aggregation approximation on high-d noisy data.
            if *d >= 15 {
                assert!(fq + 0.02 >= *mr, "{name}: freq {fq} vs MEDRANK {mr}");
            }
        }
        assert!(e.to_string().contains("MEDRANK"));
    }

    #[test]
    fn stride_robustness() {
        let e = ext_stride(3, 12, &[1, 2, 4]);
        assert_eq!(e.series.len(), 3);
        for s in &e.series {
            let base = s.points[0].1;
            for &(stride, acc) in &s.points {
                assert!(
                    acc >= base - 0.08,
                    "{}: stride {stride} accuracy {acc} collapsed from {base}",
                    s.label
                );
            }
        }
    }
}

/// Ext-6: IGrid range-count ablation — accuracy and accessed fraction as
/// the per-dimension range count `kd` varies around the paper's `d/2`
/// default. More ranges = less data touched but fewer proximity matches:
/// the accuracy/cost trade-off behind the "accessed data size is 2/d"
/// analysis the paper quotes from \[6\].
#[derive(Debug, Clone, PartialEq)]
pub struct ExtIGridBins {
    /// `(kd, accuracy)` on the ionosphere stand-in.
    pub accuracy: Series,
    /// `(kd, accessed % of attributes)`.
    pub accessed: Series,
}

/// Runs Ext-6 over `bin_counts` with the Table 4 protocol.
pub fn ext_igrid_bins(seed: u64, queries: usize, bin_counts: &[usize]) -> ExtIGridBins {
    use crate::class_strip::{accuracy_for_queries, sample_queries, ClassStripConfig};
    use crate::methods::SimilarityMethod;
    use knmatch_igrid::IGridIndex;

    struct WithBins {
        bins: usize,
    }
    impl SimilarityMethod for WithBins {
        fn name(&self) -> String {
            format!("IGrid kd={}", self.bins)
        }
        fn top_k(
            &self,
            ds: &knmatch_core::Dataset,
            query: &[f64],
            k: usize,
        ) -> knmatch_core::Result<Vec<knmatch_core::PointId>> {
            let idx = IGridIndex::build_with(ds, self.bins, 2.0);
            Ok(idx.query(query, k)?.into_iter().map(|a| a.pid).collect())
        }
    }

    let cfg = ClassStripConfig {
        queries,
        k: 20,
        seed,
    };
    let standin = knmatch_data::uci_standins()
        .into_iter()
        .find(|s| s.name == "ionosphere")
        .expect("ionosphere stand-in exists");
    let lds = standin.generate(seed ^ standin.dims as u64);
    let qids = sample_queries(&lds, &cfg);
    let total = (lds.data.len() * lds.data.dims()) as f64;

    let mut accuracy = Vec::new();
    let mut accessed = Vec::new();
    for &bins in bin_counts {
        let acc = accuracy_for_queries(&lds, &WithBins { bins }, cfg.k, &qids);
        accuracy.push((bins as f64, acc));
        let idx = IGridIndex::build_with(&lds.data, bins, 2.0);
        let mut touched = 0u64;
        for &qid in &qids {
            let (_, t) = idx
                .query_with_stats(lds.data.point(qid), cfg.k)
                .expect("valid");
            touched += t;
        }
        accessed.push((
            bins as f64,
            100.0 * touched as f64 / (qids.len() as f64 * total),
        ));
    }
    ExtIGridBins {
        accuracy: Series::new("accuracy", accuracy),
        accessed: Series::new("accessed %", accessed),
    }
}

impl std::fmt::Display for ExtIGridBins {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}",
            render_figure(
                "Ext-6: IGrid accuracy vs ranges per dimension (ionosphere)",
                "kd",
                std::slice::from_ref(&self.accuracy)
            )
        )?;
        write!(
            f,
            "{}",
            render_figure(
                "Ext-6: IGrid accessed attributes (%) vs ranges per dimension",
                "kd",
                std::slice::from_ref(&self.accessed)
            )
        )
    }
}

#[cfg(test)]
mod ext6_tests {
    use super::*;

    #[test]
    fn accessed_fraction_shrinks_with_bins() {
        let e = ext_igrid_bins(3, 10, &[2, 8, 32]);
        let acc: Vec<f64> = e.accessed.points.iter().map(|p| p.1).collect();
        assert!(acc[0] > acc[1] && acc[1] > acc[2], "{acc:?}");
        // 1/kd within rounding of the measured fraction.
        for (i, &bins) in [2usize, 8, 32].iter().enumerate() {
            let expected = 100.0 / bins as f64;
            assert!(
                (acc[i] - expected).abs() < expected * 0.5,
                "kd={bins}: measured {} vs ~{expected}",
                acc[i]
            );
        }
        for &(_, a) in &e.accuracy.points {
            assert!((0.0..=1.0).contains(&a));
        }
    }
}
