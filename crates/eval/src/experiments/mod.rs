//! One runner per table/figure of the paper's evaluation (Section 5).
//!
//! Every runner is parameterised by scale so the test suite exercises it in
//! miniature while the `repro` binary (in `knmatch-bench`) runs the paper's
//! sizes. See DESIGN.md §4 for the experiment ↔ module map.

pub mod effectiveness;
pub mod efficiency_exps;
pub mod extensions;

pub use effectiveness::{
    fig8a, fig8b, fig9a, fig9b, table2, table3, table4, AccuracySweep, Fig9b, Table2, Table3,
    Table4, Table4Row, HCINN_QUOTED,
};
pub use efficiency_exps::{
    eff_context, fig10, fig11, fig12, fig13, fig14, fig15, EffContext, Fig10, Fig11, Fig12, Fig13,
    Fig14, Fig15, DEFAULT_RANGE,
};
pub use extensions::{
    ext_cost_model, ext_curse, ext_igrid_bins, ext_methods, ext_stride, ext_va_bits, ExtCostModel,
    ExtCurse, ExtIGridBins, ExtMethods, ExtStride, ExtVaBits,
};
