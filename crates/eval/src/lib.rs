//! # knmatch-eval
//!
//! The experiment harness of the k-n-match reproduction: the
//! class-stripping effectiveness protocol (Section 5.1.2), a uniform
//! interface over the compared similarity methods, the disk-cost machinery
//! for the efficiency experiments, and one runner per table/figure of the
//! paper's evaluation.
//!
//! ```
//! use knmatch_eval::experiments::table3;
//!
//! // The kNN column of the COIL experiment, at the paper's parameters:
//! let t3 = table3(42);
//! assert!(t3.images.contains(&42)); // the query image is its own NN
//! println!("{t3}");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod class_strip;
pub mod efficiency;
pub mod experiments;
pub mod methods;
pub mod report;

pub use class_strip::{accuracy, accuracy_for_queries, sample_queries, ClassStripConfig};
pub use efficiency::{sample_query_points, Cost, DiskBench, POOL_PAGES};
pub use methods::{
    FrequentKnMatchMethod, IGridMethod, KnMatchMethod, KnnMethod, PrebuiltIGrid, SimilarityMethod,
};
pub use report::{pct, render_figure, trim_float, Series, Table};
