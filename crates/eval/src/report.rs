//! Plain-text rendering of experiment outputs: aligned tables for the
//! paper's tables, and x/series column layouts for its figures.

use std::fmt;

/// A titled table with a header row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table caption (e.g. "Table 4: Accuracy of different techniques").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (each as long as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the row width differs from the header width.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<w$}")?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// One curve of a figure: a label plus `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// The curve's points, in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }
}

/// Renders one figure panel: an x column followed by one y column per
/// series. Series may have different x grids (e.g. sweeps up to each
/// dataset's own dimensionality); the panel uses the union grid and leaves
/// missing cells blank.
pub fn render_figure(title: &str, x_label: &str, series: &[Series]) -> String {
    let mut table = Table::new(
        title,
        &std::iter::once(x_label)
            .chain(series.iter().map(|s| s.label.as_str()))
            .collect::<Vec<_>>(),
    );
    let mut xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0))
        .collect();
    xs.sort_unstable_by(f64::total_cmp);
    xs.dedup();
    for &x in &xs {
        let mut row = vec![trim_float(x)];
        for s in series {
            match s.points.iter().find(|p| p.0 == x) {
                Some(&(_, y)) => row.push(trim_float(y)),
                None => row.push(String::new()),
            }
        }
        table.push(row);
    }
    table.to_string()
}

/// Formats a float without trailing zero noise (integers render bare).
pub fn trim_float(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        let s = format!("{v:.4}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new("T", &["name", "v"]);
        t.push(vec!["alpha".into(), "1".into()]);
        t.push(vec!["b".into(), "22.5".into()]);
        let s = t.to_string();
        assert!(s.contains("T\n"));
        assert!(s.contains("alpha"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // The separator spans the full width.
        assert!(lines[2].chars().all(|c| c == '-'));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        let mut t = Table::new("T", &["a", "b"]);
        t.push(vec!["x".into()]);
    }

    #[test]
    fn figure_rendering() {
        let s1 = Series::new("AD", vec![(8.0, 1.0), (16.0, 2.0)]);
        let s2 = Series::new("scan", vec![(8.0, 3.0), (16.0, 3.0)]);
        let out = render_figure("Fig", "d", &[s1, s2]);
        assert!(out.contains("AD"));
        assert!(out.contains("scan"));
        assert!(out.contains("16"));
    }

    #[test]
    fn mismatched_x_grids_use_the_union() {
        let s1 = Series::new("a", vec![(1.0, 10.0)]);
        let s2 = Series::new("b", vec![(2.0, 20.0)]);
        let out = render_figure("F", "x", &[s1, s2]);
        // Two data rows: x = 1 with only a, x = 2 with only b.
        assert!(out.lines().count() >= 5, "{out}");
        assert!(out.contains("10"));
        assert!(out.contains("20"));
    }

    #[test]
    fn float_trimming() {
        assert_eq!(trim_float(3.0), "3");
        assert_eq!(trim_float(0.25), "0.25");
        assert_eq!(trim_float(0.12345), "0.1235");
        assert_eq!(pct(0.875), "87.5%");
    }
}
