//! Shared machinery for the disk-based efficiency experiments
//! (Figures 10–15): builds every competitor structure over one dataset and
//! answers averaged per-query costs in the paper's currencies — page
//! accesses, attributes retrieved, and a modelled response time.

use knmatch_core::Dataset;
use knmatch_data::rng::seeded;
use knmatch_igrid::DiskIGrid;
use knmatch_storage::{BufferPool, CostModel, DiskDatabase, HeapFile, IoStats, MemStore};
use knmatch_vafile::VaFile;

/// Averaged cost of one method over a query workload.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Cost {
    /// Mean page accesses per query.
    pub pages: f64,
    /// Mean sequential page reads per query.
    pub seq_pages: f64,
    /// Mean random page reads per query.
    pub rand_pages: f64,
    /// Mean modelled response time (ms) per query.
    pub time_ms: f64,
    /// Mean attributes retrieved per query (AD only; 0 otherwise).
    pub attributes: f64,
    /// Mean points refined per query (VA-file only; 0 otherwise).
    pub refined: f64,
}

impl Cost {
    fn add_io(&mut self, io: IoStats, model: CostModel) {
        self.pages += io.page_accesses() as f64;
        self.seq_pages += io.sequential_reads as f64;
        self.rand_pages += io.random_reads as f64;
        self.time_ms += io.response_time_ms(model);
    }

    fn div(&mut self, n: f64) {
        self.pages /= n;
        self.seq_pages /= n;
        self.rand_pages /= n;
        self.time_ms /= n;
        self.attributes /= n;
        self.refined /= n;
    }
}

/// All disk structures for one dataset, each in its own store so page
/// numbering (and hence sequentiality) is per-structure, as it would be in
/// separate files.
#[derive(Debug)]
pub struct DiskBench {
    dims: usize,
    len: usize,
    db: DiskDatabase<MemStore>,
    va: VaFile,
    va_heap: HeapFile,
    va_pool: BufferPool<MemStore>,
    igrid: DiskIGrid,
    igrid_pool: BufferPool<MemStore>,
    model: CostModel,
}

/// Buffer-pool frames given to every method (1 MiB at 4 KiB pages — small
/// against the datasets, so queries run cold like the paper's).
pub const POOL_PAGES: usize = 256;

impl DiskBench {
    /// Builds the AD database (heap + sorted columns), the 8-bit VA-file,
    /// and the block-chained IGrid over `ds`.
    pub fn build(ds: &Dataset) -> Self {
        let db = DiskDatabase::build_in_memory(ds, POOL_PAGES);
        let mut va_store = MemStore::new();
        let va_heap = HeapFile::build(&mut va_store, ds);
        let va = VaFile::build(&mut va_store, ds, 8);
        let mut ig_store = MemStore::new();
        let igrid = DiskIGrid::build_default(&mut ig_store, ds);
        DiskBench {
            dims: ds.dims(),
            len: ds.len(),
            db,
            va,
            va_heap,
            va_pool: BufferPool::new(va_store, POOL_PAGES),
            igrid,
            igrid_pool: BufferPool::new(ig_store, POOL_PAGES),
            model: CostModel::default(),
        }
    }

    /// Dataset dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Dataset cardinality.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the benchmark database holds no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pages of the heap file (the scan baseline reads all of them).
    pub fn heap_pages(&self) -> usize {
        self.db.heap().total_pages()
    }

    /// Mean disk-AD cost of the frequent k-n-match workload.
    pub fn ad_frequent(&mut self, queries: &[Vec<f64>], k: usize, n0: usize, n1: usize) -> Cost {
        let mut cost = Cost::default();
        for q in queries {
            self.db.pool_mut().invalidate_all();
            let out = self
                .db
                .frequent_k_n_match(q, k, n0, n1)
                .expect("valid parameters");
            cost.add_io(out.io, self.model);
            cost.attributes += out.ad.attributes_retrieved as f64;
        }
        cost.div(queries.len() as f64);
        cost
    }

    /// Mean sequential-scan cost of the frequent k-n-match workload.
    pub fn scan_frequent(&mut self, queries: &[Vec<f64>], k: usize, n0: usize, n1: usize) -> Cost {
        let mut cost = Cost::default();
        for q in queries {
            self.db.pool_mut().invalidate_all();
            let out = self
                .db
                .scan_frequent_k_n_match(q, k, n0, n1)
                .expect("valid parameters");
            cost.add_io(out.io, self.model);
            cost.attributes += (self.len * self.dims) as f64;
        }
        cost.div(queries.len() as f64);
        cost
    }

    /// Mean VA-file cost of the frequent k-n-match workload.
    pub fn va_frequent(&mut self, queries: &[Vec<f64>], k: usize, n0: usize, n1: usize) -> Cost {
        let mut cost = Cost::default();
        for q in queries {
            self.va_pool.invalidate_all();
            let out = knmatch_vafile::frequent_k_n_match_va(
                &self.va,
                &self.va_heap,
                &mut self.va_pool,
                q,
                k,
                n0,
                n1,
            )
            .expect("valid parameters");
            cost.add_io(out.io, self.model);
            cost.refined += out.refined as f64;
        }
        cost.div(queries.len() as f64);
        cost
    }

    /// Mean IGrid cost of the top-k similarity workload.
    pub fn igrid_query(&mut self, queries: &[Vec<f64>], k: usize) -> Cost {
        let mut cost = Cost::default();
        for q in queries {
            self.igrid_pool.invalidate_all();
            let (_, io) = self
                .igrid
                .query(&mut self.igrid_pool, q, k)
                .expect("valid parameters");
            cost.add_io(io, self.model);
        }
        cost.div(queries.len() as f64);
        cost
    }
}

/// Samples `nq` query points from the dataset (the paper samples queries
/// from the data) with a small perturbation so exact self-matches do not
/// trivialise the search.
pub fn sample_query_points(ds: &Dataset, nq: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = seeded(seed);
    (0..nq)
        .map(|_| {
            let pid = rng.range_usize(0..ds.len()) as u32;
            ds.point(pid)
                .iter()
                .map(|&v| (v + rng.range_f64(-0.01, 0.01)).clamp(0.0, 1.0))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use knmatch_data::uniform;

    fn bench() -> (DiskBench, Vec<Vec<f64>>) {
        let ds = uniform(4000, 8, 77);
        let queries = sample_query_points(&ds, 3, 1);
        (DiskBench::build(&ds), queries)
    }

    #[test]
    fn scan_cost_is_heap_pages() {
        let (mut b, q) = bench();
        let scan = b.scan_frequent(&q, 10, 4, 8);
        assert!((scan.pages - b.heap_pages() as f64).abs() < 1e-9);
        assert!(scan.rand_pages <= 1.5, "scan is sequential: {scan:?}");
    }

    #[test]
    fn ad_reads_fewer_pages_than_scan() {
        let (mut b, q) = bench();
        let ad = b.ad_frequent(&q, 10, 4, 8);
        let scan = b.scan_frequent(&q, 10, 4, 8);
        assert!(
            ad.pages < scan.pages,
            "AD ({}) must beat scan ({}) in page accesses",
            ad.pages,
            scan.pages
        );
        assert!(ad.attributes > 0.0);
        assert!(ad.attributes < (b.len() * b.dims()) as f64);
    }

    #[test]
    fn va_refines_a_fraction_and_pays_random_io() {
        let (mut b, q) = bench();
        let va = b.va_frequent(&q, 10, 4, 8);
        assert!(va.refined >= 10.0);
        assert!(va.refined < b.len() as f64);
        assert!(va.rand_pages > 0.0);
    }

    #[test]
    fn igrid_touches_fragments() {
        let (mut b, q) = bench();
        let ig = b.igrid_query(&q, 10);
        assert!(ig.pages > 0.0);
        assert!(ig.rand_pages > ig.seq_pages, "fragmented lists: {ig:?}");
    }

    #[test]
    fn ordering_matches_figure_13() {
        // AD fastest, scan in between, IGrid slowest (modelled time). Page
        // granularity only separates the methods at a realistic scale, so
        // this test uses a larger dataset than the smoke tests above.
        let ds = uniform(30_000, 16, 78);
        let q = sample_query_points(&ds, 2, 1);
        let mut b = DiskBench::build(&ds);
        let ad = b.ad_frequent(&q, 10, 4, 8);
        let scan = b.scan_frequent(&q, 10, 4, 8);
        let ig = b.igrid_query(&q, 10);
        assert!(
            ad.time_ms < scan.time_ms && scan.time_ms < ig.time_ms,
            "expected AD < scan < IGrid, got {} / {} / {}",
            ad.time_ms,
            scan.time_ms,
            ig.time_ms
        );
    }

    #[test]
    fn queries_are_deterministic() {
        let ds = uniform(100, 4, 5);
        assert_eq!(
            sample_query_points(&ds, 4, 9),
            sample_query_points(&ds, 4, 9)
        );
    }
}
