//! Minimal CSV persistence for datasets (optionally with a trailing class
//! label per row), so generated workloads can be inspected or exchanged.
//!
//! Format: one point per line, coordinates as decimal floats separated by
//! commas; labelled files carry the integer class as the last column.

use std::fmt::Write as _;
use std::path::Path;

use knmatch_core::Dataset;

use crate::clusters::LabelledDataset;

/// Serialises `ds` to CSV text.
pub fn dataset_to_csv(ds: &Dataset) -> String {
    let mut out = String::new();
    for (_, p) in ds.iter() {
        push_row(&mut out, p, None);
    }
    out
}

/// Serialises a labelled dataset; the label is the last column.
pub fn labelled_to_csv(lds: &LabelledDataset) -> String {
    let mut out = String::new();
    for (pid, p) in lds.data.iter() {
        push_row(&mut out, p, Some(lds.labels[pid as usize]));
    }
    out
}

fn push_row(out: &mut String, coords: &[f64], label: Option<u16>) {
    for (i, v) in coords.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // RFC-ish shortest roundtrip formatting.
        write!(out, "{v}").expect("writing to String cannot fail");
    }
    if let Some(l) = label {
        write!(out, ",{l}").expect("writing to String cannot fail");
    }
    out.push('\n');
}

/// Parse errors for [`dataset_from_csv`] / [`labelled_from_csv`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// A field failed to parse as a number on the given 1-based line.
    BadNumber {
        /// 1-based line number.
        line: usize,
    },
    /// A row had a different number of columns than the first row.
    RaggedRow {
        /// 1-based line number.
        line: usize,
    },
    /// The input contained no rows.
    Empty,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::BadNumber { line } => write!(f, "unparseable number on line {line}"),
            CsvError::RaggedRow { line } => write!(f, "inconsistent column count on line {line}"),
            CsvError::Empty => write!(f, "no rows"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Parses an unlabelled CSV into a dataset.
///
/// # Errors
///
/// Returns a [`CsvError`] on malformed input.
pub fn dataset_from_csv(text: &str) -> Result<Dataset, CsvError> {
    let rows = parse_rows(text)?;
    Dataset::from_rows(&rows).map_err(|_| CsvError::Empty)
}

/// Parses a labelled CSV (label = last column) into a labelled dataset.
///
/// # Errors
///
/// Returns a [`CsvError`] on malformed input (including a non-integer
/// label).
pub fn labelled_from_csv(text: &str) -> Result<LabelledDataset, CsvError> {
    let rows = parse_rows(text)?;
    let width = rows.first().ok_or(CsvError::Empty)?.len();
    if width < 2 {
        return Err(CsvError::RaggedRow { line: 1 });
    }
    let mut labels = Vec::with_capacity(rows.len());
    let mut coords = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let label = row[width - 1];
        if label < 0.0 || label.fract() != 0.0 || label > u16::MAX as f64 {
            return Err(CsvError::BadNumber { line: i + 1 });
        }
        labels.push(label as u16);
        coords.push(row[..width - 1].to_vec());
    }
    let data = Dataset::from_rows(&coords).map_err(|_| CsvError::Empty)?;
    Ok(LabelledDataset { data, labels })
}

fn parse_rows(text: &str) -> Result<Vec<Vec<f64>>, CsvError> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut width = None;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let row: Result<Vec<f64>, _> = line.split(',').map(|f| f.trim().parse::<f64>()).collect();
        let row = row.map_err(|_| CsvError::BadNumber { line: i + 1 })?;
        if let Some(w) = width {
            if row.len() != w {
                return Err(CsvError::RaggedRow { line: i + 1 });
            }
        } else {
            width = Some(row.len());
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(CsvError::Empty);
    }
    Ok(rows)
}

/// Writes a dataset to a file.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_dataset<P: AsRef<Path>>(path: P, ds: &Dataset) -> std::io::Result<()> {
    std::fs::write(path, dataset_to_csv(ds))
}

/// Reads a dataset from a file.
///
/// # Errors
///
/// Propagates filesystem errors; parse failures surface as
/// `InvalidData`.
pub fn load_dataset<P: AsRef<Path>>(path: P) -> std::io::Result<Dataset> {
    let text = std::fs::read_to_string(path)?;
    dataset_from_csv(&text)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clusters::{labelled_clusters, ClusterSpec};

    #[test]
    fn dataset_roundtrip() {
        let ds = Dataset::from_rows(&[vec![0.125, -3.5], vec![1e-9, 7.0]]).unwrap();
        let text = dataset_to_csv(&ds);
        let back = dataset_from_csv(&text).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn labelled_roundtrip() {
        let lds = labelled_clusters(&ClusterSpec::new(20, 3, 2, 9));
        let text = labelled_to_csv(&lds);
        let back = labelled_from_csv(&text).unwrap();
        assert_eq!(back, lds);
    }

    #[test]
    fn parse_errors() {
        assert_eq!(dataset_from_csv(""), Err(CsvError::Empty));
        assert_eq!(
            dataset_from_csv("1.0,x\n"),
            Err(CsvError::BadNumber { line: 1 })
        );
        assert_eq!(
            dataset_from_csv("1.0,2.0\n3.0\n"),
            Err(CsvError::RaggedRow { line: 2 })
        );
        // Fractional or negative labels are rejected.
        assert_eq!(
            labelled_from_csv("0.5,1.5\n"),
            Err(CsvError::BadNumber { line: 1 })
        );
        assert_eq!(
            labelled_from_csv("0.5,-1\n"),
            Err(CsvError::BadNumber { line: 1 })
        );
    }

    #[test]
    fn blank_lines_skipped() {
        let ds = dataset_from_csv("1.0,2.0\n\n  \n3.0,4.0\n").unwrap();
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("knmatch-csv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.csv");
        let ds = Dataset::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        save_dataset(&path, &ds).unwrap();
        assert_eq!(load_dataset(&path).unwrap(), ds);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
