//! Class-labelled cluster datasets — stand-ins for the five UCI machine
//! learning datasets of Section 5.1.2 (ionosphere, image segmentation,
//! wdbc, glass, iris).
//!
//! The class-stripping protocol only needs labelled data whose classes form
//! clusters while individual dimensions occasionally carry wild values
//! (the paper's "bad pixels, wrong readings or noise in a signal"). Each
//! class is a Gaussian blob around a well-separated centre; every
//! coordinate is independently replaced by a uniform random value with a
//! small probability. Those noisy dimensions are exactly what dominates
//! aggregating metrics (hurting kNN) while the frequent k-n-match query
//! ignores them — the mechanism behind Table 4's ranking.

use knmatch_core::Dataset;

use crate::rng::{clamp01, normal, seeded};

/// A dataset with one class label per point.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelledDataset {
    /// The points.
    pub data: Dataset,
    /// `labels[pid]` is the class of point `pid`.
    pub labels: Vec<u16>,
}

impl LabelledDataset {
    /// Number of distinct classes.
    pub fn classes(&self) -> usize {
        self.labels
            .iter()
            .copied()
            .max()
            .map_or(0, |m| m as usize + 1)
    }
}

/// Parameters for [`labelled_clusters`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// Number of points to generate.
    pub cardinality: usize,
    /// Dimensionality.
    pub dims: usize,
    /// Number of classes (clusters).
    pub classes: usize,
    /// Standard deviation of each Gaussian cluster.
    pub cluster_std: f64,
    /// Per-coordinate probability of replacement by uniform noise.
    pub noise_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ClusterSpec {
    /// A spec with the defaults used throughout the experiments
    /// (`cluster_std` 0.06, `noise_prob` 0.08).
    pub fn new(cardinality: usize, dims: usize, classes: usize, seed: u64) -> Self {
        ClusterSpec {
            cardinality,
            dims,
            classes,
            cluster_std: 0.06,
            noise_prob: 0.08,
            seed,
        }
    }
}

/// Generates a labelled cluster dataset per `spec`. Points round-robin over
/// the classes so every class is populated; coordinates live in `[0, 1]`.
///
/// # Panics
///
/// Panics when `classes == 0`, `dims == 0`, or `cardinality < classes`.
pub fn labelled_clusters(spec: &ClusterSpec) -> LabelledDataset {
    assert!(spec.classes >= 1, "need at least one class");
    assert!(spec.dims >= 1, "need at least one dimension");
    assert!(
        spec.cardinality >= spec.classes,
        "every class needs a point"
    );
    let mut rng = seeded(spec.seed);

    // Well-separated class centres: rejection-sample until pairwise L2
    // distance clears a dimension-scaled threshold (give up gracefully
    // after enough tries so tiny spaces still work).
    let min_sep = 0.25 * (spec.dims as f64).sqrt();
    let mut centres: Vec<Vec<f64>> = Vec::with_capacity(spec.classes);
    for _ in 0..spec.classes {
        let mut best: Option<Vec<f64>> = None;
        let mut best_sep = f64::NEG_INFINITY;
        for _ in 0..200 {
            let cand: Vec<f64> = (0..spec.dims).map(|_| rng.range_f64(0.15, 0.85)).collect();
            let sep = centres
                .iter()
                .map(|c| {
                    c.iter()
                        .zip(&cand)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>()
                        .sqrt()
                })
                .fold(f64::INFINITY, f64::min);
            if sep >= min_sep {
                best = Some(cand);
                break;
            }
            if sep > best_sep {
                best_sep = sep;
                best = Some(cand);
            }
        }
        centres.push(best.expect("at least one candidate"));
    }

    let mut data = Dataset::with_capacity(spec.dims, spec.cardinality).expect("dims >= 1");
    let mut labels = Vec::with_capacity(spec.cardinality);
    let mut row = vec![0.0f64; spec.dims];
    for i in 0..spec.cardinality {
        let class = i % spec.classes;
        for (j, v) in row.iter_mut().enumerate() {
            *v = if rng.next_f64() < spec.noise_prob {
                rng.next_f64() // a wild reading
            } else {
                clamp01(normal(&mut rng, centres[class][j], spec.cluster_std))
            };
        }
        data.push(&row).expect("generated rows are valid");
        labels.push(class as u16);
    }
    LabelledDataset { data, labels }
}

/// Shape descriptor of one UCI stand-in dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UciStandin {
    /// Dataset name as the paper reports it.
    pub name: &'static str,
    /// Cardinality (the paper's Section 5.1.2 counts).
    pub cardinality: usize,
    /// Dimensionality.
    pub dims: usize,
    /// Number of classes.
    pub classes: usize,
}

impl UciStandin {
    /// Generates this stand-in with the experiment defaults.
    pub fn generate(&self, seed: u64) -> LabelledDataset {
        labelled_clusters(&ClusterSpec::new(
            self.cardinality,
            self.dims,
            self.classes,
            seed,
        ))
    }
}

/// The five UCI datasets of Section 5.1.2, with the paper's shapes:
/// ionosphere 351×34 (2 classes), segmentation 300×19 (7), wdbc 569×30
/// (2), glass 214×9 (7), iris 150×4 (3).
pub fn uci_standins() -> [UciStandin; 5] {
    [
        UciStandin {
            name: "ionosphere",
            cardinality: 351,
            dims: 34,
            classes: 2,
        },
        UciStandin {
            name: "segmentation",
            cardinality: 300,
            dims: 19,
            classes: 7,
        },
        UciStandin {
            name: "wdbc",
            cardinality: 569,
            dims: 30,
            classes: 2,
        },
        UciStandin {
            name: "glass",
            cardinality: 214,
            dims: 9,
            classes: 7,
        },
        UciStandin {
            name: "iris",
            cardinality: 150,
            dims: 4,
            classes: 3,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_labels() {
        let spec = ClusterSpec::new(100, 6, 4, 1);
        let lds = labelled_clusters(&spec);
        assert_eq!(lds.data.len(), 100);
        assert_eq!(lds.data.dims(), 6);
        assert_eq!(lds.labels.len(), 100);
        assert_eq!(lds.classes(), 4);
        for (_, p) in lds.data.iter() {
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = ClusterSpec::new(50, 5, 3, 7);
        assert_eq!(labelled_clusters(&spec), labelled_clusters(&spec));
        let other = ClusterSpec { seed: 8, ..spec };
        assert_ne!(labelled_clusters(&spec), labelled_clusters(&other));
    }

    #[test]
    fn classes_are_clustered() {
        // Same-class points must on average be closer than cross-class
        // points (otherwise class stripping would measure nothing).
        let spec = ClusterSpec::new(200, 10, 2, 3);
        let lds = labelled_clusters(&spec);
        let mut same = (0.0, 0usize);
        let mut cross = (0.0, 0usize);
        for i in 0..lds.data.len() {
            for j in (i + 1)..lds.data.len() {
                let d: f64 = lds
                    .data
                    .point(i as u32)
                    .iter()
                    .zip(lds.data.point(j as u32))
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                if lds.labels[i] == lds.labels[j] {
                    same = (same.0 + d, same.1 + 1);
                } else {
                    cross = (cross.0 + d, cross.1 + 1);
                }
            }
        }
        let same_avg = same.0 / same.1 as f64;
        let cross_avg = cross.0 / cross.1 as f64;
        assert!(
            same_avg < 0.7 * cross_avg,
            "same {same_avg} vs cross {cross_avg}: classes not separated"
        );
    }

    #[test]
    fn every_class_populated() {
        let lds = labelled_clusters(&ClusterSpec::new(10, 3, 7, 5));
        let mut seen = [false; 7];
        for &l in &lds.labels {
            seen[l as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uci_standins_match_paper_shapes() {
        let s = uci_standins();
        assert_eq!(s[0].dims, 34);
        assert_eq!(s[4].cardinality, 150);
        let iris = s[4].generate(1);
        assert_eq!(iris.data.len(), 150);
        assert_eq!(iris.data.dims(), 4);
        assert_eq!(iris.classes(), 3);
    }

    #[test]
    #[should_panic(expected = "every class needs a point")]
    fn too_many_classes_panics() {
        labelled_clusters(&ClusterSpec::new(2, 3, 5, 0));
    }
}
