//! Per-dimension min-max normalisation to the unit interval.
//!
//! Section 5 of the paper: "The data values are all normalized to the range
//! \[0,1\]." Matching thresholds (ε) are only comparable across dimensions
//! after this step.

use knmatch_core::Dataset;

/// The per-dimension affine transform fitted by [`fit`].
#[derive(Debug, Clone, PartialEq)]
pub struct Normalizer {
    mins: Vec<f64>,
    scales: Vec<f64>, // 1 / (max - min), or 0 for constant dimensions
}

/// Fits a min–max normaliser on `ds`.
pub fn fit(ds: &Dataset) -> Normalizer {
    let d = ds.dims();
    let mut mins = vec![f64::INFINITY; d];
    let mut maxs = vec![f64::NEG_INFINITY; d];
    for (_, p) in ds.iter() {
        for (j, &v) in p.iter().enumerate() {
            mins[j] = mins[j].min(v);
            maxs[j] = maxs[j].max(v);
        }
    }
    let scales = mins
        .iter()
        .zip(&maxs)
        .map(|(&lo, &hi)| if hi > lo { 1.0 / (hi - lo) } else { 0.0 })
        .collect();
    Normalizer { mins, scales }
}

impl Normalizer {
    /// Dimensionality the normaliser was fitted on.
    pub fn dims(&self) -> usize {
        self.mins.len()
    }

    /// Transforms one point in place.
    ///
    /// # Panics
    ///
    /// Panics when `point.len()` differs from the fitted dimensionality.
    pub fn apply_in_place(&self, point: &mut [f64]) {
        assert_eq!(point.len(), self.dims(), "dimensionality mismatch");
        for ((v, &lo), &s) in point.iter_mut().zip(&self.mins).zip(&self.scales) {
            *v = if s == 0.0 {
                0.0
            } else {
                ((*v - lo) * s).clamp(0.0, 1.0)
            };
        }
    }

    /// Returns a normalised copy of `ds`.
    pub fn apply(&self, ds: &Dataset) -> Dataset {
        let mut out = Dataset::with_capacity(ds.dims(), ds.len()).expect("dims >= 1");
        let mut row = vec![0.0f64; ds.dims()];
        for (_, p) in ds.iter() {
            row.copy_from_slice(p);
            self.apply_in_place(&mut row);
            out.push(&row).expect("normalised rows are finite");
        }
        out
    }
}

/// Fits and applies in one step.
pub fn normalize(ds: &Dataset) -> Dataset {
    fit(ds).apply(ds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_to_unit_interval() {
        let ds = Dataset::from_rows(&[vec![10.0, -5.0], vec![20.0, 5.0], vec![15.0, 0.0]]).unwrap();
        let out = normalize(&ds);
        assert_eq!(out.point(0), &[0.0, 0.0]);
        assert_eq!(out.point(1), &[1.0, 1.0]);
        assert_eq!(out.point(2), &[0.5, 0.5]);
    }

    #[test]
    fn constant_dimension_maps_to_zero() {
        let ds = Dataset::from_rows(&[vec![7.0, 1.0], vec![7.0, 3.0]]).unwrap();
        let out = normalize(&ds);
        assert_eq!(out.point(0)[0], 0.0);
        assert_eq!(out.point(1)[0], 0.0);
        assert_eq!(out.point(1)[1], 1.0);
    }

    #[test]
    fn apply_to_query_clamps_out_of_range() {
        let ds = Dataset::from_rows(&[vec![0.0], vec![10.0]]).unwrap();
        let norm = fit(&ds);
        let mut q = [15.0];
        norm.apply_in_place(&mut q);
        assert_eq!(q[0], 1.0);
        let mut q = [-3.0];
        norm.apply_in_place(&mut q);
        assert_eq!(q[0], 0.0);
    }

    #[test]
    fn preserves_ordering_within_dimension() {
        let ds = Dataset::from_rows(&[vec![3.0], vec![1.0], vec![2.0]]).unwrap();
        let out = normalize(&ds);
        assert!(out.point(1)[0] < out.point(2)[0]);
        assert!(out.point(2)[0] < out.point(0)[0]);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_width_panics() {
        let ds = Dataset::from_rows(&[vec![0.0, 1.0]]).unwrap();
        fit(&ds).apply_in_place(&mut [0.0]);
    }
}
