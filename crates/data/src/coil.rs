//! A COIL-100-like image-feature dataset with planted partial similarities.
//!
//! Section 5.1.1 of the paper extracts 54 features (colour histograms,
//! moments of area, …) from the 100 COIL images and queries with image 42
//! (a red boat). The headline observations are:
//!
//! * image **78** (another boat, different colour) appears in the
//!   k-n-match answers for many `n` but **not** even in the 20 nearest
//!   neighbours — one aspect (colour) dominates the aggregate distance;
//! * image **3** (a yellow, bigger variant) appears for only one `n` —
//!   a partial match that is easy to miss with a bad `n`;
//! * the kNN top-10 is {13, 35, 36, 40, 42, 64, 85, 88, 94, 96}: the query,
//!   three globally similar objects, two single/double-aspect matches, and
//!   four objects that are merely "moderately off everywhere" —
//!   aggregation-friendly without matching any aspect.
//!
//! Without the original image files, we plant exactly that structure: 54
//! features in three 18-dimensional aspect blocks (colour / texture /
//! shape), a recipe table fixing how each special object relates to the
//! query per aspect, and random prototypes for everything else. The
//! query's colour block sits at one end of the feature range (a saturated
//! hue) so a "same boat, different colour" object can be placed at the
//! other end, reproducing the dominance effect. Distance tiers are
//! calibrated so the kNN top-10 membership mirrors Table 3 by
//! construction.

use knmatch_core::Dataset;

use crate::rng::{clamp01, normal, seeded, Rng64};

/// Number of objects in the COIL-like dataset.
pub const COIL_OBJECTS: usize = 100;

/// Number of features per object (three 18-dimensional aspect blocks).
pub const COIL_FEATURES: usize = 54;

/// Width of one aspect block.
pub const ASPECT_WIDTH: usize = 18;

/// Zero-based id of the query object (the paper's image 42).
pub const COIL_QUERY_ID: u32 = 41;

/// The three aspect blocks as feature ranges: colour, texture, shape.
pub fn aspect_blocks() -> [std::ops::Range<usize>; 3] {
    [
        0..ASPECT_WIDTH,
        ASPECT_WIDTH..2 * ASPECT_WIDTH,
        2 * ASPECT_WIDTH..COIL_FEATURES,
    ]
}

/// How close a planted object is to the query within one aspect block.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Closeness {
    /// Essentially identical (within sensor noise).
    Exact,
    /// Clearly similar but not identical.
    Close,
    /// Moderate offset with per-dimension magnitude in the given range.
    Mid(f64, f64),
    /// The opposite end of the feature range (a different saturated
    /// colour): placed absolutely, not relative to the query.
    Opposite,
}

impl Closeness {
    /// The planted feature value for a query value `q`.
    fn place(self, rng: &mut Rng64, q: f64) -> f64 {
        match self {
            Closeness::Exact => clamp01(q + normal(rng, 0.0, 0.004)),
            Closeness::Close => clamp01(q + normal(rng, 0.0, 0.03)),
            Closeness::Mid(lo, hi) => {
                let mag = rng.range_f64(lo, hi);
                let sign = if rng.next_bool() { 1.0 } else { -1.0 };
                let v = q + sign * mag;
                // Keep the full offset magnitude: flip direction rather
                // than clamp when the boundary would swallow it.
                if (0.0..=1.0).contains(&v) {
                    v
                } else {
                    clamp01(q - sign * mag)
                }
            }
            Closeness::Opposite => rng.range_f64(0.85, 0.95),
        }
    }
}

/// The planted recipe: (0-based object id, [colour, texture, shape]).
///
/// Distance tiers (Euclidean, approximate): globally-similar trio ≈ 0.1,
/// shape-only 39 ≈ 0.78, colour+texture 35 ≈ 0.85, decoys ≈ 0.88,
/// single-aspect 26/37 and "yellow bigger" 2 ≈ 1.4, boat 77 ≈ 3.4,
/// random objects ≳ 2.5 — so the kNN top-10 is exactly
/// {41, 34, 93, 95, 39, 35, 12, 63, 84, 87} (the paper's Table 3 ids
/// shifted to 0-based), and 77 is outside even the top 20.
fn recipes() -> Vec<(u32, [Closeness; 3])> {
    use Closeness::*;
    let single_mid = Mid(0.18, 0.28);
    vec![
        // Image 78: same boat, different colour — the paper's star witness.
        (77, [Opposite, Exact, Exact]),
        // Image 36: matches the query's colour and texture exactly (intro's
        // "picture a" example), shape moderately off.
        (35, [Exact, Exact, Mid(0.15, 0.25)]),
        // Image 40: shape matches exactly, rest lightly off — close enough
        // in aggregate to also make the kNN list (as in Table 3).
        (39, [Mid(0.10, 0.16), Mid(0.10, 0.16), Exact]),
        // Image 3: yellow, bigger version — shape close, rest mid.
        (2, [single_mid, single_mid, Close]),
        // Images 35, 94, 96: globally similar — both kNN and k-n-match
        // find them.
        (34, [Close, Close, Close]),
        (93, [Close, Close, Close]),
        (95, [Close, Close, Close]),
        // Images 13, 64, 85, 88: moderately off in EVERY dimension; their
        // aggregate distance is small so kNN ranks them, but no aspect
        // matches.
        (12, [Mid(0.10, 0.14), Mid(0.10, 0.14), Mid(0.10, 0.14)]),
        (63, [Mid(0.10, 0.14), Mid(0.10, 0.14), Mid(0.10, 0.14)]),
        (84, [Mid(0.10, 0.14), Mid(0.10, 0.14), Mid(0.10, 0.14)]),
        (87, [Mid(0.10, 0.14), Mid(0.10, 0.14), Mid(0.10, 0.14)]),
        // Partial matches for other n values (Table 2 shows 27, 38, 10, …).
        (26, [Exact, single_mid, single_mid]), // image 27: colour-only
        (37, [single_mid, Exact, single_mid]), // image 38: texture-only
        (9, [Close, single_mid, Close]),       // image 10
    ]
}

/// Generates the COIL-like dataset (100 × 54, values in `[0, 1]`).
///
/// Object [`COIL_QUERY_ID`] is the query image; use its row as the query
/// point. The recipe objects relate to it per aspect; all other objects get
/// independent uniform feature vectors.
pub fn coil_like(seed: u64) -> Dataset {
    let mut rng = seeded(seed);
    // The query's colour block is a saturated hue at the low end of the
    // range; texture and shape sit mid-range.
    let mut query: Vec<f64> = Vec::with_capacity(COIL_FEATURES);
    for _ in 0..ASPECT_WIDTH {
        query.push(rng.range_f64(0.05, 0.15));
    }
    for _ in ASPECT_WIDTH..COIL_FEATURES {
        query.push(rng.range_f64(0.30, 0.70));
    }

    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(COIL_OBJECTS);
    for _ in 0..COIL_OBJECTS {
        rows.push((0..COIL_FEATURES).map(|_| rng.next_f64()).collect());
    }
    rows[COIL_QUERY_ID as usize] = query.clone();

    for (pid, aspects) in recipes() {
        let mut row = vec![0.0f64; COIL_FEATURES];
        for (aspect, range) in aspect_blocks().into_iter().enumerate() {
            for j in range {
                row[j] = aspects[aspect].place(&mut rng, query[j]);
            }
        }
        rows[pid as usize] = row;
    }

    Dataset::from_rows(&rows).expect("generated rows are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use knmatch_core::{k_n_match_scan, k_nearest, Euclidean};

    fn setup() -> (Dataset, Vec<f64>) {
        let ds = coil_like(42);
        let q = ds.point(COIL_QUERY_ID).to_vec();
        (ds, q)
    }

    #[test]
    fn shape() {
        let (ds, _) = setup();
        assert_eq!(ds.len(), COIL_OBJECTS);
        assert_eq!(ds.dims(), COIL_FEATURES);
        for (_, p) in ds.iter() {
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn boat_78_found_by_nmatch_not_by_knn() {
        let (ds, q) = setup();
        // Not within the 20 nearest neighbours (paper: "we did not find
        // image 78 in the kNN result set even when finding 20 NNs").
        let nn = k_nearest(&ds, &q, 21, &Euclidean).unwrap();
        assert!(
            !nn.iter().any(|e| e.pid == 77),
            "planted colour gap must push image 78 out of the top 20"
        );
        // But the 4-30-match finds it (36 of its dims are near-exact).
        let m = k_n_match_scan(&ds, &q, 4, 30).unwrap();
        assert!(
            m.contains(77),
            "image 78 must be a 30-match answer: {:?}",
            m.ids()
        );
    }

    #[test]
    fn knn_top10_matches_table3_membership() {
        let (ds, q) = setup();
        let nn = k_nearest(&ds, &q, 10, &Euclidean).unwrap();
        let mut ids: Vec<u32> = nn.iter().map(|e| e.pid).collect();
        ids.sort_unstable();
        // Paper Table 3 (1-based): 13, 35, 36, 40, 42, 64, 85, 88, 94, 96.
        assert_eq!(ids, vec![12, 34, 35, 39, 41, 63, 84, 87, 93, 95]);
    }

    #[test]
    fn colour_only_match_appears_at_small_n() {
        let (ds, q) = setup();
        // n = 15 < 18: single-aspect exact matches can win.
        let m = k_n_match_scan(&ds, &q, 4, 15).unwrap();
        let aspect_matchers = [26u32, 35, 37, 39, 77];
        let hits = m
            .ids()
            .iter()
            .filter(|p| aspect_matchers.contains(p))
            .count();
        assert!(
            hits >= 3,
            "aspect matches should dominate at n=15: {:?}",
            m.ids()
        );
        // And the decoys that kNN loved must NOT be here.
        for d in [12u32, 63, 84, 87] {
            assert!(!m.contains(d), "decoy {d} has no matching aspect");
        }
    }

    #[test]
    fn query_is_its_own_best_match() {
        let (ds, q) = setup();
        for n in [5, 20, 40, 54] {
            let m = k_n_match_scan(&ds, &q, 1, n).unwrap();
            assert_eq!(m.ids(), vec![COIL_QUERY_ID], "n={n}");
        }
    }

    #[test]
    fn yellow_variant_is_a_partial_match_only() {
        let (ds, q) = setup();
        // Image 3 (id 2): close in shape only → it ranks behind the exact
        // aspect matchers and the globally-similar trio, but ahead of the
        // decoys for n within its shape block — the paper's "appears only
        // once, easy to miss with a bad n" witness. It is no kNN answer.
        let nn = k_nearest(&ds, &q, 10, &Euclidean).unwrap();
        assert!(!nn.iter().any(|e| e.pid == 2));
        let m = k_n_match_scan(&ds, &q, 11, 16).unwrap();
        assert!(
            m.contains(2),
            "shape-close object should appear for n≈16: {:?}",
            m.ids()
        );
        for d in [12u32, 63, 84, 87] {
            assert!(
                !m.contains(d),
                "decoy {d} must rank behind the shape-close object"
            );
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(coil_like(1), coil_like(1));
        assert_ne!(coil_like(1), coil_like(2));
    }
}
