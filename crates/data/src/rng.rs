//! Seeded randomness helpers shared by all generators.
//!
//! Every generator takes an explicit `u64` seed so each experiment is
//! reproducible bit-for-bit; the Box–Muller transform supplies Gaussians
//! without pulling in a distributions crate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG for the given seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// One standard-normal sample via Box–Muller.
pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    // Avoid ln(0).
    let u1: f64 = loop {
        let u: f64 = rng.gen();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A normal sample with the given mean and standard deviation.
pub fn normal<R: Rng>(rng: &mut R, mean: f64, std: f64) -> f64 {
    mean + std * standard_normal(rng)
}

/// Clamps into the unit interval (all experiment data is normalised to
/// [0, 1], as in the paper's Section 5 setup).
pub fn clamp01(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let a: Vec<f64> = {
            let mut r = seeded(42);
            (0..5).map(|_| r.gen::<f64>()).collect()
        };
        let b: Vec<f64> = {
            let mut r = seeded(42);
            (0..5).map(|_| r.gen::<f64>()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<f64> = {
            let mut r = seeded(43);
            (0..5).map(|_| r.gen::<f64>()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn normal_moments_are_roughly_right() {
        let mut r = seeded(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 2.0, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn clamp01_bounds() {
        assert_eq!(clamp01(-0.3), 0.0);
        assert_eq!(clamp01(1.3), 1.0);
        assert_eq!(clamp01(0.5), 0.5);
    }
}
