//! Seeded randomness helpers shared by all generators.
//!
//! Every generator takes an explicit `u64` seed so each experiment is
//! reproducible bit-for-bit. The generator is an in-repo xoshiro256++
//! (Blackman & Vigna) seeded through SplitMix64 — no external crates, so
//! the workspace builds offline — and the Box–Muller transform supplies
//! Gaussians without pulling in a distributions crate.

/// A small, fast, seeded PRNG: xoshiro256++ with SplitMix64 state
/// expansion.
///
/// Not cryptographic; statistically solid for workload generation and
/// query sampling. The stream for a given seed is stable across platforms
/// and releases (experiment outputs depend on it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator from a seed, expanding it with SplitMix64 so
    /// that similar seeds yield unrelated streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng64 {
            s: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// The next 64 uniformly random bits (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform sample from `[0, 1)` with 53 random mantissa bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A fair coin flip.
    pub fn next_bool(&mut self) -> bool {
        // Use the high bit; xoshiro's low bits are its weakest.
        self.next_u64() >> 63 == 1
    }

    /// A uniform sample from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when `lo >= hi` or either bound is non-finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo < hi && lo.is_finite() && hi.is_finite(),
            "bad range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.next_f64()
    }

    /// A uniform sample from the half-open integer range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn range_usize(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        let span = (range.end - range.start) as u64;
        // Debiased by rejection: retry while the draw falls in the final
        // partial span (at most one expected retry even for huge spans).
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let v = self.next_u64();
            if v < zone {
                return range.start + (v % span) as usize;
            }
        }
    }

    /// An unbiased Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.range_usize(0..i + 1);
            xs.swap(i, j);
        }
    }
}

/// A deterministic RNG for the given seed.
pub fn seeded(seed: u64) -> Rng64 {
    Rng64::new(seed)
}

/// One standard-normal sample via Box–Muller.
pub fn standard_normal(rng: &mut Rng64) -> f64 {
    // Avoid ln(0).
    let u1: f64 = loop {
        let u = rng.next_f64();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A normal sample with the given mean and standard deviation.
pub fn normal(rng: &mut Rng64, mean: f64, std: f64) -> f64 {
    mean + std * standard_normal(rng)
}

/// Clamps into the unit interval (all experiment data is normalised to
/// [0, 1], as in the paper's Section 5 setup).
pub fn clamp01(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let a: Vec<f64> = {
            let mut r = seeded(42);
            (0..5).map(|_| r.next_f64()).collect()
        };
        let b: Vec<f64> = {
            let mut r = seeded(42);
            (0..5).map(|_| r.next_f64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<f64> = {
            let mut r = seeded(43);
            (0..5).map(|_| r.next_f64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn unit_floats_are_in_range_and_cover() {
        let mut r = seeded(1);
        let n = 10_000;
        let mut mean = 0.0;
        for _ in 0..n {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            mean += v;
        }
        mean /= n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = seeded(2);
        for _ in 0..1000 {
            let v = r.range_f64(-0.25, 0.75);
            assert!((-0.25..0.75).contains(&v));
            let i = r.range_usize(3..17);
            assert!((3..17).contains(&i));
        }
        // A width-1 integer range is the only value.
        assert_eq!(r.range_usize(5..6), 5);
    }

    #[test]
    fn bools_are_balanced() {
        let mut r = seeded(3);
        let heads = (0..10_000).filter(|_| r.next_bool()).count();
        assert!((4_500..5_500).contains(&heads), "{heads} heads");
    }

    #[test]
    fn shuffle_is_a_permutation_and_seeded() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b = a.clone();
        seeded(9).shuffle(&mut a);
        seeded(9).shuffle(&mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        let mut c: Vec<u32> = (0..50).collect();
        seeded(10).shuffle(&mut c);
        assert_ne!(a, c);
    }

    #[test]
    fn normal_moments_are_roughly_right() {
        let mut r = seeded(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 2.0, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn clamp01_bounds() {
        assert_eq!(clamp01(-0.3), 0.0);
        assert_eq!(clamp01(1.3), 1.0);
        assert_eq!(clamp01(0.5), 0.5);
    }
}
