//! # knmatch-data
//!
//! Workload generators and dataset utilities for the k-n-match
//! reproduction. Every generator is seeded and deterministic.
//!
//! The paper evaluates on resources we cannot redistribute; each has a
//! synthetic stand-in that preserves the property the experiment exercises
//! (see DESIGN.md §3 for the substitution table):
//!
//! | paper resource | stand-in | preserved property |
//! |---|---|---|
//! | uniform synthetic (100k × d) | [`uniform`] | baseline workload |
//! | UCI ionosphere/segmentation/wdbc/glass/iris | [`labelled_clusters`] via [`uci_standins`] | labelled clusters + noisy dimensions |
//! | UCI KDD Co-occurrence Texture (68040 × 16) | [`skewed`] / [`texture_standin`] | per-dimension skew |
//! | COIL-100 image features (100 × 54) | [`coil_like`] | planted partial similarities |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clusters;
pub mod coil;
pub mod csv;
pub mod normalize;
pub mod rng;
pub mod synthetic;

pub use clusters::{labelled_clusters, uci_standins, ClusterSpec, LabelledDataset, UciStandin};
pub use coil::{aspect_blocks, coil_like, COIL_FEATURES, COIL_OBJECTS, COIL_QUERY_ID};
pub use csv::{
    dataset_from_csv, dataset_to_csv, labelled_from_csv, labelled_to_csv, load_dataset,
    save_dataset, CsvError,
};
pub use normalize::{fit, normalize, Normalizer};
pub use synthetic::{skewed, texture_standin, uniform};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// CSV round-trips any finite dataset exactly (shortest-float
        /// formatting is lossless for f64).
        #[test]
        fn csv_roundtrip(rows in (1usize..6).prop_flat_map(|d| {
            proptest::collection::vec(
                proptest::collection::vec(-1e6f64..1e6, d), 1..20)
        })) {
            let ds = knmatch_core::Dataset::from_rows(&rows).unwrap();
            let back = dataset_from_csv(&dataset_to_csv(&ds)).unwrap();
            prop_assert_eq!(back, ds);
        }

        /// Normalisation maps into [0, 1] and preserves per-dimension order.
        #[test]
        fn normalize_properties(rows in proptest::collection::vec(
            proptest::collection::vec(-1e3f64..1e3, 3), 2..30)
        ) {
            let ds = knmatch_core::Dataset::from_rows(&rows).unwrap();
            let out = normalize(&ds);
            for (_, p) in out.iter() {
                prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
            }
            for dim in 0..3 {
                for i in 0..ds.len() {
                    for j in (i + 1)..ds.len() {
                        let a = ds.coord(i as u32, dim);
                        let b = ds.coord(j as u32, dim);
                        let na = out.coord(i as u32, dim);
                        let nb = out.coord(j as u32, dim);
                        if a < b {
                            prop_assert!(na <= nb);
                        } else if a > b {
                            prop_assert!(na >= nb);
                        }
                    }
                }
            }
        }

        /// Generators honour their requested shapes for arbitrary sizes.
        #[test]
        fn generator_shapes(c in 1usize..200, d in 1usize..10, seed: u64) {
            let u = uniform(c, d, seed);
            prop_assert_eq!(u.len(), c);
            prop_assert_eq!(u.dims(), d);
            let s = skewed(c, d, seed);
            prop_assert_eq!(s.len(), c);
            for (_, p) in s.iter() {
                prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
            }
        }
    }
}
