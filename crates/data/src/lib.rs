//! # knmatch-data
//!
//! Workload generators and dataset utilities for the k-n-match
//! reproduction. Every generator is seeded and deterministic.
//!
//! The paper evaluates on resources we cannot redistribute; each has a
//! synthetic stand-in that preserves the property the experiment exercises
//! (see DESIGN.md §3 for the substitution table):
//!
//! | paper resource | stand-in | preserved property |
//! |---|---|---|
//! | uniform synthetic (100k × d) | [`uniform`] | baseline workload |
//! | UCI ionosphere/segmentation/wdbc/glass/iris | [`labelled_clusters`] via [`uci_standins`] | labelled clusters + noisy dimensions |
//! | UCI KDD Co-occurrence Texture (68040 × 16) | [`skewed`] / [`texture_standin`] | per-dimension skew |
//! | COIL-100 image features (100 × 54) | [`coil_like`] | planted partial similarities |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clusters;
pub mod coil;
pub mod csv;
pub mod normalize;
pub mod rng;
pub mod synthetic;

pub use clusters::{labelled_clusters, uci_standins, ClusterSpec, LabelledDataset, UciStandin};
pub use coil::{aspect_blocks, coil_like, COIL_FEATURES, COIL_OBJECTS, COIL_QUERY_ID};
pub use csv::{
    dataset_from_csv, dataset_to_csv, labelled_from_csv, labelled_to_csv, load_dataset,
    save_dataset, CsvError,
};
pub use normalize::{fit, normalize, Normalizer};
pub use synthetic::{skewed, texture_standin, uniform};

#[cfg(test)]
mod randomized_tests {
    //! Seeded randomized sweeps standing in for the former proptest
    //! suite (external crates cannot be fetched in the offline build).

    use super::*;
    use crate::rng::seeded;

    /// CSV round-trips any finite dataset exactly (shortest-float
    /// formatting is lossless for f64).
    #[test]
    fn csv_roundtrip() {
        let mut rng = seeded(0xDA7A_0001);
        for _ in 0..128 {
            let d = rng.range_usize(1..6);
            let c = rng.range_usize(1..20);
            let rows: Vec<Vec<f64>> = (0..c)
                .map(|_| (0..d).map(|_| rng.range_f64(-1e6, 1e6)).collect())
                .collect();
            let ds = knmatch_core::Dataset::from_rows(&rows).unwrap();
            let back = dataset_from_csv(&dataset_to_csv(&ds)).unwrap();
            assert_eq!(back, ds);
        }
    }

    /// Normalisation maps into [0, 1] and preserves per-dimension order.
    #[test]
    fn normalize_properties() {
        let mut rng = seeded(0xDA7A_0002);
        for _ in 0..64 {
            let c = rng.range_usize(2..30);
            let rows: Vec<Vec<f64>> = (0..c)
                .map(|_| (0..3).map(|_| rng.range_f64(-1e3, 1e3)).collect())
                .collect();
            let ds = knmatch_core::Dataset::from_rows(&rows).unwrap();
            let out = normalize(&ds);
            for (_, p) in out.iter() {
                assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
            }
            for dim in 0..3 {
                for i in 0..ds.len() {
                    for j in (i + 1)..ds.len() {
                        let a = ds.coord(i as u32, dim);
                        let b = ds.coord(j as u32, dim);
                        let na = out.coord(i as u32, dim);
                        let nb = out.coord(j as u32, dim);
                        if a < b {
                            assert!(na <= nb);
                        } else if a > b {
                            assert!(na >= nb);
                        }
                    }
                }
            }
        }
    }

    /// Generators honour their requested shapes for arbitrary sizes.
    #[test]
    fn generator_shapes() {
        let mut rng = seeded(0xDA7A_0003);
        for _ in 0..64 {
            let c = rng.range_usize(1..200);
            let d = rng.range_usize(1..10);
            let seed = rng.next_u64();
            let u = uniform(c, d, seed);
            assert_eq!(u.len(), c);
            assert_eq!(u.dims(), d);
            let s = skewed(c, d, seed);
            assert_eq!(s.len(), c);
            for (_, p) in s.iter() {
                assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
            }
        }
    }
}
