//! Synthetic workloads: the uniform datasets of Section 5.2 and the skewed
//! stand-in for the UCI KDD Co-occurrence Texture dataset.

use knmatch_core::Dataset;

use crate::rng::seeded;

/// A uniformly distributed dataset with coordinates in `[0, 1)` — the
/// paper's synthetic workload ("all uniform data sets contain 100,000
/// points").
pub fn uniform(cardinality: usize, dims: usize, seed: u64) -> Dataset {
    let mut rng = seeded(seed);
    let mut ds = Dataset::with_capacity(dims, cardinality).expect("dims >= 1");
    let mut row = vec![0.0f64; dims];
    for _ in 0..cardinality {
        for v in row.iter_mut() {
            *v = rng.next_f64();
        }
        ds.push(&row).expect("generated rows are valid");
    }
    ds
}

/// A skewed, correlated dataset standing in for the Co-occurrence Texture
/// data (68,040 × 16).
///
/// Co-occurrence texture features are heavily skewed *and* correlated
/// across dimensions (they are moments of one underlying co-occurrence
/// matrix). Each point draws a latent intensity; every dimension mixes the
/// latent with independent noise and raises it to a random power-law
/// exponent, giving skewed marginals and strong inter-dimension
/// correlation. The paper attributes AD's "especially good performance" on
/// Texture to exactly this (Figure 15: only ~25% of attributes retrieved
/// even at `n1 = d`): skew concentrates the data, so the k-n-match ε stays
/// tiny and the AD cursors stop early.
pub fn skewed(cardinality: usize, dims: usize, seed: u64) -> Dataset {
    let mut rng = seeded(seed);
    let exponents: Vec<f64> = (0..dims).map(|_| rng.range_f64(2.0, 4.0)).collect();
    let mut ds = Dataset::with_capacity(dims, cardinality).expect("dims >= 1");
    let mut row = vec![0.0f64; dims];
    for _ in 0..cardinality {
        let latent = rng.next_f64();
        for (v, e) in row.iter_mut().zip(&exponents) {
            let mixed = 0.8 * latent + 0.2 * rng.next_f64();
            *v = mixed.powf(*e);
        }
        ds.push(&row).expect("generated rows are valid");
    }
    ds
}

/// The paper's Texture-shaped dataset: 68,040 points, 16 dimensions.
pub fn texture_standin(seed: u64) -> Dataset {
    skewed(68_040, 16, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_shape_and_range() {
        let ds = uniform(500, 8, 1);
        assert_eq!(ds.len(), 500);
        assert_eq!(ds.dims(), 8);
        for (_, p) in ds.iter() {
            assert!(p.iter().all(|&v| (0.0..1.0).contains(&v)));
        }
    }

    #[test]
    fn uniform_is_seeded() {
        assert_eq!(uniform(10, 3, 5), uniform(10, 3, 5));
        assert_ne!(uniform(10, 3, 5), uniform(10, 3, 6));
    }

    #[test]
    fn uniform_covers_the_space() {
        // Mean of each dimension near 0.5.
        let ds = uniform(4000, 4, 9);
        for dim in 0..4 {
            let mean: f64 = ds.iter().map(|(_, p)| p[dim]).sum::<f64>() / ds.len() as f64;
            assert!((mean - 0.5).abs() < 0.03, "dim {dim} mean {mean}");
        }
    }

    #[test]
    fn skewed_is_skewed() {
        let ds = skewed(4000, 4, 11);
        // Power-law marginals concentrate mass near 0: median well below
        // 0.5 in every dimension.
        for dim in 0..4 {
            let mut v: Vec<f64> = ds.iter().map(|(_, p)| p[dim]).collect();
            v.sort_unstable_by(f64::total_cmp);
            let median = v[v.len() / 2];
            assert!(median < 0.3, "dim {dim} median {median}");
            assert!(v.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn texture_standin_shape() {
        // Shape-only check with a small equivalent to keep tests fast.
        let ds = skewed(680, 16, 3);
        assert_eq!(ds.dims(), 16);
        assert_eq!(ds.len(), 680);
    }
}
