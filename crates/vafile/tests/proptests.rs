//! Property tests: VA-file bounds must be sound and the two-phase
//! algorithm must agree with the exact oracle on every random instance.

use knmatch_core::Dataset;
use knmatch_storage::{BufferPool, HeapFile, MemStore};
use knmatch_vafile::{frequent_k_n_match_va, k_n_match_va, k_nearest_va, VaFile};
use proptest::prelude::*;

fn db_and_query() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>, u8)> {
    (1usize..=5, 2usize..=30, 1u8..=8).prop_flat_map(|(d, c, bits)| {
        (
            proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, d), c),
            proptest::collection::vec(0.0f64..1.0, d),
            Just(bits),
        )
    })
}

fn all_diffs_distinct(rows: &[Vec<f64>], query: &[f64]) -> bool {
    let mut diffs: Vec<f64> = rows
        .iter()
        .flat_map(|p| p.iter().zip(query).map(|(a, b)| (a - b).abs()))
        .collect();
    diffs.sort_unstable_by(f64::total_cmp);
    diffs.windows(2).all(|w| w[0] < w[1])
}

fn setup(rows: &[Vec<f64>], bits: u8) -> (Dataset, VaFile, HeapFile, BufferPool<MemStore>) {
    let ds = Dataset::from_rows(rows).unwrap();
    let mut store = MemStore::new();
    let heap = HeapFile::build(&mut store, &ds);
    let va = VaFile::build(&mut store, &ds, bits);
    (ds, va, heap, BufferPool::new(store, 64))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Per-dimension cell bounds always bracket the true difference.
    #[test]
    fn diff_bounds_are_sound((rows, query, bits) in db_and_query()) {
        let (ds, va, _, _) = setup(&rows, bits);
        for (_, p) in ds.iter() {
            for (dim, (&v, &q)) in p.iter().zip(&query).enumerate() {
                let cell = va.cell_of(dim, v);
                let (lb, ub) = va.diff_bounds(dim, cell, q);
                let true_diff = (v - q).abs();
                prop_assert!(lb <= true_diff + 1e-12, "lb {lb} > {true_diff}");
                prop_assert!(ub + 1e-12 >= true_diff, "ub {ub} < {true_diff}");
                prop_assert!(lb <= ub + 1e-12);
            }
        }
    }

    /// The two-phase k-n-match returns exactly the oracle's answers.
    #[test]
    fn va_matches_oracle((rows, query, bits) in db_and_query()) {
        prop_assume!(all_diffs_distinct(&rows, &query));
        let (ds, va, heap, mut pool) = setup(&rows, bits);
        let c = rows.len();
        let d = query.len();
        let k = ((c + 1) / 2).max(1);
        for n in [1, (d + 1) / 2, d] {
            let out = k_n_match_va(&va, &heap, &mut pool, &query, k, n).unwrap();
            let oracle = knmatch_core::k_n_match_scan(&ds, &query, k, n).unwrap();
            prop_assert_eq!(out.result.ids(), oracle.ids(), "n={}", n);
            prop_assert!(out.refined >= k);
            prop_assert!(out.refined <= c);
        }
        let out = frequent_k_n_match_va(&va, &heap, &mut pool, &query, k, 1, d).unwrap();
        let oracle = knmatch_core::frequent_k_n_match_scan(&ds, &query, k, 1, d).unwrap();
        prop_assert_eq!(out.result.ids(), oracle.ids());
    }

    /// The classic kNN VA-file returns exactly the Euclidean kNN.
    #[test]
    fn va_knn_matches_oracle((rows, query, bits) in db_and_query()) {
        let (ds, va, heap, mut pool) = setup(&rows, bits);
        let k = ((rows.len() + 1) / 2).max(1);
        let out = k_nearest_va(&va, &heap, &mut pool, &query, k).unwrap();
        let oracle = knmatch_core::k_nearest(&ds, &query, k, &knmatch_core::Euclidean).unwrap();
        // Distances must agree even when id ties differ.
        for (a, b) in out.result.iter().zip(&oracle) {
            prop_assert!((a.dist - b.dist).abs() < 1e-9);
        }
    }

    /// Finer quantisation never refines more points.
    #[test]
    fn finer_bits_refine_no_more(
        (rows, query, _) in db_and_query(),
        coarse in 1u8..=4,
    ) {
        let fine = coarse + 4;
        let k = ((rows.len() + 1) / 2).max(1);
        let n = query.len();
        let (_, va_c, heap_c, mut pool_c) = setup(&rows, coarse);
        let out_c = k_n_match_va(&va_c, &heap_c, &mut pool_c, &query, k, n).unwrap();
        let (_, va_f, heap_f, mut pool_f) = setup(&rows, fine);
        let out_f = k_n_match_va(&va_f, &heap_f, &mut pool_f, &query, k, n).unwrap();
        prop_assert!(
            out_f.refined <= out_c.refined,
            "{} bits refined {} vs {} bits refined {}",
            fine, out_f.refined, coarse, out_c.refined
        );
    }
}
