//! Randomized tests: VA-file bounds must be sound and the two-phase
//! algorithm must agree with the exact oracle on every seeded random
//! instance (no external property-testing crate in the offline build).

use knmatch_core::Dataset;
use knmatch_data::rng::{seeded, Rng64};
use knmatch_storage::{BufferPool, HeapFile, MemStore};
use knmatch_vafile::{frequent_k_n_match_va, k_n_match_va, k_nearest_va, VaFile};

fn db_and_query(rng: &mut Rng64) -> (Vec<Vec<f64>>, Vec<f64>, u8) {
    let d = rng.range_usize(1..6);
    let c = rng.range_usize(2..31);
    let bits = rng.range_usize(1..9) as u8;
    let rows = (0..c)
        .map(|_| (0..d).map(|_| rng.next_f64()).collect())
        .collect();
    let query = (0..d).map(|_| rng.next_f64()).collect();
    (rows, query, bits)
}

fn all_diffs_distinct(rows: &[Vec<f64>], query: &[f64]) -> bool {
    let mut diffs: Vec<f64> = rows
        .iter()
        .flat_map(|p| p.iter().zip(query).map(|(a, b)| (a - b).abs()))
        .collect();
    diffs.sort_unstable_by(f64::total_cmp);
    diffs.windows(2).all(|w| w[0] < w[1])
}

fn setup(rows: &[Vec<f64>], bits: u8) -> (Dataset, VaFile, HeapFile, BufferPool<MemStore>) {
    let ds = Dataset::from_rows(rows).unwrap();
    let mut store = MemStore::new();
    let heap = HeapFile::build(&mut store, &ds);
    let va = VaFile::build(&mut store, &ds, bits);
    (ds, va, heap, BufferPool::new(store, 64))
}

/// Per-dimension cell bounds always bracket the true difference.
#[test]
fn diff_bounds_are_sound() {
    let mut rng = seeded(0x7AF1_0001);
    for _ in 0..192 {
        let (rows, query, bits) = db_and_query(&mut rng);
        let (ds, va, _, _) = setup(&rows, bits);
        for (_, p) in ds.iter() {
            for (dim, (&v, &q)) in p.iter().zip(&query).enumerate() {
                let cell = va.cell_of(dim, v);
                let (lb, ub) = va.diff_bounds(dim, cell, q);
                let true_diff = (v - q).abs();
                assert!(lb <= true_diff + 1e-12, "lb {lb} > {true_diff}");
                assert!(ub + 1e-12 >= true_diff, "ub {ub} < {true_diff}");
                assert!(lb <= ub + 1e-12);
            }
        }
    }
}

/// The two-phase k-n-match returns exactly the oracle's answers.
#[test]
fn va_matches_oracle() {
    let mut rng = seeded(0x7AF1_0002);
    for _ in 0..192 {
        let (rows, query, bits) = db_and_query(&mut rng);
        if !all_diffs_distinct(&rows, &query) {
            continue;
        }
        let (ds, va, heap, mut pool) = setup(&rows, bits);
        let c = rows.len();
        let d = query.len();
        let k = c.div_ceil(2).max(1);
        for n in [1, d.div_ceil(2), d] {
            let out = k_n_match_va(&va, &heap, &mut pool, &query, k, n).unwrap();
            let oracle = knmatch_core::k_n_match_scan(&ds, &query, k, n).unwrap();
            assert_eq!(out.result.ids(), oracle.ids(), "n={n}");
            assert!(out.refined >= k);
            assert!(out.refined <= c);
        }
        let out = frequent_k_n_match_va(&va, &heap, &mut pool, &query, k, 1, d).unwrap();
        let oracle = knmatch_core::frequent_k_n_match_scan(&ds, &query, k, 1, d).unwrap();
        assert_eq!(out.result.ids(), oracle.ids());
    }
}

/// The classic kNN VA-file returns exactly the Euclidean kNN.
#[test]
fn va_knn_matches_oracle() {
    let mut rng = seeded(0x7AF1_0003);
    for _ in 0..192 {
        let (rows, query, bits) = db_and_query(&mut rng);
        let (ds, va, heap, mut pool) = setup(&rows, bits);
        let k = rows.len().div_ceil(2).max(1);
        let out = k_nearest_va(&va, &heap, &mut pool, &query, k).unwrap();
        let oracle = knmatch_core::k_nearest(&ds, &query, k, &knmatch_core::Euclidean).unwrap();
        // Distances must agree even when id ties differ.
        for (a, b) in out.result.iter().zip(&oracle) {
            assert!((a.dist - b.dist).abs() < 1e-9);
        }
    }
}

/// Finer quantisation never refines more points.
#[test]
fn finer_bits_refine_no_more() {
    let mut rng = seeded(0x7AF1_0004);
    for _ in 0..192 {
        let (rows, query, _) = db_and_query(&mut rng);
        let coarse = rng.range_usize(1..5) as u8;
        let fine = coarse + 4;
        let k = rows.len().div_ceil(2).max(1);
        let n = query.len();
        let (_, va_c, heap_c, mut pool_c) = setup(&rows, coarse);
        let out_c = k_n_match_va(&va_c, &heap_c, &mut pool_c, &query, k, n).unwrap();
        let (_, va_f, heap_f, mut pool_f) = setup(&rows, fine);
        let out_f = k_n_match_va(&va_f, &heap_f, &mut pool_f, &query, k, n).unwrap();
        assert!(
            out_f.refined <= out_c.refined,
            "{fine} bits refined {} vs {coarse} bits refined {}",
            out_f.refined,
            out_c.refined
        );
    }
}
