//! The vector-approximation file (Weber, Schek & Blott, VLDB'98 — the
//! paper's reference \[21\]).
//!
//! Each coordinate is quantised to a `b`-bit cell index (the paper's
//! adaptation uses 8 bits, making the VA-file a fraction of the data size).
//! The approximation rows are stored sequentially on pages so phase one of
//! the two-phase algorithm is one sequential scan, and per-dimension cell
//! boundaries allow lower/upper-bounding the true difference `|p_i − q_i|`
//! without touching the point.

use knmatch_core::{Dataset, PointId};
use knmatch_storage::{BufferPool, PageStore, PAGE_SIZE};

/// A built VA-file: quantisation boundaries plus the page range holding the
/// approximation rows (one byte per dimension per point, `b ≤ 8`).
#[derive(Debug, Clone, PartialEq)]
pub struct VaFile {
    bits: u8,
    dims: usize,
    len: usize,
    /// `boundaries[dim]` has `cells + 1` ascending marks; cell `j` of `dim`
    /// spans `[boundaries[dim][j], boundaries[dim][j + 1]]`.
    boundaries: Vec<Vec<f64>>,
    rows_per_page: usize,
    base_page: usize,
}

impl VaFile {
    /// Quantises `ds` with `bits` bits per dimension (equi-width cells over
    /// each dimension's observed range) and appends the approximation pages
    /// to `store`.
    ///
    /// # Panics
    ///
    /// Panics when `bits` is 0 or above 8, when `ds` is empty, or when one
    /// row of approximations exceeds a page.
    pub fn build<S: PageStore>(store: &mut S, ds: &Dataset, bits: u8) -> Self {
        assert!((1..=8).contains(&bits), "bits per dimension must be 1..=8");
        assert!(!ds.is_empty(), "cannot approximate an empty dataset");
        let dims = ds.dims();
        let cells = 1usize << bits;

        // Observed per-dimension ranges.
        let mut mins = vec![f64::INFINITY; dims];
        let mut maxs = vec![f64::NEG_INFINITY; dims];
        for (_, p) in ds.iter() {
            for (j, &v) in p.iter().enumerate() {
                mins[j] = mins[j].min(v);
                maxs[j] = maxs[j].max(v);
            }
        }
        let boundaries: Vec<Vec<f64>> = (0..dims)
            .map(|j| {
                let lo = mins[j];
                let hi = if maxs[j] > mins[j] {
                    maxs[j]
                } else {
                    mins[j] + 1.0
                };
                (0..=cells)
                    .map(|c| lo + (hi - lo) * c as f64 / cells as f64)
                    .collect()
            })
            .collect();

        // Approximation rows are bit-packed: b bits per dimension,
        // byte-aligned per row — the 25%-of-a-32-bit-float footprint Weber
        // reports for b = 8.
        let row_bytes = (dims * bits as usize).div_ceil(8);
        let rows_per_page = PAGE_SIZE / row_bytes;
        assert!(
            rows_per_page >= 1,
            "a {row_bytes}-byte approximation row must fit one page"
        );
        let base_page = store.page_count();

        let mut page = [0u8; PAGE_SIZE];
        let mut slot = 0usize;
        let mut this = VaFile {
            bits,
            dims,
            len: ds.len(),
            boundaries,
            rows_per_page,
            base_page,
        };
        for (_, p) in ds.iter() {
            let off = slot * row_bytes;
            for (j, &v) in p.iter().enumerate() {
                pack_cell(&mut page[off..off + row_bytes], bits, j, this.cell_of(j, v));
            }
            slot += 1;
            if slot == rows_per_page {
                store.append_page(&page);
                page = [0u8; PAGE_SIZE];
                slot = 0;
            }
        }
        if slot > 0 {
            store.append_page(&page);
        }
        this.len = ds.len();
        this
    }

    /// Bytes per bit-packed approximation row.
    pub fn row_bytes(&self) -> usize {
        (self.dims * self.bits as usize).div_ceil(8)
    }

    /// Bits per dimension.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Number of cells per dimension (`2^bits`).
    pub fn cells(&self) -> usize {
        1usize << self.bits
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of approximated points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pages occupied by the approximation rows.
    pub fn total_pages(&self) -> usize {
        self.len.div_ceil(self.rows_per_page)
    }

    /// First page inside the store.
    pub fn base_page(&self) -> usize {
        self.base_page
    }

    /// The cell index of value `v` in `dim`.
    pub fn cell_of(&self, dim: usize, v: f64) -> u8 {
        let marks = &self.boundaries[dim];
        let lo = marks[0];
        let hi = *marks.last().expect("boundaries non-empty");
        let cells = self.cells();
        let raw = ((v - lo) / (hi - lo) * cells as f64).floor();
        (raw.clamp(0.0, (cells - 1) as f64)) as u8
    }

    /// The value range `[lo, hi]` of cell `cell` in `dim`.
    pub fn cell_bounds(&self, dim: usize, cell: u8) -> (f64, f64) {
        let marks = &self.boundaries[dim];
        (marks[cell as usize], marks[cell as usize + 1])
    }

    /// Lower and upper bounds of `|p_i − q_i|` given only `p_i`'s cell.
    ///
    /// The lower bound is 0 when `q` falls inside the cell, otherwise the
    /// distance to the nearest cell edge; the upper bound is the distance
    /// to the farthest edge.
    pub fn diff_bounds(&self, dim: usize, cell: u8, q: f64) -> (f64, f64) {
        let (lo, hi) = self.cell_bounds(dim, cell);
        let lower = if q < lo {
            lo - q
        } else if q > hi {
            q - hi
        } else {
            0.0
        };
        let upper = (q - lo).abs().max((hi - q).abs());
        (lower, upper)
    }

    /// Streams every approximation row in pid order (sequential page
    /// reads), invoking `f(pid, cells)` per point with the unpacked cell
    /// indices.
    pub fn for_each_approx<S: PageStore>(
        &self,
        pool: &mut BufferPool<S>,
        mut f: impl FnMut(PointId, &[u8]),
    ) {
        let row_bytes = self.row_bytes();
        let mut cells = vec![0u8; self.dims];
        let mut pid = 0usize;
        for p in 0..self.total_pages() {
            let rows_here = self.rows_per_page.min(self.len - pid);
            let page = *pool.get_in(self.base_page + p, knmatch_storage::heap_file::SCAN_GROUP);
            for slot in 0..rows_here {
                let off = slot * row_bytes;
                let row = &page[off..off + row_bytes];
                for (j, c) in cells.iter_mut().enumerate() {
                    *c = unpack_cell(row, self.bits, j);
                }
                f(pid as PointId, &cells);
                pid += 1;
            }
        }
        debug_assert_eq!(pid, self.len);
    }
}

/// Writes the `b`-bit cell index of dimension `j` into a packed row.
fn pack_cell(row: &mut [u8], bits: u8, j: usize, cell: u8) {
    debug_assert!(bits == 8 || cell < (1 << bits));
    let start = j * bits as usize;
    let mut remaining = bits as usize;
    let mut value = cell as u16;
    let mut bit = start;
    while remaining > 0 {
        let byte = bit / 8;
        let shift = bit % 8;
        let take = remaining.min(8 - shift);
        let mask = ((1u16 << take) - 1) as u8;
        row[byte] &= !(mask << shift);
        row[byte] |= ((value as u8) & mask) << shift;
        value >>= take;
        bit += take;
        remaining -= take;
    }
}

/// Reads the `b`-bit cell index of dimension `j` from a packed row.
fn unpack_cell(row: &[u8], bits: u8, j: usize) -> u8 {
    let start = j * bits as usize;
    let mut remaining = bits as usize;
    let mut out: u16 = 0;
    let mut got = 0usize;
    let mut bit = start;
    while remaining > 0 {
        let byte = bit / 8;
        let shift = bit % 8;
        let take = remaining.min(8 - shift);
        let mask = ((1u16 << take) - 1) as u8;
        out |= (((row[byte] >> shift) & mask) as u16) << got;
        got += take;
        bit += take;
        remaining -= take;
    }
    out as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use knmatch_storage::MemStore;

    fn sample() -> (Dataset, VaFile, BufferPool<MemStore>) {
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![i as f64 / 99.0, (99 - i) as f64 / 99.0])
            .collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let mut store = MemStore::new();
        let va = VaFile::build(&mut store, &ds, 4);
        (ds, va, BufferPool::new(store, 8))
    }

    #[test]
    fn shape_and_size() {
        let (ds, va, _) = sample();
        assert_eq!(va.dims(), 2);
        assert_eq!(va.len(), ds.len());
        assert_eq!(va.cells(), 16);
        assert_eq!(va.total_pages(), 1); // 100 × 2 bytes
    }

    #[test]
    fn cells_bracket_their_values() {
        let (ds, va, _) = sample();
        for (_, p) in ds.iter() {
            for (j, &v) in p.iter().enumerate() {
                let cell = va.cell_of(j, v);
                let (lo, hi) = va.cell_bounds(j, cell);
                assert!(lo <= v && v <= hi + 1e-12, "v={v} not in [{lo}, {hi}]");
            }
        }
    }

    #[test]
    fn bounds_are_sound() {
        let (ds, va, _) = sample();
        let q = [0.33, 0.77];
        for (_, p) in ds.iter() {
            for (j, &v) in p.iter().enumerate() {
                let cell = va.cell_of(j, v);
                let (lb, ub) = va.diff_bounds(j, cell, q[j]);
                let true_diff = (v - q[j]).abs();
                assert!(lb <= true_diff + 1e-12, "lb {lb} > {true_diff}");
                assert!(ub >= true_diff - 1e-12, "ub {ub} < {true_diff}");
            }
        }
    }

    #[test]
    fn approx_scan_visits_all_points_sequentially() {
        let (ds, va, mut pool) = sample();
        let mut seen = 0usize;
        va.for_each_approx(&mut pool, |pid, cells| {
            assert_eq!(cells.len(), 2);
            assert_eq!(cells[0], va.cell_of(0, ds.coord(pid, 0)));
            seen += 1;
        });
        assert_eq!(seen, 100);
        assert_eq!(pool.stats().page_accesses() as usize, va.total_pages());
    }

    #[test]
    fn constant_dimension_does_not_divide_by_zero() {
        let ds = Dataset::from_rows(&[vec![5.0], vec![5.0]]).unwrap();
        let mut store = MemStore::new();
        let va = VaFile::build(&mut store, &ds, 8);
        let cell = va.cell_of(0, 5.0);
        let (lo, hi) = va.cell_bounds(0, cell);
        assert!(lo <= 5.0 && 5.0 <= hi);
    }

    #[test]
    fn query_outside_range_clamps() {
        let (_, va, _) = sample();
        assert_eq!(va.cell_of(0, -10.0), 0);
        assert_eq!(va.cell_of(0, 10.0), 15);
        let (lb, ub) = va.diff_bounds(0, va.cell_of(0, 1.0), 5.0);
        assert!(lb > 0.0 && ub >= lb);
    }

    #[test]
    fn multipage_file() {
        let rows: Vec<Vec<f64>> = (0..3000).map(|i| vec![(i % 17) as f64, 0.5]).collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let mut store = MemStore::new();
        let va = VaFile::build(&mut store, &ds, 8);
        assert_eq!(va.total_pages(), 2); // 3000 rows × 2 B = 6000 B
        let mut pool = BufferPool::new(store, 4);
        let mut count = 0;
        va.for_each_approx(&mut pool, |_, _| count += 1);
        assert_eq!(count, 3000);
    }

    #[test]
    fn bit_packing_roundtrips_at_every_width() {
        for bits in 1u8..=8 {
            let dims = 11usize;
            let mut row = vec![0u8; (dims * bits as usize).div_ceil(8)];
            let cells: Vec<u8> = (0..dims)
                .map(|j| ((j * 37 + 5) % (1usize << bits)) as u8)
                .collect();
            for (j, &c) in cells.iter().enumerate() {
                super::pack_cell(&mut row, bits, j, c);
            }
            for (j, &c) in cells.iter().enumerate() {
                assert_eq!(super::unpack_cell(&row, bits, j), c, "bits={bits} j={j}");
            }
            // Overwriting a middle cell leaves neighbours intact.
            super::pack_cell(&mut row, bits, 5, 0);
            assert_eq!(super::unpack_cell(&row, bits, 5), 0);
            assert_eq!(super::unpack_cell(&row, bits, 4), cells[4]);
            assert_eq!(super::unpack_cell(&row, bits, 6), cells[6]);
        }
    }

    #[test]
    fn packed_size_shrinks_with_bits() {
        let rows: Vec<Vec<f64>> = (0..5000).map(|i| vec![(i % 97) as f64; 16]).collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let mut pages = Vec::new();
        for bits in [2u8, 4, 8] {
            let mut store = MemStore::new();
            let va = VaFile::build(&mut store, &ds, bits);
            pages.push(va.total_pages());
            assert_eq!(va.row_bytes(), (16 * bits as usize).div_ceil(8));
            // Cells still decode correctly through the scan.
            let mut pool = BufferPool::new(store, 8);
            va.for_each_approx(&mut pool, |pid, cells| {
                assert_eq!(cells.len(), 16);
                assert_eq!(cells[0], va.cell_of(0, ds.coord(pid, 0)));
            });
        }
        assert!(pages[0] < pages[1] && pages[1] < pages[2], "{pages:?}");
    }

    #[test]
    #[should_panic(expected = "bits per dimension")]
    fn rejects_zero_bits() {
        let ds = Dataset::from_rows(&[vec![0.0]]).unwrap();
        VaFile::build(&mut MemStore::new(), &ds, 0);
    }
}
