//! Classic VA-file kNN (Weber et al., VLDB'98), included because the paper
//! positions the VA-file as *the* scalable high-dimensional kNN method
//! before adapting it to k-n-match. Uses Euclidean lower/upper bounds per
//! approximation cell and the same two-phase filter-and-refine structure.

use knmatch_core::ad::validate_params;
use knmatch_core::topk::TopK;
use knmatch_core::{Neighbour, PointId, Result};
use knmatch_storage::{BufferPool, HeapFile, IoStats, PageStore};

use crate::approx::VaFile;
use crate::match_query::VaOutcome;

/// Answers a Euclidean kNN query with the two-phase VA-file algorithm.
///
/// # Errors
///
/// Validates parameters like the core algorithms.
pub fn k_nearest_va<S: PageStore>(
    va: &VaFile,
    heap: &HeapFile,
    pool: &mut BufferPool<S>,
    query: &[f64],
    k: usize,
) -> Result<VaOutcome<Vec<Neighbour>>> {
    let d = va.dims();
    let c = va.len();
    validate_params(query, d, c, k, 1, d)?;
    pool.reset_stats();

    // Phase 1: bound each point's squared Euclidean distance.
    let mut lower: Vec<f64> = Vec::with_capacity(c);
    let mut upper_top = TopK::new(k);
    va.for_each_approx(pool, |pid, cells| {
        let mut lb2 = 0.0f64;
        let mut ub2 = 0.0f64;
        for (j, &cell) in cells.iter().enumerate() {
            let (lb, ub) = va.diff_bounds(j, cell, query[j]);
            lb2 += lb * lb;
            ub2 += ub * ub;
        }
        lower.push(lb2);
        upper_top.offer(pid, ub2);
    });
    let tau2 = upper_top
        .threshold()
        .expect("k ≤ c guarantees k candidates");

    // Phase 2: refine survivors.
    let mut top = TopK::new(k);
    let mut row = vec![0.0f64; d];
    let mut refined = 0usize;
    for (pid, &lb2) in lower.iter().enumerate() {
        if lb2 > tau2 {
            continue;
        }
        refined += 1;
        heap.point(pool, pid as PointId, &mut row);
        let dist2: f64 = row.iter().zip(query).map(|(a, b)| (a - b) * (a - b)).sum();
        top.offer(pid as PointId, dist2);
    }

    let result: Vec<Neighbour> = top
        .into_sorted()
        .into_iter()
        .map(|(pid, d2)| Neighbour {
            pid,
            dist: d2.sqrt(),
        })
        .collect();
    Ok(VaOutcome {
        result,
        refined,
        io: merge_io(pool),
    })
}

fn merge_io<S: PageStore>(pool: &BufferPool<S>) -> IoStats {
    pool.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use knmatch_core::{k_nearest, Dataset, Euclidean};
    use knmatch_storage::MemStore;

    fn build(ds: &Dataset, bits: u8) -> (VaFile, HeapFile, BufferPool<MemStore>) {
        let mut store = MemStore::new();
        let heap = HeapFile::build(&mut store, ds);
        let va = VaFile::build(&mut store, ds, bits);
        (va, heap, BufferPool::new(store, 64))
    }

    #[test]
    fn agrees_with_exact_knn() {
        let rows: Vec<Vec<f64>> = (0..400)
            .map(|i| {
                let x = (i as f64 * 0.7548776662) % 1.0;
                let y = (i as f64 * 0.5698402911) % 1.0;
                vec![x, y, (x + y) % 1.0]
            })
            .collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let (va, heap, mut pool) = build(&ds, 6);
        let q = [0.25, 0.5, 0.75];
        let out = k_nearest_va(&va, &heap, &mut pool, &q, 7).unwrap();
        let exact = k_nearest(&ds, &q, 7, &Euclidean).unwrap();
        let got: Vec<u32> = out.result.iter().map(|n| n.pid).collect();
        let want: Vec<u32> = exact.iter().map(|n| n.pid).collect();
        assert_eq!(got, want);
        for (a, b) in out.result.iter().zip(&exact) {
            assert!((a.dist - b.dist).abs() < 1e-9);
        }
        assert!(out.refined >= 7 && out.refined <= ds.len());
    }

    #[test]
    fn prunes_most_points_with_fine_bits() {
        let rows: Vec<Vec<f64>> = (0..2000)
            .map(|i| vec![(i as f64 * 0.618) % 1.0, (i as f64 * 0.149) % 1.0])
            .collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let (va, heap, mut pool) = build(&ds, 8);
        let out = k_nearest_va(&va, &heap, &mut pool, &[0.5, 0.5], 10).unwrap();
        assert!(
            out.refined < ds.len() / 4,
            "8-bit VA-file should prune aggressively for kNN: refined {}",
            out.refined
        );
    }

    #[test]
    fn validates() {
        let ds = knmatch_core::paper::fig3_dataset();
        let (va, heap, mut pool) = build(&ds, 8);
        assert!(k_nearest_va(&va, &heap, &mut pool, &[0.0], 1).is_err());
        assert!(k_nearest_va(&va, &heap, &mut pool, &[0.0, 0.0, 0.0], 99).is_err());
    }
}
