//! # knmatch-vafile
//!
//! The compression-based competitor of the paper's Section 4.2: a VA-file
//! (vector-approximation file) adapted to answer (frequent) k-n-match
//! queries in two phases — a sequential scan of the quantised
//! approximations that brackets every point's n-match difference between a
//! lower and an upper bound, followed by exact refinement of the points the
//! bounds cannot prune.
//!
//! The answers are exactly those of the reference algorithms; what the
//! experiments compare is the cost: phase two's random heap-file accesses
//! make the method lose to both the plain scan and the AD algorithm
//! (Figure 10), because n-match bounds from per-dimension cells are loose —
//! around 10% of all points survive phase one.
//!
//! The crate also ships the classic Euclidean-kNN VA-file ([`k_nearest_va`])
//! for which the structure was designed, where the same bounds prune well.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod approx;
pub mod engine;
pub mod knn;
pub mod match_query;

pub use approx::VaFile;
pub use engine::{VaEngine, VA_CELLS};
pub use knn::k_nearest_va;
pub use match_query::{frequent_k_n_match_va, k_n_match_va, VaOutcome};
