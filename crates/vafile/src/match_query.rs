//! The VA-file adaptation for (frequent) k-n-match queries — the paper's
//! Section 4.2 competitor.
//!
//! Phase one scans the approximation file once (sequential pages),
//! computing for each point a **lower and upper bound of its n-match
//! difference**: since every per-dimension lower bound underestimates the
//! true difference, the n-th smallest lower bound underestimates the n-th
//! smallest true difference (and dually for upper bounds). The k-th
//! smallest upper bound τ_n then prunes every point whose lower bound
//! exceeds it. Phase two fetches the surviving candidates from the heap
//! file (random page accesses — the cost the paper blames for this method
//! losing to a plain scan in Figure 10) and resolves them exactly.

use knmatch_core::ad::validate_params;
use knmatch_core::result::rank_frequent;
use knmatch_core::topk::TopK;
use knmatch_core::{FrequentResult, KnMatchResult, PointId, Result};
use knmatch_storage::{BufferPool, HeapFile, IoStats, PageStore};

use crate::approx::VaFile;

/// Outcome of a VA-file query: the answer plus phase statistics.
#[derive(Debug, Clone)]
pub struct VaOutcome<R> {
    /// The query answer (identical to the exact algorithms').
    pub result: R,
    /// Points that survived phase one and were fetched in phase two
    /// (Figure 10(a)'s y-axis).
    pub refined: usize,
    /// Page-level I/O of both phases.
    pub io: IoStats,
}

/// Answers a frequent k-n-match query with the two-phase VA-file algorithm.
///
/// Pool statistics are reset on entry, so [`VaOutcome::io`] covers exactly
/// this query.
///
/// # Errors
///
/// Validates parameters like the core algorithms.
pub fn frequent_k_n_match_va<S: PageStore>(
    va: &VaFile,
    heap: &HeapFile,
    pool: &mut BufferPool<S>,
    query: &[f64],
    k: usize,
    n0: usize,
    n1: usize,
) -> Result<VaOutcome<FrequentResult>> {
    let d = va.dims();
    let c = va.len();
    validate_params(query, d, c, k, n0, n1)?;
    pool.reset_stats();

    let n_count = n1 - n0 + 1;
    // Phase 1: one sequential scan of the approximations. Per point, keep
    // the lower bounds of its n-match differences for each queried n, and
    // feed the upper bounds into per-n TopK collectors to obtain τ_n.
    let mut lower_bounds: Vec<f64> = Vec::with_capacity(c * n_count);
    let mut upper_topk: Vec<TopK> = (0..n_count).map(|_| TopK::new(k)).collect();
    let mut lbuf = vec![0.0f64; d];
    let mut ubuf = vec![0.0f64; d];
    va.for_each_approx(pool, |pid, cells| {
        for (j, &cell) in cells.iter().enumerate() {
            let (lb, ub) = va.diff_bounds(j, cell, query[j]);
            lbuf[j] = lb;
            ubuf[j] = ub;
        }
        lbuf.sort_unstable_by(f64::total_cmp);
        ubuf.sort_unstable_by(f64::total_cmp);
        for (i, top) in upper_topk.iter_mut().enumerate() {
            lower_bounds.push(lbuf[n0 + i - 1]);
            top.offer(pid, ubuf[n0 + i - 1]);
        }
    });
    let taus: Vec<f64> = upper_topk
        .into_iter()
        .map(|t| t.threshold().expect("k ≤ c guarantees k candidates"))
        .collect();

    // Candidate selection: a point survives when its lower bound does not
    // exceed τ_n for at least one queried n.
    let mut candidates: Vec<PointId> = Vec::new();
    for pid in 0..c {
        let lbs = &lower_bounds[pid * n_count..(pid + 1) * n_count];
        if lbs.iter().zip(&taus).any(|(lb, tau)| lb <= tau) {
            candidates.push(pid as PointId);
        }
    }

    // Phase 2: fetch candidates (ascending pid keeps the access pattern as
    // friendly as the method allows; the paper still observes these to be
    // random accesses) and resolve exactly.
    let mut tops: Vec<TopK> = (0..n_count).map(|_| TopK::new(k)).collect();
    let mut row = vec![0.0f64; d];
    let mut diffs = vec![0.0f64; d];
    for &pid in &candidates {
        heap.point(pool, pid, &mut row);
        for (j, (&a, &b)) in row.iter().zip(query).enumerate() {
            diffs[j] = (a - b).abs();
        }
        diffs.sort_unstable_by(f64::total_cmp);
        for (i, top) in tops.iter_mut().enumerate() {
            top.offer(pid, diffs[n0 + i - 1]);
        }
    }

    let per_n: Vec<KnMatchResult> = tops
        .into_iter()
        .enumerate()
        .map(|(i, t)| t.into_result(n0 + i))
        .collect();
    let mut counts: Vec<u32> = vec![0; c];
    for res in &per_n {
        for e in &res.entries {
            counts[e.pid as usize] += 1;
        }
    }
    let pairs: Vec<(PointId, u32)> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &cnt)| cnt > 0)
        .map(|(pid, &cnt)| (pid as PointId, cnt))
        .collect();
    let entries = rank_frequent(&pairs, k);

    Ok(VaOutcome {
        result: FrequentResult {
            range: (n0, n1),
            entries,
            per_n,
        },
        refined: candidates.len(),
        io: pool.stats(),
    })
}

/// Answers a k-n-match query with the two-phase VA-file algorithm.
///
/// # Errors
///
/// Validates parameters like the core algorithms.
pub fn k_n_match_va<S: PageStore>(
    va: &VaFile,
    heap: &HeapFile,
    pool: &mut BufferPool<S>,
    query: &[f64],
    k: usize,
    n: usize,
) -> Result<VaOutcome<KnMatchResult>> {
    let out = frequent_k_n_match_va(va, heap, pool, query, k, n, n)?;
    Ok(VaOutcome {
        result: out.result.per_n.into_iter().next().expect("single n"),
        refined: out.refined,
        io: out.io,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use knmatch_core::Dataset;
    use knmatch_storage::MemStore;

    fn build(ds: &Dataset, bits: u8) -> (VaFile, HeapFile, BufferPool<MemStore>) {
        let mut store = MemStore::new();
        let heap = HeapFile::build(&mut store, ds);
        let va = VaFile::build(&mut store, ds, bits);
        (va, heap, BufferPool::new(store, 64))
    }

    #[test]
    fn exact_answers_on_paper_example() {
        let ds = knmatch_core::paper::fig3_dataset();
        let (va, heap, mut pool) = build(&ds, 8);
        let q = [3.0, 7.0, 4.0];
        let out = k_n_match_va(&va, &heap, &mut pool, &q, 2, 2).unwrap();
        assert_eq!(out.result.ids(), vec![2, 1]);
        assert_eq!(out.result.epsilon(), 1.5);
    }

    #[test]
    fn agrees_with_scan_on_random_data() {
        let mut rng_state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            (rng_state >> 11) as f64 / (1u64 << 53) as f64
        };
        let rows: Vec<Vec<f64>> = (0..300).map(|_| (0..6).map(|_| next()).collect()).collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let (va, heap, mut pool) = build(&ds, 6);
        let q: Vec<f64> = (0..6).map(|_| next()).collect();
        for n in [1usize, 3, 6] {
            let va_out = k_n_match_va(&va, &heap, &mut pool, &q, 10, n).unwrap();
            let exact = knmatch_core::k_n_match_scan(&ds, &q, 10, n).unwrap();
            assert_eq!(va_out.result.ids(), exact.ids(), "n={n}");
        }
        let va_f = frequent_k_n_match_va(&va, &heap, &mut pool, &q, 10, 2, 5).unwrap();
        let exact_f = knmatch_core::frequent_k_n_match_scan(&ds, &q, 10, 2, 5).unwrap();
        assert_eq!(va_f.result.ids(), exact_f.ids());
    }

    #[test]
    fn coarse_bits_refine_more_points() {
        let rows: Vec<Vec<f64>> = (0..500)
            .map(|i| vec![(i as f64 * 0.618) % 1.0, (i as f64 * 0.382) % 1.0])
            .collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let q = [0.4, 0.6];
        let (va8, heap8, mut pool8) = build(&ds, 8);
        let fine = k_n_match_va(&va8, &heap8, &mut pool8, &q, 5, 1).unwrap();
        let (va2, heap2, mut pool2) = build(&ds, 2);
        let coarse = k_n_match_va(&va2, &heap2, &mut pool2, &q, 5, 1).unwrap();
        assert_eq!(fine.result.ids(), coarse.result.ids());
        assert!(
            fine.refined <= coarse.refined,
            "finer quantisation must not refine more points ({} vs {})",
            fine.refined,
            coarse.refined
        );
        assert!(fine.refined >= 5, "at least k candidates survive");
    }

    #[test]
    fn refinement_counts_bound_candidates() {
        let ds = knmatch_core::paper::fig1_dataset();
        let (va, heap, mut pool) = build(&ds, 8);
        let q = knmatch_core::paper::fig1_query();
        let out = frequent_k_n_match_va(&va, &heap, &mut pool, &q, 2, 1, 10).unwrap();
        assert!(out.refined >= 2 && out.refined <= 4);
        let exact = knmatch_core::frequent_k_n_match_scan(&ds, &q, 2, 1, 10).unwrap();
        assert_eq!(out.result.ids(), exact.ids());
    }

    #[test]
    fn io_covers_both_phases() {
        let ds = knmatch_core::paper::fig3_dataset();
        let (va, heap, mut pool) = build(&ds, 8);
        let out = k_n_match_va(&va, &heap, &mut pool, &[3.0, 7.0, 4.0], 1, 1).unwrap();
        // At least the VA pages were read, plus one heap page per refined
        // point at worst.
        assert!(out.io.page_accesses() as usize >= va.total_pages());
        assert!(out.refined >= 1);
    }

    #[test]
    fn validates_parameters() {
        let ds = knmatch_core::paper::fig3_dataset();
        let (va, heap, mut pool) = build(&ds, 8);
        assert!(k_n_match_va(&va, &heap, &mut pool, &[0.0], 1, 1).is_err());
        assert!(k_n_match_va(&va, &heap, &mut pool, &[0.0, 0.0, 0.0], 0, 1).is_err());
        assert!(k_n_match_va(&va, &heap, &mut pool, &[0.0, 0.0, 0.0], 1, 4).is_err());
    }
}
