//! The VA-file as a first-class serving backend.
//!
//! [`VaEngine`] is the in-memory promotion of this crate's two-phase
//! algorithm to the [`BatchEngine`] surface: the per-dimension equi-width
//! quantisation of [`VaFile`](crate::VaFile) (256 cells, one byte per
//! attribute), but with the approximation filter rewritten on the core
//! band-count kernels ([`knmatch_core::kernels`]) over dim-major cell
//! columns instead of the per-point float-bound sort of the disk path.
//! Phase two refines the surviving candidates exactly through the shared
//! canonical `(diff, pid)` collectors, so answers are bit-identical to the
//! sequential oracle on every exact query kind — a pure function of the
//! data, independent of worker count, batch order, and quantisation.

use std::sync::Arc;

use knmatch_core::ad::AdStats;
use knmatch_core::{
    equi_width_boundaries, BandEngine, BatchAnswer, BatchEngine, BatchOptions, BatchQuery, Dataset,
    FilterScratch, Result,
};

/// Cells per dimension: the full range of one approximation byte.
pub const VA_CELLS: usize = 256;

/// In-memory VA-file batch backend (see the module docs).
#[derive(Debug, Clone)]
pub struct VaEngine {
    inner: BandEngine,
}

impl VaEngine {
    /// Builds the byte approximations of `data` with one worker per
    /// available CPU.
    pub fn new(data: Arc<Dataset>) -> Self {
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::with_workers(data, workers)
    }

    /// Builds the byte approximations of `data` with an explicit worker
    /// count (clamped to ≥ 1).
    pub fn with_workers(data: Arc<Dataset>, workers: usize) -> Self {
        let boundaries = equi_width_boundaries(&data, VA_CELLS);
        VaEngine {
            inner: BandEngine::from_boundaries(data, boundaries, workers),
        }
    }

    /// The indexed dataset.
    pub fn dataset(&self) -> &Arc<Dataset> {
        self.inner.dataset()
    }

    /// The underlying band filter (for the request-time planner, which
    /// prices the refine phase via its candidate estimator).
    pub fn band(&self) -> &BandEngine {
        &self.inner
    }

    /// Executes one query on the calling thread against caller scratch.
    ///
    /// # Errors
    ///
    /// Per-query parameter validation, deadline, cancellation.
    pub fn execute(
        &self,
        query: &BatchQuery,
        scratch: &mut FilterScratch,
    ) -> Result<(BatchAnswer, AdStats)> {
        self.inner.execute(query, scratch)
    }
}

impl BatchEngine for VaEngine {
    type Outcome = (BatchAnswer, AdStats);

    fn workers(&self) -> usize {
        self.inner.workers()
    }

    fn run_with(
        &self,
        queries: &[BatchQuery],
        opts: &BatchOptions,
    ) -> Vec<Result<(BatchAnswer, AdStats)>> {
        self.inner.run_with(queries, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knmatch_core::{frequent_k_n_match_scan, k_n_match_scan, MatchEntry};

    fn pseudo_dataset(c: usize, d: usize, seed: u64) -> Dataset {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let rows: Vec<Vec<f64>> = (0..c).map(|_| (0..d).map(|_| next()).collect()).collect();
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn matches_oracle_bitwise_across_workers() {
        let ds = pseudo_dataset(600, 7, 77);
        let q: Vec<f64> = (0..7).map(|j| 0.05 + 0.13 * j as f64).collect();
        let batch = vec![
            BatchQuery::KnMatch {
                query: q.clone(),
                k: 9,
                n: 2,
            },
            BatchQuery::Frequent {
                query: q.clone(),
                k: 6,
                n0: 1,
                n1: 7,
            },
            BatchQuery::EpsMatch {
                query: q.clone(),
                eps: 0.04,
                n: 3,
            },
        ];
        let mut answers: Vec<Vec<BatchAnswer>> = Vec::new();
        for workers in [1usize, 4] {
            let e = VaEngine::with_workers(Arc::new(ds.clone()), workers);
            answers.push(
                e.run(&batch)
                    .into_iter()
                    .map(|r| r.unwrap().0)
                    .collect::<Vec<_>>(),
            );
        }
        assert_eq!(answers[0], answers[1], "answers depend on worker count");
        let want_kn = k_n_match_scan(&ds, &q, 9, 2).unwrap();
        assert_eq!(answers[0][0], BatchAnswer::KnMatch(want_kn));
        let want_f = frequent_k_n_match_scan(&ds, &q, 6, 1, 7).unwrap();
        assert_eq!(answers[0][1], BatchAnswer::Frequent(want_f));
    }

    #[test]
    fn quantised_ties_resolve_canonically() {
        // Every coordinate sits on a 0.25 grid, so n-match differences
        // collide en masse; the answer is only well-defined under the
        // canonical (diff, pid) tie-break — which the engine must apply
        // identically to the oracle.
        let rows: Vec<Vec<f64>> = (0..400)
            .map(|i| {
                (0..6)
                    .map(|j| ((i * 11 + j * 5) % 5) as f64 * 0.25)
                    .collect()
            })
            .collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let e = VaEngine::with_workers(Arc::new(ds.clone()), 3);
        let q = vec![0.25; 6];
        for (k, n) in [(1usize, 1usize), (13, 3), (25, 6)] {
            let got = e
                .run(&[BatchQuery::KnMatch {
                    query: q.clone(),
                    k,
                    n,
                }])
                .pop()
                .unwrap()
                .unwrap()
                .0;
            let want = k_n_match_scan(&ds, &q, k, n).unwrap();
            assert_eq!(got, BatchAnswer::KnMatch(want), "k={k} n={n}");
        }
        let got = e
            .run(&[BatchQuery::EpsMatch {
                query: q.clone(),
                eps: 0.25,
                n: 4,
            }])
            .pop()
            .unwrap()
            .unwrap()
            .0;
        let BatchAnswer::EpsMatch(res) = got else {
            panic!("wrong variant")
        };
        // ε-matches are canonical: ascending (diff, pid), exactly the
        // points whose 4th-smallest difference is within 0.25.
        let mut prev: Option<&MatchEntry> = None;
        for e in &res.entries {
            assert!(e.diff <= 0.25);
            if let Some(p) = prev {
                assert!((p.diff, p.pid) < (e.diff, e.pid), "not canonical");
            }
            prev = Some(e);
        }
    }

    #[test]
    fn prunes_on_selective_queries() {
        let ds = pseudo_dataset(3000, 8, 3);
        let e = VaEngine::with_workers(Arc::new(ds.clone()), 1);
        let q = ds.point(42).to_vec();
        let (_, stats) = e
            .run(&[BatchQuery::KnMatch {
                query: q,
                k: 3,
                n: 8,
            }])
            .pop()
            .unwrap()
            .unwrap();
        assert!(
            stats.attributes_retrieved < 3000 * 8 / 2,
            "expected the filter to prune most of the refine work: {stats:?}"
        );
    }
}
