#!/usr/bin/env bash
# Full verification gate, safe to run offline (the workspace has zero
# external dependencies):
#
#   1. tier-1:  cargo build --release && cargo test -q
#   2. style:   cargo fmt --all -- --check
#   3. lints:   cargo clippy --workspace --all-targets -- -D warnings
#   4. smoke:   disk_throughput --smoke (cross-checks the disk engine
#               against the sequential path on a real file, seconds-long)
#   5. faults:  release-mode fault-injection stress (retry/panic paths
#               under optimised timing) + fault_overhead --smoke
#   6. pipeline: event-server pipelined cross-check in release (bit-
#               identity at workers 1/2/4 and poll-vs-epoll byte
#               identity on Linux) + connection_scaling --smoke
#               (256 concurrent connections over both reactors)
#   6b. chaos:  network fault injection in release (fixed seeds):
#               retrying clients vs torn/stalled/reset I/O at 1/10/30%
#               fault rates on both reactors, plus shedding, idle
#               eviction and deadline-cancel coverage
#   6c. mvcc:   versioned-index oracle crosscheck + mutable-serve
#               suite in release (randomized interleaved writes vs a
#               rebuild-from-scratch oracle; readers never block) +
#               ingest_throughput --smoke
#   7. server:  loopback serve/client smoke for both servers (ephemeral
#               port, batch over the wire — binary+pipelined on the
#               event loop, once per reactor backend — graceful
#               shutdown), a serve --mutable + ingest round trip, and
#               release-mode protocol fuzz
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# Never touch the network: every dependency is a workspace path crate.
export CARGO_NET_OFFLINE=true

echo "==> tier-1: cargo build --release"
cargo build --release --workspace

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> disk_throughput --smoke"
./target/release/disk_throughput --smoke --out /tmp/BENCH_disk_throughput_smoke.json >/dev/null

echo "==> fault injection stress (release)"
cargo test --release -q -p knmatch-storage --test fault_injection

echo "==> planner cross-check (release)"
# The randomized backend/planner-vs-oracle sweeps are an order of
# magnitude faster optimised, so run them in release like CI does.
cargo test --release -q -p knmatch-server --test planner_crosscheck

echo "==> event-server pipelined cross-check (release)"
# Pipelined ordering and the <10ms drain race are timing-sensitive;
# release mode is where they are tightest.
cargo test --release -q -p knmatch-server --test event_server

echo "==> chaos harness (release, fixed seeds, both reactors)"
# Retrying clients against fault-injected servers (torn frames, short
# writes, stalls, injected resets at 1/10/30%) must stay bit-identical
# to direct engine runs; the server must drain with zero leaked pooled
# buffers. Shedding, idle eviction and deadline cancellation ride along.
cargo test --release -q -p knmatch-server --test chaos

echo "==> versioned-index oracle crosscheck (release)"
# Randomized interleaved insert/delete/seal/maintain against a
# rebuild-from-scratch oracle; release mode covers far more steps.
cargo test --release -q -p knmatch-core --test versioned_crosscheck

echo "==> mutable serve suite (release, both front-ends)"
cargo test --release -q -p knmatch-server --test mutable_serve

echo "==> connection_scaling --smoke (256 connections)"
./target/release/connection_scaling --smoke --out /tmp/BENCH_connections_smoke.json >/dev/null

echo "==> fault_overhead --smoke"
./target/release/fault_overhead --smoke --out /tmp/BENCH_fault_overhead_smoke.json >/dev/null

echo "==> ingest_throughput --smoke"
./target/release/ingest_throughput --smoke --out /tmp/BENCH_ingest_smoke.json >/dev/null

echo "==> server smoke (serve + client over loopback)"
SMOKE_DIR=$(mktemp -d)
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$SMOKE_DIR"
}
trap cleanup EXIT
KNM=./target/release/knmatch
"$KNM" generate --kind uniform --out "$SMOKE_DIR/data.csv" \
  --cardinality 500 --dims 4 --seed 7 >/dev/null
"$KNM" generate --kind uniform --out "$SMOKE_DIR/queries.csv" \
  --cardinality 4 --dims 4 --seed 8 >/dev/null
"$KNM" build "$SMOKE_DIR/data.csv" "$SMOKE_DIR/data.knm" >/dev/null
"$KNM" serve "$SMOKE_DIR/data.knm" --addr 127.0.0.1:0 --workers 2 \
  >"$SMOKE_DIR/serve.log" 2>&1 &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's/^listening on \([0-9.:]*\) .*/\1/p' "$SMOKE_DIR/serve.log")
  [ -n "$ADDR" ] && break
  kill -0 "$SERVE_PID" 2>/dev/null || { cat "$SMOKE_DIR/serve.log"; echo "server died during startup"; exit 1; }
  sleep 0.1
done
[ -n "$ADDR" ] || { cat "$SMOKE_DIR/serve.log"; echo "server never reported its address"; exit 1; }
"$KNM" client "$ADDR" --ping >/dev/null
"$KNM" client "$ADDR" --queries "$SMOKE_DIR/queries.csv" -k 3 -n 2 --stats \
  | grep -q "4 ok / 0 failed" \
  || { echo "client batch did not return 4 ok / 0 failed"; exit 1; }
"$KNM" client "$ADDR" --shutdown >/dev/null
wait "$SERVE_PID"
SERVE_PID=""
grep -q "shutdown complete" "$SMOKE_DIR/serve.log" \
  || { cat "$SMOKE_DIR/serve.log"; echo "server did not drain cleanly"; exit 1; }

echo "==> mutable serve + ingest smoke (serve --mutable over loopback)"
"$KNM" generate --kind uniform --out "$SMOKE_DIR/extra.csv" \
  --cardinality 20 --dims 4 --seed 9 >/dev/null
"$KNM" serve "$SMOKE_DIR/data.csv" --addr 127.0.0.1:0 --workers 2 \
  --mutable --merge-threshold 64 >"$SMOKE_DIR/mutable.log" 2>&1 &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's/^listening on \([0-9.:]*\) .*/\1/p' "$SMOKE_DIR/mutable.log")
  [ -n "$ADDR" ] && break
  kill -0 "$SERVE_PID" 2>/dev/null || { cat "$SMOKE_DIR/mutable.log"; echo "mutable server died during startup"; exit 1; }
  sleep 0.1
done
[ -n "$ADDR" ] || { cat "$SMOKE_DIR/mutable.log"; echo "mutable server never reported its address"; exit 1; }
grep -q "mutable versioned" "$SMOKE_DIR/mutable.log" \
  || { cat "$SMOKE_DIR/mutable.log"; echo "mutable server did not describe its engine"; exit 1; }
"$KNM" ingest "$ADDR" --points "$SMOKE_DIR/extra.csv" --start-key 10000 --seal --stats \
  | grep -q "20 inserted / 0 failed" \
  || { echo "ingest did not report 20 inserted / 0 failed"; exit 1; }
"$KNM" client "$ADDR" --queries "$SMOKE_DIR/queries.csv" -k 3 -n 2 --stats \
  | grep -q "version: epoch" \
  || { echo "client --stats did not print the version counter group"; exit 1; }
"$KNM" client "$ADDR" --shutdown >/dev/null
wait "$SERVE_PID"
SERVE_PID=""
grep -q "shutdown complete" "$SMOKE_DIR/mutable.log" \
  || { cat "$SMOKE_DIR/mutable.log"; echo "mutable server did not drain cleanly"; exit 1; }

# Both readiness backends where the host offers them: poll everywhere,
# edge-triggered epoll on Linux (elsewhere `--reactor epoll` refuses).
REACTORS="poll"
[ "$(uname)" = Linux ] && REACTORS="poll epoll"
for REACTOR in $REACTORS; do
  echo "==> event-loop smoke (serve --event-loop --reactor $REACTOR + binary pipelined client)"
  "$KNM" serve "$SMOKE_DIR/data.knm" --addr 127.0.0.1:0 --workers 2 \
    --event-loop --executors 2 --reactor "$REACTOR" >"$SMOKE_DIR/event.log" 2>&1 &
  SERVE_PID=$!
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^listening on \([0-9.:]*\) .*/\1/p' "$SMOKE_DIR/event.log")
    [ -n "$ADDR" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || { cat "$SMOKE_DIR/event.log"; echo "event server died during startup"; exit 1; }
    sleep 0.1
  done
  [ -n "$ADDR" ] || { cat "$SMOKE_DIR/event.log"; echo "event server never reported its address"; exit 1; }
  grep -q "reactor $REACTOR" "$SMOKE_DIR/event.log" \
    || { cat "$SMOKE_DIR/event.log"; echo "event server did not report reactor $REACTOR"; exit 1; }
  "$KNM" client "$ADDR" --ping >/dev/null
  "$KNM" client "$ADDR" --queries "$SMOKE_DIR/queries.csv" -k 3 -n 2 \
    --binary --pipeline 4 --stats \
    | grep -q "4 ok / 0 failed" \
    || { echo "pipelined binary batch did not return 4 ok / 0 failed"; exit 1; }
  # The resilient client path: bounded retries with backoff and a
  # per-response timeout (no faults here, so it succeeds first try).
  "$KNM" client "$ADDR" --queries "$SMOKE_DIR/queries.csv" -k 3 -n 2 \
    --retries 3 --backoff-ms 5 --timeout-ms 2000 \
    | grep -q "4 ok / 0 failed" \
    || { echo "retrying client batch did not return 4 ok / 0 failed"; exit 1; }
  "$KNM" client "$ADDR" --shutdown >/dev/null
  wait "$SERVE_PID"
  SERVE_PID=""
  grep -q "shutdown complete" "$SMOKE_DIR/event.log" \
    || { cat "$SMOKE_DIR/event.log"; echo "event server did not drain cleanly"; exit 1; }
done

echo "==> protocol fuzz under both reactors (release)"
cargo test --release -q -p knmatch-server --test protocol_fuzz

echo "verify: OK"
