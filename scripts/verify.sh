#!/usr/bin/env bash
# Full verification gate, safe to run offline (the workspace has zero
# external dependencies):
#
#   1. tier-1:  cargo build --release && cargo test -q
#   2. style:   cargo fmt --all -- --check
#   3. lints:   cargo clippy --workspace --all-targets -- -D warnings
#   4. smoke:   disk_throughput --smoke (cross-checks the disk engine
#               against the sequential path on a real file, seconds-long)
#   5. faults:  release-mode fault-injection stress (retry/panic paths
#               under optimised timing) + fault_overhead --smoke
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# Never touch the network: every dependency is a workspace path crate.
export CARGO_NET_OFFLINE=true

echo "==> tier-1: cargo build --release"
cargo build --release --workspace

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> disk_throughput --smoke"
./target/release/disk_throughput --smoke --out /tmp/BENCH_disk_throughput_smoke.json >/dev/null

echo "==> fault injection stress (release)"
cargo test --release -q -p knmatch-storage --test fault_injection

echo "==> fault_overhead --smoke"
./target/release/fault_overhead --smoke --out /tmp/BENCH_fault_overhead_smoke.json >/dev/null

echo "verify: OK"
