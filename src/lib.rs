//! # knmatch
//!
//! A from-scratch Rust implementation of **"Similarity Search: A Matching
//! Based Approach"** (Tung, Zhang, Koudas, Ooi — VLDB 2006): the
//! **k-n-match** and **frequent k-n-match** query models, the
//! attribute-optimal **AD algorithm** in memory and on disk, the paper's
//! competitors (sequential scan, a VA-file adaptation, IGrid), workload
//! generators, and the full experiment harness that regenerates every
//! table and figure of the paper's evaluation.
//!
//! This crate is a facade: it re-exports the workspace crates so a
//! downstream user can depend on one name.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `knmatch-core` | data model, n-match difference, AD algorithm, naive oracles, kNN/skyline baselines |
//! | [`storage`] | `knmatch-storage` | pages, buffer pool, sorted-column & heap files, disk AD |
//! | [`vafile`] | `knmatch-vafile` | VA-file competitor (two-phase filter & refine) |
//! | [`igrid`] | `knmatch-igrid` | IGrid competitor (equi-depth inverted grid) |
//! | [`rtree`] | `knmatch-rtree` | R-tree baseline (dimensionality-curse witness) |
//! | [`data`] | `knmatch-data` | seeded workload generators, CSV, normalisation |
//! | [`eval`] | `knmatch-eval` | class-stripping protocol, experiment runners |
//! | [`server`] | `knmatch-server` | TCP front-end: text protocol, server, client, engine config |
//!
//! ## Quick start
//!
//! ```
//! use knmatch::prelude::*;
//!
//! // The paper's Figure 1: kNN is fooled by one noisy dimension…
//! let ds = knmatch::core::paper::fig1_dataset();
//! let query = knmatch::core::paper::fig1_query();
//! let nn = k_nearest(&ds, &query, 1, &Euclidean).unwrap();
//! assert_eq!(nn[0].pid, 3); // the uniformly-mediocre object wins
//!
//! // …while the 6-match finds the object that agrees in 6 dimensions,
//! let mut cols = SortedColumns::build(&ds);
//! let (m, _) = k_n_match_ad(&mut cols, &query, 1, 6).unwrap();
//! assert_eq!(m.ids(), vec![2]);
//!
//! // and the frequent k-n-match ranks by similarity across every n.
//! let (freq, _) = frequent_k_n_match_ad(&mut cols, &query, 2, 1, 10).unwrap();
//! assert!(!freq.ids().contains(&3));
//! ```
//!
//! ## Batch queries
//!
//! Many queries against one dataset go through the [`QueryEngine`](core::QueryEngine),
//! which shares the sorted columns across worker threads and reuses
//! per-worker scratch instead of allocating per query — same answers,
//! same stats, in input order:
//!
//! ```
//! use std::sync::Arc;
//! use knmatch::prelude::*;
//!
//! let ds = knmatch::core::paper::fig1_dataset();
//! let engine = QueryEngine::new(Arc::new(SortedColumns::build(&ds)));
//! let batch: Vec<BatchQuery> = (1..=10)
//!     .map(|n| BatchQuery::KnMatch { query: knmatch::core::paper::fig1_query(), k: 1, n })
//!     .collect();
//! assert!(engine.run(&batch).iter().all(Result::is_ok));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use knmatch_core as core;
pub use knmatch_data as data;
pub use knmatch_eval as eval;
pub use knmatch_igrid as igrid;
pub use knmatch_rtree as rtree;
pub use knmatch_server as server;
pub use knmatch_storage as storage;
pub use knmatch_vafile as vafile;

/// The names most programs need, in one import.
pub mod prelude {
    pub use knmatch_core::{
        eps_n_match_ad, eps_n_match_ad_with, frequent_k_n_match_ad, frequent_k_n_match_ad_with,
        frequent_k_n_match_scan, k_n_match_ad, k_n_match_ad_with, k_n_match_scan, k_nearest,
        nmatch_difference, skyline_wrt, AdStats, BatchAnswer, BatchEngine, BatchQuery, Chebyshev,
        Dataset, Dpf, Euclidean, FrequentResult, KnMatchError, KnMatchResult, Lp, Manhattan,
        Metric, Neighbour, PointId, QueryEngine, Scratch, SortedAccessSource, SortedColumns,
        SortedEntry,
    };
    pub use knmatch_data::{coil_like, labelled_clusters, skewed, uniform, ClusterSpec};
    pub use knmatch_igrid::IGridIndex;
    pub use knmatch_storage::{DiskDatabase, IoStats, MemStore};
    pub use knmatch_vafile::{frequent_k_n_match_va, k_n_match_va, VaFile};
}
